//! The workspace's single sanctioned wall-clock access point.
//!
//! Determinism policy (see `DESIGN.md`): library code must not read the
//! wall clock directly — `Instant::now()` / `SystemTime::now()` scattered
//! through crates make timing side effects untrackable and reports
//! irreproducible. Lint rule R8 (`wall-clock`) rejects direct reads
//! everywhere except this crate; everything else measures elapsed time
//! through [`Stopwatch`] or a [`Clock`].
//!
//! Keeping the chokepoint in one bottom-of-the-dependency-graph crate
//! means every crate (including `easytime-eval` and `easytime-obs`, which
//! `easytime` itself depends on) can use it without cycles. The virtual
//! clock that the original module doc promised now exists: [`ManualClock`]
//! provides deterministic, test-controlled time that flows through the
//! same [`Stopwatch`] API as real time, so span-duration tests never
//! sleep and never flake.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A time source: either the real monotonic clock or a manually advanced
/// virtual clock for deterministic tests.
///
/// `Clock` is cheap to clone (the manual variant shares its state through
/// an `Arc`), and every reading is expressed as nanoseconds since the
/// clock's own origin — callers never see absolute wall-clock values.
#[derive(Debug, Clone)]
pub enum Clock {
    /// The process monotonic clock, measured from the instant the `Clock`
    /// value was created.
    System {
        /// Origin instant; readings are nanoseconds since this point.
        origin: Instant,
    },
    /// Virtual time shared with a [`ManualClock`]; advances only when the
    /// test says so.
    Manual {
        /// Shared nanosecond counter.
        nanos: Arc<AtomicU64>,
    },
}

impl Clock {
    /// A clock backed by the real monotonic clock, with its origin at the
    /// moment of this call.
    pub fn system() -> Clock {
        Clock::System { origin: Instant::now() }
    }

    /// Nanoseconds elapsed since this clock's origin.
    ///
    /// Saturates at `u64::MAX` (≈ 584 years) rather than wrapping.
    pub fn now_nanos(&self) -> u64 {
        match self {
            Clock::System { origin } => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Manual { nanos } => nanos.load(Ordering::SeqCst),
        }
    }

    /// Starts a [`Stopwatch`] reading from this clock.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch { clock: self.clone(), start_ns: self.now_nanos() }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::system()
    }
}

/// A manually advanced virtual clock for deterministic tests.
///
/// Handing [`ManualClock::clock`] to code under test lets a test assert
/// exact durations without sleeping:
///
/// ```
/// use easytime_clock::ManualClock;
///
/// let manual = ManualClock::new();
/// let sw = manual.clock().stopwatch();
/// manual.advance_millis(250);
/// assert_eq!(sw.elapsed_ms(), 250.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A [`Clock`] view sharing this manual clock's time.
    pub fn clock(&self) -> Clock {
        Clock::Manual { nanos: Arc::clone(&self.nanos) }
    }

    /// Advances virtual time by `nanos` nanoseconds (saturating).
    pub fn advance_nanos(&self, nanos: u64) {
        let _ = self.nanos.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
            Some(t.saturating_add(nanos))
        });
    }

    /// Advances virtual time by `millis` milliseconds (saturating).
    pub fn advance_millis(&self, millis: u64) {
        self.advance_nanos(millis.saturating_mul(1_000_000));
    }

    /// Advances virtual time by a [`Duration`] (saturating).
    pub fn advance(&self, by: Duration) {
        self.advance_nanos(u64::try_from(by.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Sets virtual time to an absolute nanosecond value.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

/// A started timer for measuring elapsed time against a [`Clock`].
///
/// ```
/// let sw = easytime_clock::Stopwatch::start();
/// let _work = (0..1000).sum::<u64>();
/// assert!(sw.elapsed_ms() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: Clock,
    start_ns: u64,
}

impl Stopwatch {
    /// Starts a new timer on the real monotonic clock.
    pub fn start() -> Stopwatch {
        Clock::system().stopwatch()
    }

    /// Elapsed nanoseconds since the stopwatch started (saturating at 0
    /// if the clock was set backwards, which only a [`ManualClock`] can do).
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_ns)
    }

    /// Time elapsed since the stopwatch started.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos())
    }

    /// Elapsed time in fractional milliseconds — the unit every EasyTime
    /// report and latency field uses.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Seconds elapsed since the Unix epoch, for run-stamping in binaries
/// and reports that want an absolute timestamp.
///
/// Returns 0 if the system clock reads before the epoch rather than
/// failing: a stamp is advisory metadata, never load-bearing.
pub fn unix_timestamp_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ms() >= 0.0);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let manual = ManualClock::new();
        let sw = manual.clock().stopwatch();
        assert_eq!(sw.elapsed_nanos(), 0);
        manual.advance_nanos(1_500);
        assert_eq!(sw.elapsed_nanos(), 1_500);
        manual.advance_millis(2);
        assert_eq!(sw.elapsed_nanos(), 2_001_500);
        assert_eq!(sw.elapsed(), Duration::from_nanos(2_001_500));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let manual = ManualClock::new();
        let a = manual.clock();
        let b = manual.clock();
        manual.advance(Duration::from_secs(3));
        assert_eq!(a.now_nanos(), b.now_nanos());
        assert_eq!(a.now_nanos(), 3_000_000_000);
    }

    #[test]
    fn stopwatch_on_rewound_manual_clock_saturates_at_zero() {
        let manual = ManualClock::new();
        manual.set_nanos(5_000);
        let sw = manual.clock().stopwatch();
        manual.set_nanos(1_000);
        assert_eq!(sw.elapsed_nanos(), 0);
    }

    #[test]
    fn system_clock_advances() {
        let clock = Clock::system();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn unix_timestamp_is_past_2020() {
        // 2020-01-01T00:00:00Z — guards against returning the 0 fallback
        // on a healthy clock.
        assert!(unix_timestamp_secs() > 1_577_836_800);
    }
}
