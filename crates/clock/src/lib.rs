//! The workspace's single sanctioned wall-clock access point.
//!
//! Determinism policy (see `DESIGN.md`): library code must not read the
//! wall clock directly — `Instant::now()` / `SystemTime::now()` scattered
//! through crates make timing side effects untrackable and reports
//! irreproducible. Lint rule R8 (`wall-clock`) rejects direct reads
//! everywhere except this file; everything else measures elapsed time
//! through [`Stopwatch`].
//!
//! Keeping the chokepoint in one bottom-of-the-dependency-graph crate
//! means every crate (including `easytime-eval` and `easytime-qa`, which
//! `easytime` itself depends on) can use it without cycles, and a future
//! virtual/mock clock for tests needs to touch exactly one module.

use std::time::{Duration, Instant};

/// A started timer for measuring elapsed wall-clock time.
///
/// ```
/// let sw = easytime_clock::Stopwatch::start();
/// let _work = (0..1000).sum::<u64>();
/// assert!(sw.elapsed_ms() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new timer at the current instant.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in fractional milliseconds — the unit every EasyTime
    /// report and latency field uses.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Seconds elapsed since the Unix epoch, for run-stamping in binaries
/// and reports that want an absolute timestamp.
///
/// Returns 0 if the system clock reads before the epoch rather than
/// failing: a stamp is advisory metadata, never load-bearing.
pub fn unix_timestamp_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ms() >= 0.0);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn unix_timestamp_is_past_2020() {
        // 2020-01-01T00:00:00Z — guards against returning the 0 fallback
        // on a healthy clock.
        assert!(unix_timestamp_secs() > 1_577_836_800);
    }
}
