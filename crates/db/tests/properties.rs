//! Property-based tests for the SQL engine: executor semantics over
//! arbitrary data and parser round-trips.

use easytime_db::executor::like_match;
use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, Value};
use proptest::prelude::*;

fn db_with_rows(rows: &[(i64, f64, String)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("v", ColumnType::Float),
            Column::new("s", ColumnType::Text),
        ]),
    )
    .unwrap();
    for (k, v, s) in rows {
        db.insert_row("t", vec![Value::Int(*k), Value::Float(*v), Value::Text(s.clone())])
            .unwrap();
    }
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, f64, String)>> {
    prop::collection::vec(
        (-100i64..100, -1e3..1e3f64, "[a-z]{0,8}"),
        0..40,
    )
}

proptest! {
    #[test]
    fn select_star_returns_all_rows(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let r = db.query("SELECT * FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), rows.len());
        prop_assert_eq!(r.columns, vec!["k".to_string(), "v".into(), "s".into()]);
    }

    #[test]
    fn where_filter_matches_rust_filter(rows in rows_strategy(), threshold in -100i64..100) {
        let db = db_with_rows(&rows);
        let r = db
            .query(&format!("SELECT k FROM t WHERE k > {threshold}"))
            .unwrap();
        let expected = rows.iter().filter(|(k, _, _)| *k > threshold).count();
        prop_assert_eq!(r.rows.len(), expected);
    }

    #[test]
    fn order_by_produces_sorted_output(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let r = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let values: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        let r = db.query("SELECT v FROM t ORDER BY v DESC").unwrap();
        let values: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        prop_assert!(values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn limit_truncates(rows in rows_strategy(), limit in 0usize..50) {
        let db = db_with_rows(&rows);
        let r = db.query(&format!("SELECT k FROM t LIMIT {limit}")).unwrap();
        prop_assert_eq!(r.rows.len(), rows.len().min(limit));
    }

    #[test]
    fn aggregates_match_rust_computation(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let db = db_with_rows(&rows);
        let r = db
            .query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t")
            .unwrap();
        let vs: Vec<f64> = rows.iter().map(|(_, v, _)| *v).collect();
        prop_assert_eq!(r.rows[0][0].clone(), Value::Int(rows.len() as i64));
        let sum: f64 = vs.iter().sum();
        prop_assert!((r.rows[0][1].as_f64().unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        let min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.rows[0][2].as_f64().unwrap(), min);
        prop_assert_eq!(r.rows[0][3].as_f64().unwrap(), max);
        let avg = sum / vs.len() as f64;
        prop_assert!((r.rows[0][4].as_f64().unwrap() - avg).abs() < 1e-9 * (1.0 + avg.abs()));
    }

    #[test]
    fn group_by_partitions_rows(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let r = db.query("SELECT s, COUNT(*) AS n FROM t GROUP BY s").unwrap();
        // Group counts must sum to the row count and match a HashMap
        // partition.
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        let mut counts: std::collections::HashMap<&str, i64> = Default::default();
        for (_, _, s) in &rows {
            *counts.entry(s.as_str()).or_insert(0) += 1;
        }
        prop_assert_eq!(r.rows.len(), counts.len());
        for row in &r.rows {
            let key = row[0].as_str().unwrap();
            prop_assert_eq!(Value::Int(counts[key]), row[1].clone());
        }
    }

    #[test]
    fn distinct_removes_exact_duplicates(rows in rows_strategy()) {
        let db = db_with_rows(&rows);
        let r = db.query("SELECT DISTINCT s FROM t").unwrap();
        let unique: std::collections::HashSet<&String> =
            rows.iter().map(|(_, _, s)| s).collect();
        prop_assert_eq!(r.rows.len(), unique.len());
    }

    #[test]
    fn like_prefix_matches_starts_with(s in "[a-z]{0,12}", prefix in "[a-z]{0,4}") {
        let pattern = format!("{prefix}%");
        prop_assert_eq!(like_match(&pattern, &s), s.starts_with(&prefix));
    }

    #[test]
    fn like_contains_matches_contains(s in "[a-z]{0,12}", infix in "[a-z]{1,3}") {
        let pattern = format!("%{infix}%");
        prop_assert_eq!(like_match(&pattern, &s), s.contains(&infix));
    }

    #[test]
    fn string_literals_round_trip_through_insert(s in "[ -~]{0,24}") {
        // Any printable-ASCII string survives the SQL escape → parse →
        // store → select path.
        let mut db = Database::new();
        db.create_table("x", Schema::new(vec![Column::new("s", ColumnType::Text)])).unwrap();
        let escaped = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO x VALUES ('{escaped}')")).unwrap();
        let r = db.query("SELECT s FROM x").unwrap();
        prop_assert_eq!(r.rows[0][0].as_str().unwrap(), s.as_str());
    }

    #[test]
    fn between_is_inclusive_range(rows in rows_strategy(), lo in -50i64..0, hi in 0i64..50) {
        let db = db_with_rows(&rows);
        let r = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE k BETWEEN {lo} AND {hi}"))
            .unwrap();
        let expected = rows.iter().filter(|(k, _, _)| *k >= lo && *k <= hi).count();
        prop_assert_eq!(r.rows[0][0].clone(), Value::Int(expected as i64));
    }
}
