//! Property-style tests for the SQL engine: executor semantics over
//! randomized data and parser round-trips, driven by the workspace's own
//! deterministic RNG.

use easytime_db::executor::like_match;
use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, Value};
use easytime_rng::StdRng;

const CASES: u64 = 32;
const MASTER_SEED: u64 = 0x5017_DB01;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

fn word(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| (b'a' + rng.gen_range(0..26) as u8) as char).collect()
}

fn printable(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| (b' ' + rng.gen_range(0..95) as u8) as char).collect()
}

fn random_rows(rng: &mut StdRng) -> Vec<(i64, f64, String)> {
    let n = rng.gen_range(0..40);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..200) as i64 - 100,
                rng.gen_range_f64(-1e3, 1e3),
                word(rng, 0, 9),
            )
        })
        .collect()
}

fn db_with_rows(rows: &[(i64, f64, String)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("v", ColumnType::Float),
            Column::new("s", ColumnType::Text),
        ]),
    )
    .unwrap();
    for (k, v, s) in rows {
        db.insert_row("t", vec![Value::Int(*k), Value::Float(*v), Value::Text(s.clone())])
            .unwrap();
    }
    db
}

#[test]
fn select_star_returns_all_rows() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let db = db_with_rows(&rows);
        let r = db.query("SELECT * FROM t").unwrap();
        assert_eq!(r.rows.len(), rows.len());
        assert_eq!(r.columns, vec!["k".to_string(), "v".into(), "s".into()]);
    }
}

#[test]
fn where_filter_matches_rust_filter() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(0..200) as i64 - 100;
        let db = db_with_rows(&rows);
        let r = db.query(&format!("SELECT k FROM t WHERE k > {threshold}")).unwrap();
        let expected = rows.iter().filter(|(k, _, _)| *k > threshold).count();
        assert_eq!(r.rows.len(), expected);
    }
}

#[test]
fn order_by_produces_sorted_output() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let db = db_with_rows(&rows);
        let r = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let values: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        let r = db.query("SELECT v FROM t ORDER BY v DESC").unwrap();
        let values: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] >= w[1]));
    }
}

#[test]
fn limit_truncates() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let limit = rng.gen_range(0..50);
        let db = db_with_rows(&rows);
        let r = db.query(&format!("SELECT k FROM t LIMIT {limit}")).unwrap();
        assert_eq!(r.rows.len(), rows.len().min(limit));
    }
}

#[test]
fn aggregates_match_rust_computation() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        if rows.is_empty() {
            continue;
        }
        let db = db_with_rows(&rows);
        let r = db.query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t").unwrap();
        let vs: Vec<f64> = rows.iter().map(|(_, v, _)| *v).collect();
        assert_eq!(r.rows[0][0].clone(), Value::Int(rows.len() as i64));
        let sum: f64 = vs.iter().sum();
        assert!((r.rows[0][1].as_f64().unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        let min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.rows[0][2].as_f64().unwrap(), min);
        assert_eq!(r.rows[0][3].as_f64().unwrap(), max);
        let avg = sum / vs.len() as f64;
        assert!((r.rows[0][4].as_f64().unwrap() - avg).abs() < 1e-9 * (1.0 + avg.abs()));
    }
}

#[test]
fn group_by_partitions_rows() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let db = db_with_rows(&rows);
        let r = db.query("SELECT s, COUNT(*) AS n FROM t GROUP BY s").unwrap();
        // Group counts must sum to the row count and match a HashMap
        // partition.
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, rows.len() as i64);
        let mut counts: std::collections::HashMap<&str, i64> = Default::default();
        for (_, _, s) in &rows {
            *counts.entry(s.as_str()).or_insert(0) += 1;
        }
        assert_eq!(r.rows.len(), counts.len());
        for row in &r.rows {
            let key = row[0].as_str().unwrap();
            assert_eq!(Value::Int(counts[key]), row[1].clone());
        }
    }
}

#[test]
fn distinct_removes_exact_duplicates() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let db = db_with_rows(&rows);
        let r = db.query("SELECT DISTINCT s FROM t").unwrap();
        let unique: std::collections::HashSet<&String> = rows.iter().map(|(_, _, s)| s).collect();
        assert_eq!(r.rows.len(), unique.len());
    }
}

#[test]
fn like_prefix_matches_starts_with() {
    for mut rng in cases() {
        let s = word(&mut rng, 0, 13);
        let prefix = word(&mut rng, 0, 5);
        let pattern = format!("{prefix}%");
        assert_eq!(like_match(&pattern, &s), s.starts_with(&prefix));
    }
}

#[test]
fn like_contains_matches_contains() {
    for mut rng in cases() {
        let s = word(&mut rng, 0, 13);
        let infix = word(&mut rng, 1, 4);
        let pattern = format!("%{infix}%");
        assert_eq!(like_match(&pattern, &s), s.contains(&infix));
    }
}

#[test]
fn string_literals_round_trip_through_insert() {
    for mut rng in cases() {
        // Any printable-ASCII string survives the SQL escape → parse →
        // store → select path.
        let s = printable(&mut rng, 0, 25);
        let mut db = Database::new();
        db.create_table("x", Schema::new(vec![Column::new("s", ColumnType::Text)])).unwrap();
        let escaped = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO x VALUES ('{escaped}')")).unwrap();
        let r = db.query("SELECT s FROM x").unwrap();
        assert_eq!(r.rows[0][0].as_str().unwrap(), s.as_str());
    }
}

#[test]
fn between_is_inclusive_range() {
    for mut rng in cases() {
        let rows = random_rows(&mut rng);
        let lo = rng.gen_range(0..50) as i64 - 50;
        let hi = rng.gen_range(0..50) as i64;
        let db = db_with_rows(&rows);
        let r = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE k BETWEEN {lo} AND {hi}"))
            .unwrap();
        let expected = rows.iter().filter(|(k, _, _)| *k >= lo && *k <= hi).count();
        assert_eq!(r.rows[0][0].clone(), Value::Int(expected as i64));
    }
}
