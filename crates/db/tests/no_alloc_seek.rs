//! Proof that warm index seeks are allocation-free.
//!
//! A counting global allocator wraps the system allocator and the two hot
//! index entry points — `Index::probe_into` (full-width key lookup) and
//! `Index::collect_range` (ascending prefix/range walk) — run repeatedly
//! against a populated index with a pre-built key and a reused output
//! buffer. After a warm-up pass grows the buffer to capacity, N seeks and
//! 10·N seeks must cost the *same* number of allocations (zero per
//! additional seek): the B-tree lookup, the prefix comparison, and the id
//! copy all work in place. (The descending walk deliberately buffers key
//! groups for reversal and is excluded — it is not on the probe hot path.)
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this test binary opts back in locally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use easytime_db::index::IndexKey;
use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, Value};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn seek_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "results",
        Schema::new(vec![
            Column::new("method", ColumnType::Text),
            Column::new("horizon", ColumnType::Int),
            Column::new("mae", ColumnType::Float),
        ]),
    )
    .unwrap();
    let methods = ["naive", "theta", "ses", "drift"];
    for i in 0..4000usize {
        db.insert_row(
            "results",
            vec![
                Value::Text(methods[i % methods.len()].to_string()),
                Value::Int([24, 96, 336][i % 3]),
                Value::Float(i as f64 * 0.001),
            ],
        )
        .unwrap();
    }
    db.create_index("ix_mh", "results", &["method", "horizon"]).unwrap();
    db
}

/// Minimum allocation count over several repeats of `n` iterations of
/// `body`: the seek loop's own count is deterministic, while any harness
/// threads sharing the process allocator can only *add* strays, so the
/// minimum converges to the true per-loop cost.
fn measured<F: FnMut()>(n: usize, mut body: F) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..n {
            body();
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        min = min.min(after - before);
    }
    min
}

// One test function only: a second concurrently-running test would
// allocate during the measurement window and make the count flaky.
#[test]
fn warm_probe_and_range_walk_are_allocation_free() {
    let db = seek_db();
    let ix = db.index("ix_mh").expect("index exists");

    // Full-width point probe.
    let key = IndexKey::from_values(vec![Value::Text("theta".into()), Value::Int(96)]);
    let mut out = Vec::new();
    ix.probe_into(&key, &mut out); // warm-up: grow `out` to capacity
    let expected = out.len();
    assert!(expected > 100, "the probe must return a real id list, got {expected}");
    let probe_10 = measured(10, || {
        ix.probe_into(&key, &mut out);
        assert_eq!(out.len(), expected);
    });
    let probe_100 = measured(100, || {
        ix.probe_into(&key, &mut out);
        assert_eq!(out.len(), expected);
    });
    assert_eq!(
        probe_10, probe_100,
        "90 extra warm probes must not allocate: 10 probes cost {probe_10} \
         allocations, 100 cost {probe_100}"
    );

    // Ascending prefix + lower-bound range walk.
    let lo = Value::Int(90);
    let start = IndexKey::from_values(vec![Value::Text("theta".into()), lo.clone()]);
    out.clear(); // collect_range appends; clearing keeps capacity, no alloc
    ix.collect_range(&start, 1, Some((&lo, true)), None, false, &mut out);
    let expected = out.len();
    assert!(expected > 100, "the range walk must return a real id list, got {expected}");
    let range_10 = measured(10, || {
        out.clear();
        ix.collect_range(&start, 1, Some((&lo, true)), None, false, &mut out);
        assert_eq!(out.len(), expected);
    });
    let range_100 = measured(100, || {
        out.clear();
        ix.collect_range(&start, 1, Some((&lo, true)), None, false, &mut out);
        assert_eq!(out.len(), expected);
    });
    assert_eq!(
        range_10, range_100,
        "90 extra warm range walks must not allocate: 10 walks cost {range_10} \
         allocations, 100 cost {range_100}"
    );
}
