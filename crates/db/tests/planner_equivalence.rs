//! Property suite: the cost-based planner is an *optimization*, never a
//! semantics change.
//!
//! For a corpus of generated queries — point and range filters, LIKE/IN
//! residuals, joins, GROUP BY + aggregates, HAVING, DISTINCT, ORDER BY
//! with DESC, LIMIT, and data containing NULLs and NaN metrics — every
//! planned result must be *bit-identical* (float bits compared exactly) to
//! the naive scan oracle's result. The plan explain must also be
//! byte-identical across repeated runs and across databases whose indexes
//! were created in a different order.

use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, QueryResult, Value};
use easytime_rng::StdRng;
use std::fmt::Write;

const METHODS: [&str; 5] = ["naive", "theta", "ses", "drift", "arima"];
const DOMAINS: [&str; 4] = ["web", "economic", "traffic", "energy"];
const HORIZONS: [i64; 6] = [24, 48, 96, 192, 336, 720];

/// Index definitions over the two tables; created in shuffled order.
const INDEXES: [(&str, &str, &[&str]); 7] = [
    ("ix_r_method", "results", &["method"]),
    ("ix_r_horizon", "results", &["horizon"]),
    ("ix_r_mh", "results", &["method", "horizon"]),
    ("ix_r_mae", "results", &["mae"]),
    ("ix_r_dh", "results", &["dataset_id", "horizon"]),
    ("ix_d_id", "datasets", &["id"]),
    ("ix_d_domain", "datasets", &["domain"]),
];

/// Builds the benchmark-shaped test database. `index_shuffle` seeds the
/// index-creation order only — contents are identical for a given `seed`.
fn build_db(seed: u64, index_shuffle: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_table(
        "datasets",
        Schema::new(vec![
            Column::new("id", ColumnType::Text),
            Column::new("domain", ColumnType::Text),
            Column::new("trend", ColumnType::Float),
        ]),
    )
    .unwrap();
    db.create_table(
        "results",
        Schema::new(vec![
            Column::new("dataset_id", ColumnType::Text),
            Column::new("method", ColumnType::Text),
            Column::new("horizon", ColumnType::Int),
            Column::new("mae", ColumnType::Float),
        ]),
    )
    .unwrap();

    let n_datasets = 12 + rng.gen_range(0..8);
    let mut ids = Vec::new();
    for i in 0..n_datasets {
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let id = format!("{domain}_{i:02}");
        db.insert_row(
            "datasets",
            vec![
                Value::Text(id.clone()),
                Value::Text(domain.to_string()),
                Value::Float(rng.gen_range_f64(0.0, 1.0)),
            ],
        )
        .unwrap();
        ids.push(id);
    }
    let n_results = 250 + rng.gen_range(0..150);
    for _ in 0..n_results {
        // ~1/20 rows have a NULL dataset id, ~1/12 a NaN MAE, ~1/15 a NULL
        // MAE — the messy cases the NaN/NULL ordering policy exists for.
        let dataset = if rng.gen_range(0..20) == 0 {
            Value::Null
        } else {
            Value::Text(ids[rng.gen_range(0..ids.len())].clone())
        };
        let mae = match rng.gen_range(0..60) {
            0..5 => Value::Float(f64::NAN),
            5..9 => Value::Null,
            _ => Value::Float(rng.gen_range_f64(0.1, 9.0)),
        };
        db.insert_row(
            "results",
            vec![
                dataset,
                Value::Text(METHODS[rng.gen_range(0..METHODS.len())].to_string()),
                Value::Int(HORIZONS[rng.gen_range(0..HORIZONS.len())]),
                mae,
            ],
        )
        .unwrap();
    }

    let mut order: Vec<usize> = (0..INDEXES.len()).collect();
    StdRng::seed_from_u64(index_shuffle).shuffle(&mut order);
    for i in order {
        let (name, table, cols) = INDEXES[i];
        db.create_index(name, table, cols).unwrap();
    }
    db
}

/// Canonical rendering of a result with exact float bits, so NaN == NaN
/// and -0.0 != 0.0 — a strictly stronger check than `PartialEq`.
fn canon(r: &QueryResult) -> String {
    let mut s = String::new();
    writeln!(s, "{:?}", r.columns).unwrap();
    for row in &r.rows {
        for v in row {
            match v {
                Value::Float(f) => write!(s, "F{:016x};", f.to_bits()).unwrap(),
                other => write!(s, "{other:?};").unwrap(),
            }
        }
        s.push('\n');
    }
    s
}

/// One generated query. Predicates are type-correct by construction so
/// pushdown can never change which side of an eval error a query lands on.
fn gen_query(rng: &mut StdRng) -> String {
    let method = METHODS[rng.gen_range(0..METHODS.len())];
    let horizon = HORIZONS[rng.gen_range(0..HORIZONS.len())];
    let h2 = HORIZONS[rng.gen_range(0..HORIZONS.len())];
    let (h_lo, h_hi) = (horizon.min(h2), horizon.max(h2));
    let mae_bound = rng.gen_range_f64(0.5, 8.0);
    let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
    let trend = rng.gen_range_f64(0.1, 0.9);

    let preds: [String; 8] = [
        format!("method = '{method}'"),
        format!("horizon = {horizon}"),
        format!("horizon >= {h_lo}"),
        format!("horizon BETWEEN {h_lo} AND {h_hi}"),
        format!("mae <= {mae_bound}"),
        format!("mae >= {mae_bound}"),
        format!("dataset_id LIKE '{domain}%'"),
        format!("method IN ('{method}', 'naive')"),
    ];
    let mut chosen: Vec<&str> = Vec::new();
    for p in &preds {
        if rng.gen_range(0..3) == 0 {
            chosen.push(p);
        }
    }
    let where_clause = if chosen.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", chosen.join(" AND "))
    };
    let limit = match rng.gen_range(0..3) {
        0 => format!(" LIMIT {}", rng.gen_range(1..30)),
        _ => String::new(),
    };
    let desc = if rng.gen_bool(0.5) { " DESC" } else { "" };

    match rng.gen_range(0..8) {
        0 => format!("SELECT * FROM results{where_clause} ORDER BY mae{desc}, method{limit}"),
        1 => format!(
            "SELECT method, COUNT(*) AS n, AVG(mae) AS m FROM results{where_clause} \
             GROUP BY method HAVING COUNT(*) >= {k} ORDER BY m{desc}, method{limit}",
            k = rng.gen_range(1..5)
        ),
        2 => format!("SELECT DISTINCT method FROM results{where_clause} ORDER BY method{desc}"),
        3 => format!(
            "SELECT r.method, d.domain, r.mae FROM results r \
             JOIN datasets d ON r.dataset_id = d.id \
             WHERE r.method = '{method}' AND d.trend >= {trend:.3} \
             ORDER BY r.mae{desc}, d.domain{limit}"
        ),
        4 => format!(
            "SELECT r.method, AVG(r.mae) AS m, COUNT(*) AS n FROM results r \
             JOIN datasets d ON r.dataset_id = d.id \
             WHERE d.domain = '{domain}' AND r.horizon >= {h_lo} \
             GROUP BY r.method ORDER BY m{desc}, r.method{limit}"
        ),
        5 => format!(
            "SELECT method, horizon, mae * 2 AS double_mae FROM results{where_clause} \
             ORDER BY horizon{desc}, mae{limit}"
        ),
        // Elision-friendly shapes: a single ORDER BY key that is the tail
        // of an index, with and without an eq prefix.
        6 => format!("SELECT * FROM results WHERE method = '{method}' ORDER BY horizon{limit}"),
        _ => format!("SELECT method, mae FROM results ORDER BY mae{desc}{limit}"),
    }
}

#[test]
fn planned_results_are_bit_identical_to_the_scan_oracle() {
    for case in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0x91A7_0E11).derive(case);
        let db = build_db(0xDB_5EED + case, 7 * case + 1);
        for q in 0..80 {
            let sql = gen_query(&mut rng);
            let planned = db.query(&sql);
            let naive = db.query_scan(&sql);
            match (planned, naive) {
                (Ok(p), Ok(n)) => {
                    assert_eq!(canon(&p), canon(&n), "case {case} query {q} diverged: {sql}");
                }
                (p, n) => panic!("case {case} query {q}: results {p:?} vs {n:?} for {sql}"),
            }
        }
    }
}

#[test]
fn explain_is_byte_identical_across_runs_and_index_creation_order() {
    let db_a = build_db(0xDB_5EED, 1);
    let db_b = build_db(0xDB_5EED, 99); // same data, different index order
    let mut rng = StdRng::seed_from_u64(0xE4_914);
    let mut seeks = 0usize;
    let mut elided = 0usize;
    for q in 0..60 {
        let sql = gen_query(&mut rng);
        let e1 = db_a.explain(&sql).unwrap();
        let e2 = db_a.explain(&sql).unwrap();
        let e3 = db_b.explain(&sql).unwrap();
        assert_eq!(e1, e2, "query {q}: explain drifted across runs: {sql}");
        assert_eq!(e1, e3, "query {q}: explain depends on index creation order: {sql}");
        assert_eq!(
            canon(&db_a.query(&sql).unwrap()),
            canon(&db_b.query(&sql).unwrap()),
            "query {q}: result depends on index creation order: {sql}"
        );
        if e1.contains("index-seek") || e1.contains("index-probe") {
            seeks += 1;
        }
        if e1.contains("sort elided") {
            elided += 1;
        }
    }
    assert!(seeks > 0, "the corpus never exercised an index access path");
    assert!(elided > 0, "the corpus never exercised sort elision");
}

#[test]
fn targeted_plan_shapes() {
    let db = build_db(0xDB_5EED, 3);

    // Full-prefix point seek on the composite index.
    let e = db
        .explain("SELECT mae FROM results WHERE method = 'theta' AND horizon = 96")
        .unwrap();
    assert!(e.contains("index-seek ix_r_mh"), "{e}");

    // Eq prefix + ORDER BY on the index tail: sort elided.
    let e = db
        .explain("SELECT * FROM results WHERE method = 'theta' ORDER BY horizon")
        .unwrap();
    assert!(e.contains("index-seek ix_r_mh"), "{e}");
    assert!(e.contains("sort elided"), "{e}");

    // Descending walk over a single-column index, no sort operator.
    let e = db.explain("SELECT mae FROM results ORDER BY mae DESC LIMIT 5").unwrap();
    assert!(e.contains("ix_r_mae"), "{e}");
    assert!(e.contains("desc"), "{e}");
    assert!(e.contains("sort elided"), "{e}");

    // Join picks the index probe into datasets.
    let e = db
        .explain(
            "SELECT r.method, d.domain FROM results r JOIN datasets d ON r.dataset_id = d.id",
        )
        .unwrap();
    assert!(e.contains("index-probe ix_d_id"), "{e}");

    // GROUP BY on an indexed column elides the grouping sort order.
    let e = db
        .explain(
            "SELECT method, COUNT(*) AS n FROM results GROUP BY method ORDER BY method",
        )
        .unwrap();
    assert!(e.contains("sort elided"), "{e}");
}
