//! Determinism lock-in for the SQL engine (lint rule R8 policy).
//!
//! GROUP BY and DISTINCT are implemented with insertion-ordered group
//! vectors — the typed `BTreeMap`/`BTreeSet` key structures inside the
//! executor are only key→index lookups and are never iterated for output —
//! so identical queries over identical data must return
//! identically-ordered rows, run after run.
//! ORDER BY over floats must also be total: a NaN value sorts to a fixed
//! position (after every real number, via `f64::total_cmp`) instead of
//! comparing "equal" to everything and floating around with input order.

use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, Value};
use easytime_rng::StdRng;

fn db_with_sales(rows: &[(String, i64, f64)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "sales",
        Schema::new(vec![
            Column::new("region", ColumnType::Text),
            Column::new("units", ColumnType::Int),
            Column::new("score", ColumnType::Float),
        ]),
    )
    .unwrap();
    for (region, units, score) in rows {
        db.insert_row(
            "sales",
            vec![Value::Text(region.clone()), Value::Int(*units), Value::Float(*score)],
        )
        .unwrap();
    }
    db
}

fn random_sales(rng: &mut StdRng) -> Vec<(String, i64, f64)> {
    let regions = ["north", "south", "east", "west", "core"];
    let n = rng.gen_range(5..60);
    (0..n)
        .map(|_| {
            let region = regions[rng.gen_range(0..regions.len())].to_string();
            let units = rng.gen_range(0..100) as i64;
            // Roughly 1 in 8 scores is NaN (a failed measurement).
            let score = if rng.gen_range(0..8) == 0 {
                f64::NAN
            } else {
                rng.gen_range_f64(-50.0, 50.0)
            };
            (region, units, score)
        })
        .collect()
}

#[test]
fn group_by_returns_identically_ordered_rows_across_runs() {
    for case in 0..24 {
        let mut rng = StdRng::seed_from_u64(0x0DB8_08D3).derive(case);
        let rows = random_sales(&mut rng);
        let db = db_with_sales(&rows);
        let sql = "SELECT region, COUNT(*), SUM(units) FROM sales GROUP BY region";
        let first = db.query(sql).unwrap();
        for _ in 0..10 {
            assert_eq!(db.query(sql).unwrap(), first, "case {case}: GROUP BY order drifted");
        }
        // A freshly-built database over the same rows agrees too: the
        // order is a function of the data, not of process state.
        let rebuilt = db_with_sales(&rows);
        assert_eq!(rebuilt.query(sql).unwrap(), first, "case {case}: rebuild changed order");
    }
}

#[test]
fn distinct_preserves_first_appearance_order() {
    let rows = vec![
        ("west".to_string(), 1, 1.0),
        ("east".to_string(), 2, 2.0),
        ("west".to_string(), 3, 3.0),
        ("north".to_string(), 4, 4.0),
        ("east".to_string(), 5, 5.0),
    ];
    let db = db_with_sales(&rows);
    let result = db.query("SELECT DISTINCT region FROM sales").unwrap();
    let got: Vec<&Value> = result.rows.iter().map(|r| &r[0]).collect();
    assert_eq!(
        got,
        vec![
            &Value::Text("west".into()),
            &Value::Text("east".into()),
            &Value::Text("north".into())
        ]
    );
}

#[test]
fn order_by_places_nan_deterministically_after_numbers() {
    // Two row layouts with the same multiset of scores but NaN in
    // different input positions.
    let a = vec![
        ("a".to_string(), 1, f64::NAN),
        ("b".to_string(), 2, 3.0),
        ("c".to_string(), 3, -1.0),
        ("d".to_string(), 4, 7.5),
    ];
    let mut b = a.clone();
    b.swap(0, 2);
    b.swap(1, 3);

    let sql = "SELECT region, score FROM sales ORDER BY score";
    let ra = db_with_sales(&a).query(sql).unwrap();
    let rb = db_with_sales(&b).query(sql).unwrap();

    let regions =
        |r: &easytime_db::QueryResult| r.rows.iter().map(|row| row[0].clone()).collect::<Vec<_>>();
    // NaN sorts after every real number — and lands there regardless of
    // where it appeared in the input.
    assert_eq!(
        regions(&ra),
        vec![
            Value::Text("c".into()),
            Value::Text("b".into()),
            Value::Text("d".into()),
            Value::Text("a".into())
        ]
    );
    assert_eq!(regions(&ra), regions(&rb));
}

#[test]
fn order_key_is_a_total_order_even_with_nan() {
    use std::cmp::Ordering;
    let nan = Value::Float(f64::NAN);
    let one = Value::Float(1.0);
    let int = Value::Int(5);
    // Antisymmetry: NaN is strictly after numbers, not "equal" to them.
    assert_eq!(nan.order_key(&one), Ordering::Greater);
    assert_eq!(one.order_key(&nan), Ordering::Less);
    assert_eq!(nan.order_key(&int), Ordering::Greater);
    assert_eq!(nan.order_key(&nan), Ordering::Equal);
}
