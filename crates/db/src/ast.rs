//! SQL abstract syntax tree.

use crate::schema::ColumnType;
use crate::value::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`.
    Select(SelectStmt),
    /// `INSERT INTO … VALUES …`.
    Insert(InsertStmt),
    /// `CREATE TABLE …`.
    CreateTable(CreateTableStmt),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct SelectStmt {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projections.
    pub items: Vec<SelectItem>,
    /// Base table and optional alias.
    pub from: TableRef,
    /// Inner joins in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` expressions with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column alias.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct TableRef {
    /// Table name (lowercased).
    pub name: String,
    /// Alias (lowercased), when given.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in the query.
    pub(crate) fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `JOIN … ON …` clause (inner joins only).
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Join predicate.
    pub on: Expr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum BinOp {
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(expr)` or `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl Aggregate {
    /// Parses an aggregate function name.
    pub fn parse(name: &str) -> Option<Aggregate> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(Aggregate::Count),
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            _ => None,
        }
    }

    /// Canonical uppercase name.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        }
    }
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum Expr {
    /// Column reference, optionally qualified (`table.column`).
    Column {
        /// Table qualifier, lowercased.
        table: Option<String>,
        /// Column name, lowercased.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Aggregate call; `arg` is `None` for `COUNT(*)`.
    AggregateCall {
        /// Which aggregate.
        func: Aggregate,
        /// Argument expression (`None` = `*`).
        arg: Option<Box<Expr>>,
    },
    /// `expr LIKE 'pattern'` (`%` and `_` wildcards).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern literal.
        pattern: String,
        /// Negated (`NOT LIKE`).
        negated: bool,
    },
    /// `expr IN (v1, v2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated (`NOT IN`).
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated (`NOT BETWEEN`).
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// True when the expression (recursively) contains an aggregate call.
    pub(crate) fn contains_aggregate(&self) -> bool {
        match self {
            Expr::AggregateCall { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate()
                    || low.contains_aggregate()
                    || high.contains_aggregate()
            }
            Expr::Column { .. } | Expr::Literal(_) => false,
        }
    }

    /// Visits every column reference in the expression.
    pub(crate) fn visit_columns(&self, f: &mut impl FnMut(Option<&str>, &str)) {
        match self {
            Expr::Column { table, name } => f(table.as_deref(), name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Neg(e) | Expr::Not(e) => e.visit_columns(f),
            Expr::AggregateCall { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
        }
    }

    /// Default output column name for an unaliased projection.
    pub(crate) fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::AggregateCall { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name().to_ascii_lowercase(), a.default_name()),
                None => format!("{}(*)", func.name().to_ascii_lowercase()),
            },
            _ => "expr".to_string(),
        }
    }
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct InsertStmt {
    /// Target table (lowercased).
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Row tuples of literal values.
    pub rows: Vec<Vec<Value>>,
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct CreateTableStmt {
    /// Table name (lowercased).
    pub name: String,
    /// Column definitions.
    pub columns: Vec<(String, ColumnType)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_parsing() {
        assert_eq!(Aggregate::parse("count"), Some(Aggregate::Count));
        assert_eq!(Aggregate::parse("AVG"), Some(Aggregate::Avg));
        assert_eq!(Aggregate::parse("median"), None);
        assert_eq!(Aggregate::Sum.name(), "SUM");
    }

    #[test]
    fn contains_aggregate_recurses() {
        let plain = Expr::Column { table: None, name: "x".into() };
        assert!(!plain.contains_aggregate());
        let agg = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::AggregateCall { func: Aggregate::Sum, arg: None }),
            right: Box::new(Expr::Literal(Value::Int(1))),
        };
        assert!(agg.contains_aggregate());
        let inlist = Expr::InList {
            expr: Box::new(plain.clone()),
            list: vec![Expr::AggregateCall { func: Aggregate::Max, arg: None }],
            negated: false,
        };
        assert!(inlist.contains_aggregate());
    }

    #[test]
    fn visit_columns_finds_qualified_references() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Column { table: Some("t".into()), name: "a".into() }),
            right: Box::new(Expr::Like {
                expr: Box::new(Expr::Column { table: None, name: "b".into() }),
                pattern: "x%".into(),
                negated: false,
            }),
        };
        let mut seen = Vec::new();
        e.visit_columns(&mut |t, c| seen.push((t.map(str::to_string), c.to_string())));
        assert_eq!(
            seen,
            vec![(Some("t".to_string()), "a".to_string()), (None, "b".to_string())]
        );
    }

    #[test]
    fn default_names() {
        let col = Expr::Column { table: Some("t".into()), name: "mae".into() };
        assert_eq!(col.default_name(), "mae");
        let agg = Expr::AggregateCall {
            func: Aggregate::Avg,
            arg: Some(Box::new(col)),
        };
        assert_eq!(agg.default_name(), "avg(mae)");
        let star = Expr::AggregateCall { func: Aggregate::Count, arg: None };
        assert_eq!(star.default_name(), "count(*)");
    }

    #[test]
    fn table_ref_effective_name() {
        let plain = TableRef { name: "results".into(), alias: None };
        assert_eq!(plain.effective_name(), "results");
        let aliased = TableRef { name: "results".into(), alias: Some("r".into()) };
        assert_eq!(aliased.effective_name(), "r");
    }
}
