//! SQL verification — the pre-execution check of Figure 3.
//!
//! The paper's Q&A workflow stresses that "SQL statements are first
//! verified for correctness before they are executed … This two-step
//! approach ensures the accuracy and reliability of the query execution."
//! [`verify_select`] implements that step: parse, restrict to read-only
//! `SELECT`, resolve every table against the catalog, and resolve every
//! column reference against the (aliased) schemas, so no malformed or
//! unsafe statement ever reaches the executor.

use crate::ast::{Expr, SelectItem, SelectStmt, Statement};
use crate::database::Database;
use crate::error::DbError;
use crate::parser::parse;

/// Verifies that `sql` is a well-formed, read-only `SELECT` whose tables
/// and columns all exist. Returns the parsed statement on success.
pub(crate) fn verify_select(db: &Database, sql: &str) -> Result<SelectStmt, DbError> {
    let stmt = parse(sql)?;
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::Insert(_) => {
            return Err(DbError::VerificationFailed {
                reason: "only read-only SELECT statements are allowed here (got INSERT)".into(),
            })
        }
        Statement::CreateTable(_) => {
            return Err(DbError::VerificationFailed {
                reason: "only read-only SELECT statements are allowed here (got CREATE TABLE)"
                    .into(),
            })
        }
    };
    check_select(db, &select)?;
    Ok(select)
}

/// Schema-checks a parsed `SELECT` against the catalog.
pub(crate) fn check_select(db: &Database, select: &SelectStmt) -> Result<(), DbError> {
    // Collect (effective name, real table) pairs; verify the tables exist.
    let mut scopes: Vec<(String, Vec<String>)> = Vec::new();
    let base = db.table(&select.from.name)?;
    scopes.push((select.from.effective_name().to_ascii_lowercase(), base.schema.names()));
    for join in &select.joins {
        let t = db.table(&join.table.name)?;
        let eff = join.table.effective_name().to_ascii_lowercase();
        if scopes.iter().any(|(n, _)| *n == eff) {
            return Err(DbError::VerificationFailed {
                reason: format!("duplicate table alias '{eff}'"),
            });
        }
        scopes.push((eff, t.schema.names()));
    }

    // Output aliases are legal in ORDER BY.
    let mut aliases: Vec<String> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            aliases.push(a.to_ascii_lowercase());
        }
    }

    let resolve = |table: Option<&str>, name: &str| -> Result<(), DbError> {
        let name = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                let scope = scopes.iter().find(|(n, _)| *n == t).ok_or(DbError::UnknownTable {
                    name: t.clone(),
                })?;
                if scope.1.contains(&name) {
                    Ok(())
                } else {
                    Err(DbError::UnknownColumn { name: format!("{t}.{name}") })
                }
            }
            None => {
                if scopes.iter().any(|(_, cols)| cols.contains(&name)) {
                    Ok(())
                } else {
                    Err(DbError::UnknownColumn { name })
                }
            }
        }
    };

    let check_expr = |e: &Expr| -> Result<(), DbError> {
        let mut err = None;
        e.visit_columns(&mut |t, c| {
            if err.is_none() {
                if let Err(e) = resolve(t, c) {
                    err = Some(e);
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    };

    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            check_expr(expr)?;
        }
    }
    for join in &select.joins {
        check_expr(&join.on)?;
    }
    if let Some(w) = &select.where_clause {
        check_expr(w)?;
        if w.contains_aggregate() {
            return Err(DbError::VerificationFailed {
                reason: "aggregates are not allowed in WHERE (use HAVING)".into(),
            });
        }
    }
    for g in &select.group_by {
        check_expr(g)?;
    }
    if let Some(h) = &select.having {
        check_expr(h)?;
    }
    for (o, _) in &select.order_by {
        // An ORDER BY column may be an output alias instead of a table
        // column.
        if let Expr::Column { table: None, name } = o {
            if aliases.contains(&name.to_ascii_lowercase()) {
                continue;
            }
        }
        check_expr(o)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE results (dataset_id TEXT, method TEXT, mae REAL)").unwrap();
        db.execute("CREATE TABLE datasets (id TEXT, domain TEXT)").unwrap();
        db
    }

    #[test]
    fn accepts_valid_select() {
        let d = db();
        assert!(verify_select(&d, "SELECT method, AVG(mae) AS m FROM results GROUP BY method ORDER BY m").is_ok());
        assert!(verify_select(
            &d,
            "SELECT r.method FROM results r JOIN datasets d ON r.dataset_id = d.id"
        )
        .is_ok());
    }

    #[test]
    fn rejects_writes() {
        let d = db();
        assert!(matches!(
            verify_select(&d, "INSERT INTO results VALUES ('a', 'b', 1.0)"),
            Err(DbError::VerificationFailed { .. })
        ));
        assert!(matches!(
            verify_select(&d, "CREATE TABLE x (a INTEGER)"),
            Err(DbError::VerificationFailed { .. })
        ));
    }

    #[test]
    fn rejects_unknown_tables_and_columns() {
        let d = db();
        assert!(matches!(
            verify_select(&d, "SELECT * FROM nope"),
            Err(DbError::UnknownTable { .. })
        ));
        assert!(matches!(
            verify_select(&d, "SELECT wrong FROM results"),
            Err(DbError::UnknownColumn { .. })
        ));
        assert!(matches!(
            verify_select(&d, "SELECT x.method FROM results r"),
            Err(DbError::UnknownTable { .. })
        ));
        assert!(matches!(
            verify_select(&d, "SELECT r.nope FROM results r"),
            Err(DbError::UnknownColumn { .. })
        ));
        assert!(matches!(
            verify_select(&d, "SELECT method FROM results WHERE domain = 'web'"),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn rejects_aggregates_in_where() {
        let d = db();
        assert!(matches!(
            verify_select(&d, "SELECT method FROM results WHERE AVG(mae) > 1"),
            Err(DbError::VerificationFailed { .. })
        ));
    }

    #[test]
    fn order_by_alias_is_allowed_unknown_alias_is_not() {
        let d = db();
        assert!(
            verify_select(&d, "SELECT AVG(mae) AS m FROM results ORDER BY m DESC").is_ok()
        );
        assert!(matches!(
            verify_select(&d, "SELECT AVG(mae) AS m FROM results ORDER BY z"),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicate_aliases_rejected() {
        let d = db();
        assert!(matches!(
            verify_select(
                &d,
                "SELECT 1 FROM results r JOIN datasets r ON r.dataset_id = r.id"
            ),
            Err(DbError::VerificationFailed { .. })
        ));
    }

    #[test]
    fn parse_errors_surface() {
        let d = db();
        assert!(matches!(
            verify_select(&d, "SELECT FROM WHERE"),
            Err(DbError::Parse { .. })
        ));
    }
}
