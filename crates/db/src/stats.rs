//! Per-table statistics for the cost-based planner.
//!
//! Statistics are derived on demand from the catalog and the secondary
//! indexes — no separate maintenance path, so they can never go stale:
//! row counts come from row storage, distinct counts from index key
//! counts, and min/max from the first/last key of an index led by the
//! column. Everything here is a deterministic function of table contents,
//! which keeps plan choice (and the explain text) byte-stable across runs
//! and across index-creation order.

use crate::database::Database;
use crate::value::Value;
use std::collections::BTreeMap;

/// Statistics for one column, keyed by schema position.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColStats {
    /// Distinct-value estimate (exact for single-column indexes; an upper
    /// bound when only multi-column indexes lead with this column).
    pub(crate) distinct: Option<usize>,
    /// Smallest value in `order_key` order.
    pub(crate) min: Option<Value>,
    /// Largest value in `order_key` order.
    pub(crate) max: Option<Value>,
}

/// Statistics for one table.
#[derive(Debug, Clone, Default)]
pub(crate) struct TableStats {
    /// Total row count.
    pub(crate) rows: usize,
    /// Per-column stats for columns leading at least one index.
    pub(crate) cols: BTreeMap<usize, ColStats>,
}

impl TableStats {
    /// Equality selectivity for a predicate on column `col`:
    /// `1 / distinct` when an index supplies a distinct count, else a
    /// conservative default.
    pub(crate) fn eq_selectivity(&self, col: usize) -> f64 {
        let distinct = self.cols.get(&col).and_then(|c| c.distinct).unwrap_or(20);
        1.0 / distinct.max(1) as f64
    }

    /// Range selectivity for bounds on column `col`, interpolated over the
    /// observed [min, max] span when both are numeric; a fixed default
    /// otherwise.
    pub(crate) fn range_selectivity(
        &self,
        col: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> f64 {
        const DEFAULT: f64 = 0.25;
        let Some(cs) = self.cols.get(&col) else { return DEFAULT };
        let (Some(min), Some(max)) =
            (cs.min.as_ref().and_then(Value::as_f64), cs.max.as_ref().and_then(Value::as_f64))
        else {
            return DEFAULT;
        };
        let span = max - min;
        if !span.is_finite() || span <= 0.0 {
            return DEFAULT;
        }
        let lo = lo.and_then(Value::as_f64).unwrap_or(min).max(min);
        let hi = hi.and_then(Value::as_f64).unwrap_or(max).min(max);
        let frac = (hi - lo) / span;
        if frac.is_finite() {
            frac.clamp(0.0005, 1.0)
        } else {
            DEFAULT
        }
    }
}

/// Gathers statistics for `table` (real, lowercased name) from its row
/// storage and secondary indexes.
pub(crate) fn gather(db: &Database, table: &str) -> TableStats {
    let rows = db.table(table).map(|t| t.rows.len()).unwrap_or(0);
    let mut cols: BTreeMap<usize, ColStats> = BTreeMap::new();
    for ix in db.indexes_for(table) {
        let lead = ix.positions()[0];
        let entry = cols.entry(lead).or_default();
        let keys = ix.key_count();
        entry.distinct = Some(match entry.distinct {
            // Every index whose key starts with this column over-counts its
            // distinct values (extra key columns split buckets); the
            // smallest count is the tightest bound.
            Some(d) => d.min(keys),
            None => keys,
        });
        if entry.min.is_none() {
            entry.min = ix.first_key().map(|k| k.values()[0].clone());
            entry.max = ix.last_key().map(|k| k.values()[0].clone());
        }
    }
    TableStats { rows, cols }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Column::new("method", ColumnType::Text),
                Column::new("horizon", ColumnType::Int),
            ]),
        )
        .unwrap();
        for (m, h) in [("a", 24), ("b", 24), ("a", 96), ("c", 96), ("a", 336)] {
            db.insert_row("t", vec![Value::from(m), Value::Int(h)]).unwrap();
        }
        db.create_index("ix_m", "t", &["method"]).unwrap();
        db.create_index("ix_h", "t", &["horizon"]).unwrap();
        db.create_index("ix_mh", "t", &["method", "horizon"]).unwrap();
        db
    }

    #[test]
    fn distinct_uses_tightest_index_bound() {
        let st = gather(&db(), "t");
        assert_eq!(st.rows, 5);
        // ix_m says 3 distinct methods; ix_mh would say 5 — the minimum wins
        // regardless of which index was created first.
        assert_eq!(st.cols[&0].distinct, Some(3));
        assert_eq!(st.cols[&1].distinct, Some(3));
    }

    #[test]
    fn min_max_come_from_index_extremes() {
        let st = gather(&db(), "t");
        assert_eq!(st.cols[&1].min, Some(Value::Int(24)));
        assert_eq!(st.cols[&1].max, Some(Value::Int(336)));
    }

    #[test]
    fn selectivities_are_sane() {
        let st = gather(&db(), "t");
        let eq = st.eq_selectivity(1);
        assert!((eq - 1.0 / 3.0).abs() < 1e-12);
        let range = st.range_selectivity(1, Some(&Value::Int(24)), Some(&Value::Int(180)));
        assert!((0.0..=1.0).contains(&range));
        assert!(range < 1.0, "half the span is not the whole span");
        // No stats for an unindexed column → defaults.
        assert_eq!(st.eq_selectivity(7), 1.0 / 20.0);
        assert_eq!(st.range_selectivity(7, None, None), 0.25);
    }
}
