//! Volcano-style row sources.
//!
//! Each operator implements [`RowSource`] and produces joined rows one at
//! a time, so `LIMIT`/point queries stop pulling as soon as they are
//! satisfied instead of materializing every intermediate stage.
//!
//! Ordering contract: every source emits rows in *naive emission order* —
//! driver rows ascend by row id (the planner's seek path re-sorts its id
//! list when order delivery is not required), and both join operators
//! expand each left row against right-table candidates in ascending
//! right-row-id order. The one deliberate exception is a sort-elided plan,
//! where the driver walks index-key order and that order *is* the final
//! output order. Either way the finishing stages see rows in exactly the
//! order the scan oracle would produce, which is what makes planner
//! results bit-identical.

use crate::ast::Expr;
use crate::error::DbError;
use crate::executor::{eval, Ctx, Layout};
use crate::index::{Index, IndexKey};
use crate::plan::ProbePart;
use crate::value::Value;
use std::cell::Cell;

/// Per-query execution counters, flushed to obs once per query.
#[derive(Debug, Default)]
pub(crate) struct ExecStats {
    /// Index seeks/probes performed.
    pub(crate) seeks: Cell<u64>,
    /// Rows examined (scanned, fetched through an index, or probed).
    pub(crate) scanned: Cell<u64>,
    /// Rows skipped by an index or dropped by pushed-down filters and
    /// join predicates before reaching the finishing stages.
    pub(crate) pruned: Cell<u64>,
}

impl ExecStats {
    pub(crate) fn add_seeks(&self, d: u64) {
        self.seeks.set(self.seeks.get() + d);
    }

    pub(crate) fn add_scanned(&self, d: u64) {
        self.scanned.set(self.scanned.get() + d);
    }

    pub(crate) fn add_pruned(&self, d: u64) {
        self.pruned.set(self.pruned.get() + d);
    }
}

/// A pull-based producer of joined rows.
pub(crate) trait RowSource {
    /// The next row, or `None` when exhausted.
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError>;
}

/// Sequential scan over a table's rows in row-id order.
pub(crate) struct ScanSource<'a> {
    rows: &'a [Vec<Value>],
    pos: usize,
    stats: &'a ExecStats,
}

impl<'a> ScanSource<'a> {
    pub(crate) fn new(rows: &'a [Vec<Value>], stats: &'a ExecStats) -> ScanSource<'a> {
        ScanSource { rows, pos: 0, stats }
    }
}

impl RowSource for ScanSource<'_> {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        match self.rows.get(self.pos) {
            Some(row) => {
                self.pos += 1;
                self.stats.add_scanned(1);
                Ok(Some(row.clone()))
            }
            None => Ok(None),
        }
    }
}

/// Emits the rows named by a precomputed id list (an index seek or range
/// walk), in the list's order.
pub(crate) struct IdListSource<'a> {
    rows: &'a [Vec<Value>],
    ids: Vec<usize>,
    pos: usize,
    stats: &'a ExecStats,
}

impl<'a> IdListSource<'a> {
    pub(crate) fn new(
        rows: &'a [Vec<Value>],
        ids: Vec<usize>,
        stats: &'a ExecStats,
    ) -> IdListSource<'a> {
        IdListSource { rows, ids, pos: 0, stats }
    }
}

impl RowSource for IdListSource<'_> {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        match self.ids.get(self.pos) {
            Some(&id) => {
                self.pos += 1;
                self.stats.add_scanned(1);
                Ok(Some(self.rows[id].clone()))
            }
            None => Ok(None),
        }
    }
}

/// Applies pushed-down conjuncts ahead of joins. Every conjunct is part of
/// the full `WHERE` (re-applied later), so dropping rows that fail one is
/// result-preserving; this operator only shrinks the join input.
pub(crate) struct FilterSource<'a> {
    inner: Box<dyn RowSource + 'a>,
    conjuncts: &'a [Expr],
    layout: &'a Layout,
    stats: &'a ExecStats,
}

impl<'a> FilterSource<'a> {
    pub(crate) fn new(
        inner: Box<dyn RowSource + 'a>,
        conjuncts: &'a [Expr],
        layout: &'a Layout,
        stats: &'a ExecStats,
    ) -> FilterSource<'a> {
        FilterSource { inner, conjuncts, layout, stats }
    }
}

impl RowSource for FilterSource<'_> {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        'pull: while let Some(row) = self.inner.next_row()? {
            for c in self.conjuncts {
                if eval(c, &Ctx::Row(&row), self.layout)?.truthy() != Some(true) {
                    self.stats.add_pruned(1);
                    continue 'pull;
                }
            }
            return Ok(Some(row));
        }
        Ok(None)
    }
}

/// Index-nested-loop join: probes the right table's index with a key built
/// from the current left row, then re-checks the full `ON` predicate per
/// candidate (the probe is a superset filter, never the final word).
pub(crate) struct ProbeJoinSource<'a> {
    left: Box<dyn RowSource + 'a>,
    right_rows: &'a [Vec<Value>],
    index: &'a Index,
    parts: &'a [ProbePart],
    on: &'a Expr,
    /// Layout covering the tables joined so far *including* the right
    /// table, so `ON` sees exactly the columns the naive path would.
    layout: &'a Layout,
    stats: &'a ExecStats,
    cur_left: Option<Vec<Value>>,
    key: IndexKey,
    ids: Vec<usize>,
    pos: usize,
}

impl<'a> ProbeJoinSource<'a> {
    pub(crate) fn new(
        left: Box<dyn RowSource + 'a>,
        right_rows: &'a [Vec<Value>],
        index: &'a Index,
        parts: &'a [ProbePart],
        on: &'a Expr,
        layout: &'a Layout,
        stats: &'a ExecStats,
    ) -> ProbeJoinSource<'a> {
        ProbeJoinSource {
            left,
            right_rows,
            index,
            parts,
            on,
            layout,
            stats,
            cur_left: None,
            key: IndexKey::new(),
            ids: Vec::new(),
            pos: 0,
        }
    }
}

impl RowSource for ProbeJoinSource<'_> {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        loop {
            if let Some(left) = &self.cur_left {
                while self.pos < self.ids.len() {
                    let id = self.ids[self.pos];
                    self.pos += 1;
                    self.stats.add_scanned(1);
                    let right = &self.right_rows[id];
                    let mut combined = Vec::with_capacity(left.len() + right.len());
                    combined.extend_from_slice(left);
                    combined.extend_from_slice(right);
                    if eval(self.on, &Ctx::Row(&combined), self.layout)?.truthy() == Some(true)
                    {
                        return Ok(Some(combined));
                    }
                    self.stats.add_pruned(1);
                }
                self.cur_left = None;
            }
            match self.left.next_row()? {
                None => return Ok(None),
                Some(row) => {
                    self.key.clear();
                    for part in self.parts {
                        self.key.push(match part {
                            ProbePart::LeftCol(off) => row[*off].clone(),
                            ProbePart::Const(v) => v.clone(),
                        });
                    }
                    self.stats.add_seeks(1);
                    self.index.probe_into(&self.key, &mut self.ids);
                    self.stats
                        .add_pruned((self.right_rows.len() - self.ids.len()) as u64);
                    self.pos = 0;
                    self.cur_left = Some(row);
                }
            }
        }
    }
}

/// Plain nested-loop join, used when no right-table index covers the `ON`
/// equalities. Identical row production to the naive path.
pub(crate) struct NestedJoinSource<'a> {
    left: Box<dyn RowSource + 'a>,
    right_rows: &'a [Vec<Value>],
    on: &'a Expr,
    layout: &'a Layout,
    stats: &'a ExecStats,
    cur_left: Option<Vec<Value>>,
    rpos: usize,
}

impl<'a> NestedJoinSource<'a> {
    pub(crate) fn new(
        left: Box<dyn RowSource + 'a>,
        right_rows: &'a [Vec<Value>],
        on: &'a Expr,
        layout: &'a Layout,
        stats: &'a ExecStats,
    ) -> NestedJoinSource<'a> {
        NestedJoinSource { left, right_rows, on, layout, stats, cur_left: None, rpos: 0 }
    }
}

impl RowSource for NestedJoinSource<'_> {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        loop {
            if let Some(left) = &self.cur_left {
                while self.rpos < self.right_rows.len() {
                    let right = &self.right_rows[self.rpos];
                    self.rpos += 1;
                    self.stats.add_scanned(1);
                    let mut combined = Vec::with_capacity(left.len() + right.len());
                    combined.extend_from_slice(left);
                    combined.extend_from_slice(right);
                    if eval(self.on, &Ctx::Row(&combined), self.layout)?.truthy() == Some(true)
                    {
                        return Ok(Some(combined));
                    }
                    self.stats.add_pruned(1);
                }
                self.cur_left = None;
            }
            match self.left.next_row()? {
                None => return Ok(None),
                Some(row) => {
                    self.rpos = 0;
                    self.cur_left = Some(row);
                }
            }
        }
    }
}
