//! The in-memory database: tables, catalog, and the execution entry point.

use crate::ast::Statement;
use crate::error::DbError;
use crate::executor;
use crate::index::Index;
use crate::parser::parse;
use crate::plan;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;

/// A table: schema plus row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (lowercased).
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// Row storage.
    pub rows: Vec<Vec<Value>>,
}

/// Result of a query: named columns and value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the result as a fixed-width ASCII table (the "benchmark
    /// result data table" of Figure 5, label 5).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.extend(std::iter::repeat('-').take(w + 2));
            }
            out.push_str("+\n");
        };
        let row_line = |out: &mut String, cells: &[String]| {
            for (c, w) in cells.iter().zip(&widths) {
                out.push_str("| ");
                out.push_str(c);
                out.extend(std::iter::repeat(' ').take(w - c.len() + 1));
            }
            out.push_str("|\n");
        };
        sep(&mut out);
        row_line(&mut out, &self.columns);
        sep(&mut out);
        for row in &cells {
            row_line(&mut out, row);
        }
        sep(&mut out);
        out
    }
}

/// An in-memory SQL database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Secondary indexes by (lowercased) index name. A `BTreeMap` so the
    /// planner's candidate enumeration order — and therefore every plan and
    /// explain — is independent of index-creation order.
    indexes: BTreeMap<String, Index>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table programmatically.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<(), DbError> {
        let name = name.into().to_ascii_lowercase();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable { name });
        }
        self.tables.insert(name.clone(), Table { name, schema, rows: Vec::new() });
        Ok(())
    }

    /// Inserts one row programmatically (validated against the schema) and
    /// maintains every secondary index on the table.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::UnknownTable { name: table.to_string() })?;
        let coerced = t.schema.coerce_row(row)?;
        let row_id = t.rows.len();
        t.rows.push(coerced);
        if let Some(row_ref) = t.rows.last() {
            for ix in self.indexes.values_mut() {
                if ix.table() == key.as_str() {
                    ix.insert_row(row_id, row_ref);
                }
            }
        }
        Ok(())
    }

    /// Creates a (possibly multi-column) secondary index named `name` over
    /// `columns` of `table`, backfilling existing rows. Plans — and thus
    /// results and explains — do not depend on the order indexes were
    /// created in.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: &str,
        columns: &[&str],
    ) -> Result<(), DbError> {
        let name = name.into().to_ascii_lowercase();
        if self.indexes.contains_key(&name) {
            return Err(DbError::DuplicateIndex { name });
        }
        if columns.is_empty() {
            return Err(DbError::Unsupported { feature: "index with no key columns".into() });
        }
        let t = self.table(table)?;
        let mut positions = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            let lc = c.to_ascii_lowercase();
            let pos = t.schema.index_of(&lc).ok_or_else(|| DbError::UnknownColumn {
                name: format!("{}.{lc}", t.name),
            })?;
            positions.push(pos);
            cols.push(lc);
        }
        let mut ix = Index::new(name.clone(), t.name.clone(), cols, positions);
        for (row_id, row) in t.rows.iter().enumerate() {
            ix.insert_row(row_id, row);
        }
        self.indexes.insert(name, ix);
        Ok(())
    }

    /// Looks a secondary index up by (case-insensitive) name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.get(&name.to_ascii_lowercase())
    }

    /// All indexes over `table` (real, lowercased name), in index-name
    /// order — the planner's deterministic candidate order.
    pub(crate) fn indexes_for(&self, table: &str) -> impl Iterator<Item = &Index> {
        let table = table.to_ascii_lowercase();
        self.indexes.values().filter(move |ix| ix.table() == table)
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable { name: name.to_string() })
    }

    /// Parses and executes any statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = {
            let _sp = easytime_obs::span("db.parse");
            parse(sql)?
        };
        self.execute_statement(stmt)
    }

    /// Executes a parsed statement.
    pub(crate) fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult, DbError> {
        match stmt {
            Statement::Select(s) => {
                let plan = plan::plan_select(self, &s)?;
                executor::execute_planned(self, &s, &plan)
            }
            Statement::Insert(i) => {
                let rows = {
                    let t = self.table(&i.table)?;
                    match &i.columns {
                        None => i.rows,
                        Some(cols) => {
                            // Reorder the provided columns into schema order,
                            // filling omitted columns with NULL.
                            let mut indices = Vec::with_capacity(cols.len());
                            for c in cols {
                                let idx = t.schema.index_of(c).ok_or_else(|| {
                                    DbError::UnknownColumn { name: c.clone() }
                                })?;
                                indices.push(idx);
                            }
                            i.rows
                                .into_iter()
                                .map(|row| {
                                    if row.len() != indices.len() {
                                        return Err(DbError::ArityMismatch {
                                            expected: indices.len(),
                                            found: row.len(),
                                        });
                                    }
                                    let mut full = vec![Value::Null; t.schema.len()];
                                    for (v, &idx) in row.into_iter().zip(&indices) {
                                        full[idx] = v;
                                    }
                                    Ok(full)
                                })
                                .collect::<Result<Vec<_>, DbError>>()?
                        }
                    }
                };
                let mut inserted = 0i64;
                for row in rows {
                    // Per-row coercion keeps the partial-insert-on-error
                    // semantics of the old inline loop, and routes through
                    // `insert_row` so indexes stay in sync.
                    self.insert_row(&i.table, row)?;
                    inserted += 1;
                }
                Ok(QueryResult {
                    columns: vec!["inserted".to_string()],
                    rows: vec![vec![Value::Int(inserted)]],
                })
            }
            Statement::CreateTable(c) => {
                let schema = Schema::new(
                    c.columns
                        .into_iter()
                        .map(|(n, ty)| crate::schema::Column::new(n, ty))
                        .collect(),
                );
                self.create_table(c.name, schema)?;
                Ok(QueryResult { columns: vec!["created".to_string()], rows: vec![] })
            }
        }
    }

    /// Read-only query entry point: verifies the statement first (Figure 3's
    /// verification step), rejects anything but `SELECT`, and executes the
    /// cost-based plan.
    pub fn query(&self, sql: &str) -> Result<QueryResult, DbError> {
        self.query_with_plan(sql).map(|(result, _)| result)
    }

    /// Like [`Database::query`], also returning the plan explain — the
    /// deterministic description of the chosen access path, join strategy,
    /// and sort treatment.
    pub fn query_with_plan(&self, sql: &str) -> Result<(QueryResult, String), DbError> {
        let _qsp = easytime_obs::span("db.query");
        let stmt = {
            let _sp = easytime_obs::span("db.verify");
            crate::verify::verify_select(self, sql)?
        };
        let plan = plan::plan_select(self, &stmt)?;
        let result = executor::execute_planned(self, &stmt, &plan)?;
        Ok((result, plan.explain))
    }

    /// Executes a `SELECT` with the naive full-scan pipeline, bypassing the
    /// planner. This is the planner's correctness oracle: for every query,
    /// [`Database::query`] must return bit-identical results.
    pub fn query_scan(&self, sql: &str) -> Result<QueryResult, DbError> {
        let _qsp = easytime_obs::span("db.query");
        let stmt = {
            let _sp = easytime_obs::span("db.verify");
            crate::verify::verify_select(self, sql)?
        };
        executor::execute_select(self, &stmt)
    }

    /// Returns the plan explain for a `SELECT` without executing it.
    pub fn explain(&self, sql: &str) -> Result<String, DbError> {
        let stmt = crate::verify::verify_select(self, sql)?;
        Ok(plan::plan_select(self, &stmt)?.explain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE m (name TEXT, score REAL)").unwrap();
        db.execute("INSERT INTO m VALUES ('a', 1.5), ('b', 2.5)").unwrap();
        db
    }

    #[test]
    fn create_insert_select_round_trip() {
        let mut d = db();
        let r = d.execute("SELECT name, score FROM m ORDER BY score DESC").unwrap();
        assert_eq!(r.columns, vec!["name", "score"]);
        assert_eq!(r.rows[0][0], Value::Text("b".into()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut d = db();
        assert!(matches!(
            d.execute("CREATE TABLE m (x INTEGER)"),
            Err(DbError::DuplicateTable { .. })
        ));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut d = Database::new();
        d.create_table(
            "t",
            Schema::new(vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
                Column::new("c", ColumnType::Float),
            ]),
        )
        .unwrap();
        d.execute("INSERT INTO t (c, a) VALUES (2.5, 7)").unwrap();
        let r = d.execute("SELECT a, b, c FROM t").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(7), Value::Null, Value::Float(2.5)]);
        assert!(matches!(
            d.execute("INSERT INTO t (missing) VALUES (1)"),
            Err(DbError::UnknownColumn { .. })
        ));
        assert!(matches!(
            d.execute("INSERT INTO t (a, b) VALUES (1)"),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn query_rejects_writes() {
        let d = db();
        assert!(matches!(
            d.query("INSERT INTO m VALUES ('c', 3.0)"),
            Err(DbError::VerificationFailed { .. })
        ));
        assert!(d.query("SELECT * FROM m").is_ok());
    }

    #[test]
    fn render_produces_aligned_table() {
        let d = db();
        let r = d.query("SELECT name, score FROM m ORDER BY name").unwrap();
        let rendered = r.render();
        assert!(rendered.contains("| name"));
        assert!(rendered.contains("| 1.5"));
        let widths: Vec<usize> = rendered.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn unknown_table_error() {
        let mut d = db();
        assert!(matches!(
            d.execute("SELECT * FROM nope"),
            Err(DbError::UnknownTable { .. })
        ));
        assert!(matches!(
            d.execute("INSERT INTO nope VALUES (1)"),
            Err(DbError::UnknownTable { .. })
        ));
    }

    #[test]
    fn programmatic_insert_validates() {
        let mut d = db();
        d.insert_row("m", vec![Value::Text("c".into()), Value::Int(3)]).unwrap();
        let r = d.query("SELECT score FROM m WHERE name = 'c'").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));
        assert!(d.insert_row("m", vec![Value::Int(1), Value::Int(2)]).is_err());
    }
}
