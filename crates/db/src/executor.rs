//! `SELECT` execution.
//!
//! Pipeline: FROM/JOIN (nested-loop inner joins) → WHERE → GROUP BY +
//! aggregates → HAVING → projection → DISTINCT → ORDER BY → LIMIT. Row
//! counts in the knowledge base are benchmark-scale (thousands), so the
//! simple algorithms here are well within budget; the micro-benches in
//! `easytime-bench` keep an eye on the constants.

use crate::ast::{Aggregate, BinOp, Expr, SelectItem, SelectStmt};
use crate::database::{Database, QueryResult};
use crate::error::DbError;
use crate::value::Value;
use std::cmp::Ordering;

/// Resolves column references against the joined table layout.
struct Layout {
    /// `(effective table name, column names, offset)` per joined table.
    tables: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl Layout {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, DbError> {
        let name = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                for (tname, cols, offset) in &self.tables {
                    if *tname == t {
                        if let Some(i) = cols.iter().position(|c| *c == name) {
                            return Ok(offset + i);
                        }
                        return Err(DbError::UnknownColumn { name: format!("{t}.{name}") });
                    }
                }
                Err(DbError::UnknownTable { name: t })
            }
            None => {
                let mut found = None;
                for (tname, cols, offset) in &self.tables {
                    if let Some(i) = cols.iter().position(|c| *c == name) {
                        if found.is_some() {
                            return Err(DbError::Eval {
                                message: format!(
                                    "ambiguous column '{name}' (qualify with a table name, e.g. {tname}.{name})"
                                ),
                            });
                        }
                        found = Some(offset + i);
                    }
                }
                found.ok_or(DbError::UnknownColumn { name })
            }
        }
    }
}

/// SQL LIKE matching with `%` and `_` wildcards (case-insensitive, the
/// friendlier choice for natural-language-generated SQL).
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_ascii_lowercase().chars().collect();
    let t: Vec<char> = text.to_ascii_lowercase().chars().collect();
    // Dynamic programming over pattern × text.
    let mut dp = vec![vec![false; t.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == '%' {
            dp[i][0] = dp[i - 1][0];
        }
    }
    for i in 1..=p.len() {
        for j in 1..=t.len() {
            dp[i][j] = match p[i - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && c == t[j - 1],
            };
        }
    }
    dp[p.len()][t.len()]
}

/// Evaluation context: one joined row, or a whole group for aggregates.
enum Ctx<'a> {
    Row(&'a [Value]),
    Group {
        rows: &'a [Vec<Value>],
    },
}

fn eval(expr: &Expr, ctx: &Ctx<'_>, layout: &Layout) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = layout.resolve(table.as_deref(), name)?;
            match ctx {
                Ctx::Row(row) => Ok(row[idx].clone()),
                // In aggregate context a bare column takes the group's first
                // row (valid for GROUP BY keys; consistent for others).
                Ctx::Group { rows } => Ok(rows
                    .first()
                    .map(|r| r[idx].clone())
                    .unwrap_or(Value::Null)),
            }
        }
        Expr::Neg(e) => {
            let v = eval(e, ctx, layout)?;
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::Eval { message: format!("cannot negate {other:?}") }),
            }
        }
        Expr::Not(e) => {
            let v = eval(e, ctx, layout)?;
            match v.truthy() {
                Some(b) => Ok(Value::Bool(!b)),
                None => Ok(Value::Null),
            }
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, ctx, layout)?;
            // Short-circuit logic operators.
            match op {
                BinOp::And => {
                    if l.truthy() == Some(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, ctx, layout)?;
                    return Ok(match (l.truthy(), r.truthy()) {
                        (Some(a), Some(b)) => Value::Bool(a && b),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if l.truthy() == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, ctx, layout)?;
                    return Ok(match (l.truthy(), r.truthy()) {
                        (Some(a), Some(b)) => Value::Bool(a || b),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let r = eval(right, ctx, layout)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    match l.compare(&r) {
                        None => Ok(Value::Null),
                        Some(ord) => {
                            let b = match op {
                                BinOp::Eq => ord == Ordering::Equal,
                                BinOp::Ne => ord != Ordering::Equal,
                                BinOp::Lt => ord == Ordering::Less,
                                BinOp::Le => ord != Ordering::Greater,
                                BinOp::Gt => ord == Ordering::Greater,
                                BinOp::Ge => ord != Ordering::Less,
                                _ => {
                                    return Err(DbError::Eval {
                                        message: format!(
                                            "non-comparison operator {op:?} in comparison arm"
                                        ),
                                    })
                                }
                            };
                            Ok(Value::Bool(b))
                        }
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    let (a, b) = (
                        l.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("arithmetic on non-numeric {l:?}"),
                        })?,
                        r.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("arithmetic on non-numeric {r:?}"),
                        })?,
                    );
                    let out = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => {
                            return Err(DbError::Eval {
                                message: format!(
                                    "non-arithmetic operator {op:?} in arithmetic arm"
                                ),
                            })
                        }
                    };
                    // Preserve integer type when both sides were ints and
                    // the result is integral (except division).
                    match (&l, &r, op) {
                        (Value::Int(_), Value::Int(_), BinOp::Add | BinOp::Sub | BinOp::Mul) => {
                            Ok(Value::Int(out as i64))
                        }
                        _ => Ok(Value::Float(out)),
                    }
                }
                BinOp::And | BinOp::Or => Err(DbError::Eval {
                    message: "logical operator reached the scalar evaluator".into(),
                }),
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, ctx, layout)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                other => Err(DbError::Eval { message: format!("LIKE on non-text {other:?}") }),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx, layout)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut any = false;
            for item in list {
                let iv = eval(item, ctx, layout)?;
                if v.sql_eq(&iv) == Some(true) {
                    any = true;
                    break;
                }
            }
            Ok(Value::Bool(any != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx, layout)?;
            let lo = eval(low, ctx, layout)?;
            let hi = eval(high, ctx, layout)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx, layout)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::AggregateCall { func, arg } => {
            let rows: &[Vec<Value>] = match ctx {
                Ctx::Group { rows } => rows,
                Ctx::Row(_) => {
                    return Err(DbError::Eval {
                        message: "aggregate used outside GROUP BY context".into(),
                    })
                }
            };
            let values: Vec<Value> = match arg {
                None => return Ok(Value::Int(rows.len() as i64)), // COUNT(*)
                Some(a) => rows
                    .iter()
                    .map(|r| eval(a, &Ctx::Row(r), layout))
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .filter(|v| !v.is_null())
                    .collect(),
            };
            match func {
                Aggregate::Count => Ok(Value::Int(values.len() as i64)),
                Aggregate::Sum | Aggregate::Avg => {
                    if values.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut sum = 0.0;
                    for v in &values {
                        sum += v.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("{} on non-numeric value", func.name()),
                        })?;
                    }
                    if *func == Aggregate::Sum {
                        Ok(Value::Float(sum))
                    } else {
                        Ok(Value::Float(sum / values.len() as f64))
                    }
                }
                Aggregate::Min | Aggregate::Max => {
                    let mut best: Option<Value> = None;
                    for v in values {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let keep_new = match v.compare(&b) {
                                    Some(Ordering::Less) => *func == Aggregate::Min,
                                    Some(Ordering::Greater) => *func == Aggregate::Max,
                                    _ => false,
                                };
                                if keep_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
            }
        }
    }
}

/// Serializes a row of values into a stable grouping/dedup key.
fn group_key(values: &[Value]) -> String {
    let mut key = String::new();
    for v in values {
        match v {
            Value::Null => key.push_str("N|"),
            Value::Int(i) => key.push_str(&format!("I{i}|")),
            Value::Float(f) => key.push_str(&format!("F{f}|")),
            Value::Text(s) => key.push_str(&format!("T{s}\u{1}|")),
            Value::Bool(b) => key.push_str(&format!("B{b}|")),
        }
    }
    key
}

/// Executes a parsed `SELECT` against the database.
pub(crate) fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<QueryResult, DbError> {
    let mut sp = easytime_obs::span("db.execute");
    // --- FROM / JOIN: build the joined layout and row set. ---
    let base = db.table(&stmt.from.name)?;
    if sp.is_recording() {
        sp.attr("table", stmt.from.name.as_str());
        sp.attr_u64("joins", stmt.joins.len() as u64);
        easytime_obs::add("db.rows_scanned", base.rows.len() as u64);
    }
    let mut layout = Layout {
        tables: vec![(
            stmt.from.effective_name().to_ascii_lowercase(),
            base.schema.names(),
            0,
        )],
        width: base.schema.len(),
    };
    let mut rows: Vec<Vec<Value>> = base.rows.clone();

    for join in &stmt.joins {
        let right = db.table(&join.table.name)?;
        layout.tables.push((
            join.table.effective_name().to_ascii_lowercase(),
            right.schema.names(),
            layout.width,
        ));
        layout.width += right.schema.len();

        let mut joined = Vec::new();
        for l in &rows {
            for r in &right.rows {
                let mut combined = Vec::with_capacity(l.len() + r.len());
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                if eval(&join.on, &Ctx::Row(&combined), &layout)?.truthy() == Some(true) {
                    joined.push(combined);
                }
            }
        }
        rows = joined;
    }

    // --- WHERE ---
    if let Some(pred) = &stmt.where_clause {
        let mut filtered = Vec::with_capacity(rows.len());
        for row in rows {
            if eval(pred, &Ctx::Row(&row), &layout)?.truthy() == Some(true) {
                filtered.push(row);
            }
        }
        rows = filtered;
    }

    // --- projections ---
    let has_aggregate = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt.having.as_ref().is_some_and(Expr::contains_aggregate);
    let aggregate_mode = has_aggregate || !stmt.group_by.is_empty();

    // Expand projections into (name, expr-or-wildcard-column).
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_exprs: Vec<Expr> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                if aggregate_mode {
                    return Err(DbError::Unsupported {
                        feature: "SELECT * together with aggregates/GROUP BY".into(),
                    });
                }
                for (tname, cols, _) in &layout.tables {
                    for c in cols {
                        out_columns.push(c.clone());
                        out_exprs.push(Expr::Column {
                            table: Some(tname.clone()),
                            name: c.clone(),
                        });
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                out_columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                out_exprs.push(expr.clone());
            }
        }
    }

    let mut result_rows: Vec<Vec<Value>> = Vec::new();
    // Values used for ORDER BY, aligned with result_rows.
    let mut order_keys: Vec<Vec<Value>> = Vec::new();

    // Resolves an ORDER BY expression: output alias/name first, then any
    // expression over the underlying context.
    let order_value = |expr: &Expr,
                       out_row: &[Value],
                       ctx: &Ctx<'_>|
     -> Result<Value, DbError> {
        if let Expr::Column { table: None, name } = expr {
            if let Some(i) = out_columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                return Ok(out_row[i].clone());
            }
        }
        eval(expr, ctx, &layout)
    };

    if aggregate_mode {
        // Group rows by the GROUP BY key (whole input = one group when no
        // GROUP BY but aggregates are present).
        let mut groups: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        if stmt.group_by.is_empty() {
            groups.push((String::new(), rows));
        } else {
            for row in rows {
                let keys: Vec<Value> = stmt
                    .group_by
                    .iter()
                    .map(|e| eval(e, &Ctx::Row(&row), &layout))
                    .collect::<Result<_, _>>()?;
                let key = group_key(&keys);
                match index.get(&key) {
                    Some(&i) => groups[i].1.push(row),
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
        }

        for (_, group_rows) in &groups {
            if group_rows.is_empty() && !stmt.group_by.is_empty() {
                continue;
            }
            let ctx = Ctx::Group { rows: group_rows };
            if let Some(h) = &stmt.having {
                if eval(h, &ctx, &layout)?.truthy() != Some(true) {
                    continue;
                }
            }
            let out: Vec<Value> = out_exprs
                .iter()
                .map(|e| eval(e, &ctx, &layout))
                .collect::<Result<_, _>>()?;
            let keys: Vec<Value> = stmt
                .order_by
                .iter()
                .map(|(e, _)| order_value(e, &out, &ctx))
                .collect::<Result<_, _>>()?;
            result_rows.push(out);
            order_keys.push(keys);
        }
    } else {
        if stmt.having.is_some() {
            return Err(DbError::Unsupported {
                feature: "HAVING without GROUP BY or aggregates".into(),
            });
        }
        for row in &rows {
            let ctx = Ctx::Row(row);
            let out: Vec<Value> = out_exprs
                .iter()
                .map(|e| eval(e, &ctx, &layout))
                .collect::<Result<_, _>>()?;
            let keys: Vec<Value> = stmt
                .order_by
                .iter()
                .map(|(e, _)| order_value(e, &out, &ctx))
                .collect::<Result<_, _>>()?;
            result_rows.push(out);
            order_keys.push(keys);
        }
    }

    // --- DISTINCT ---
    if stmt.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut deduped_rows = Vec::new();
        let mut deduped_keys = Vec::new();
        for (row, keys) in result_rows.into_iter().zip(order_keys) {
            if seen.insert(group_key(&row)) {
                deduped_rows.push(row);
                deduped_keys.push(keys);
            }
        }
        result_rows = deduped_rows;
        order_keys = deduped_keys;
    }

    // --- ORDER BY (stable) ---
    if !stmt.order_by.is_empty() {
        let mut idx: Vec<usize> = (0..result_rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, (_, desc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k].order_key(&order_keys[b][k]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        result_rows = idx.into_iter().map(|i| std::mem::take(&mut result_rows[i])).collect();
    }

    // --- LIMIT ---
    if let Some(limit) = stmt.limit {
        result_rows.truncate(limit);
    }

    if sp.is_recording() {
        sp.attr_u64("rows", result_rows.len() as u64);
        easytime_obs::add("db.rows_returned", result_rows.len() as u64);
    }
    Ok(QueryResult { columns: out_columns, rows: result_rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn results_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE results (dataset_id TEXT, method TEXT, horizon INTEGER, mae REAL)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO results VALUES \
             ('web_01', 'naive', 24, 3.0), \
             ('web_01', 'theta', 24, 2.0), \
             ('web_01', 'naive', 96, 6.0), \
             ('web_01', 'theta', 96, 4.0), \
             ('eco_01', 'naive', 24, 1.0), \
             ('eco_01', 'theta', 24, 1.5)",
        )
        .unwrap();
        db.execute("CREATE TABLE datasets (id TEXT, domain TEXT, trend REAL)").unwrap();
        db.execute(
            "INSERT INTO datasets VALUES ('web_01', 'web', 0.8), ('eco_01', 'economic', 0.3)",
        )
        .unwrap();
        db
    }

    #[test]
    fn where_order_limit() {
        let db = results_db();
        let r = db
            .query("SELECT method, mae FROM results WHERE horizon = 24 ORDER BY mae LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Text("naive".into()), Value::Float(1.0)]);
        assert_eq!(r.rows[1], vec![Value::Text("theta".into()), Value::Float(1.5)]);
    }

    #[test]
    fn group_by_with_aggregates_and_having() {
        let db = results_db();
        let r = db
            .query(
                "SELECT method, AVG(mae) AS mean_mae, COUNT(*) AS n FROM results \
                 GROUP BY method HAVING COUNT(*) >= 3 ORDER BY mean_mae",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["method", "mean_mae", "n"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("theta".into()));
        assert_eq!(r.rows[0][1], Value::Float(2.5));
        assert_eq!(r.rows[0][2], Value::Int(3));
        assert_eq!(r.rows[1][1], Value::Float(10.0 / 3.0));
    }

    #[test]
    fn aggregates_without_group_by() {
        let db = results_db();
        let r = db
            .query("SELECT COUNT(*), MIN(mae), MAX(mae), SUM(mae) FROM results")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Int(6), Value::Float(1.0), Value::Float(6.0), Value::Float(17.5)]
        );
    }

    #[test]
    fn join_with_filter_on_joined_table() {
        let db = results_db();
        let r = db
            .query(
                "SELECT r.method, AVG(r.mae) AS m FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE d.trend > 0.6 AND r.horizon = 96 \
                 GROUP BY r.method ORDER BY m",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("theta".into()));
        assert_eq!(r.rows[0][1], Value::Float(4.0));
    }

    #[test]
    fn distinct_and_wildcard() {
        let db = results_db();
        let r = db.query("SELECT DISTINCT method FROM results ORDER BY method").unwrap();
        assert_eq!(r.rows.len(), 2);
        let all = db.query("SELECT * FROM datasets").unwrap();
        assert_eq!(all.columns, vec!["id", "domain", "trend"]);
        assert_eq!(all.rows.len(), 2);
    }

    #[test]
    fn like_in_between() {
        let db = results_db();
        let r = db
            .query("SELECT DISTINCT dataset_id FROM results WHERE dataset_id LIKE 'web%'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Text("web_01".into())]]);
        let r = db
            .query("SELECT COUNT(*) FROM results WHERE method IN ('naive') AND mae BETWEEN 1 AND 3")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        let r = db
            .query("SELECT COUNT(*) FROM results WHERE method NOT IN ('naive')")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("web%", "web_01"));
        assert!(like_match("%01", "web_01"));
        assert!(like_match("w_b%", "web_01"));
        assert!(like_match("WEB%", "web_01"), "LIKE is case-insensitive");
        assert!(!like_match("web", "web_01"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn arithmetic_in_projections() {
        let db = results_db();
        let r = db
            .query("SELECT mae * 2 + 1 AS double_mae FROM results WHERE mae = 1.0")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));
        let r = db.query("SELECT horizon / 0 FROM results LIMIT 1").unwrap();
        assert!(r.rows[0][0].is_null(), "division by zero yields NULL");
    }

    #[test]
    fn ambiguous_and_unknown_columns_error() {
        let db = results_db();
        // Both tables lack column 'nope'.
        assert!(matches!(
            db.query("SELECT nope FROM results"),
            Err(DbError::UnknownColumn { .. })
        ));
        // Unqualified column that exists in the base table only is fine.
        assert!(db
            .query("SELECT method FROM results r JOIN datasets d ON r.dataset_id = d.id")
            .is_ok());
    }

    #[test]
    fn order_by_alias_and_expression() {
        let db = results_db();
        let r = db
            .query("SELECT method, mae AS m FROM results WHERE horizon = 24 ORDER BY m DESC")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("naive".into()));
        let r = db
            .query("SELECT method FROM results WHERE horizon = 24 ORDER BY mae * -1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("naive".into()));
    }

    #[test]
    fn count_distinct_like_queries_by_group() {
        let db = results_db();
        let r = db
            .query(
                "SELECT dataset_id, COUNT(*) AS n FROM results GROUP BY dataset_id \
                 ORDER BY n DESC, dataset_id",
            )
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Text("web_01".into()), Value::Int(4)]);
        assert_eq!(r.rows[1], vec![Value::Text("eco_01".into()), Value::Int(2)]);
    }

    #[test]
    fn empty_results_are_not_errors() {
        let db = results_db();
        let r = db.query("SELECT * FROM results WHERE mae > 100").unwrap();
        assert!(r.is_empty());
        let r = db
            .query("SELECT method, AVG(mae) FROM results WHERE mae > 100 GROUP BY method")
            .unwrap();
        assert!(r.is_empty());
        // Aggregate over empty set without GROUP BY: one row, NULL/0.
        let r = db.query("SELECT COUNT(*), AVG(mae) FROM results WHERE mae > 100").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn select_star_with_group_by_is_unsupported() {
        let db = results_db();
        assert!(matches!(
            db.query("SELECT * FROM results GROUP BY method"),
            Err(DbError::Unsupported { .. })
        ));
    }
}
