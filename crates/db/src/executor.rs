//! `SELECT` execution.
//!
//! Two entry points share one finishing pipeline:
//!
//! * [`execute_select`] — the naive scan oracle: FROM/JOIN as materialized
//!   nested-loop inner joins, then the shared finisher. Kept verbatim in
//!   spirit so every plan stays verifiable against it.
//! * [`execute_planned`] — the volcano path: a [`crate::iter::RowSource`]
//!   chain (seq-scan or index seek, pushed-down filters, index-probe or
//!   nested-loop joins) built from a [`crate::plan::SelectPlan`], pulling
//!   rows on demand so `LIMIT`/point queries stop paying full-table costs.
//!
//! The finisher ([`run_select`]) applies WHERE → GROUP BY + aggregates →
//! HAVING → projection → DISTINCT → ORDER BY → LIMIT. Grouping and
//! DISTINCT key on typed [`IndexKey`] tuples (ordered by
//! `Value::order_key`), not stringified rows — no per-row key `String`
//! allocations, and the same R8 total-order policy everywhere.

use crate::ast::{Aggregate, BinOp, Expr, SelectItem, SelectStmt};
use crate::database::{Database, QueryResult};
use crate::error::DbError;
use crate::index::IndexKey;
use crate::iter::{
    ExecStats, FilterSource, IdListSource, NestedJoinSource, ProbeJoinSource, RowSource,
    ScanSource,
};
use crate::plan::{Access, JoinStep, SelectPlan};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// Resolves column references against the joined table layout.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    /// `(effective table name, column names, offset)` per joined table.
    pub(crate) tables: Vec<(String, Vec<String>, usize)>,
    pub(crate) width: usize,
}

impl Layout {
    pub(crate) fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, DbError> {
        let name = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                for (tname, cols, offset) in &self.tables {
                    if *tname == t {
                        if let Some(i) = cols.iter().position(|c| *c == name) {
                            return Ok(offset + i);
                        }
                        return Err(DbError::UnknownColumn { name: format!("{t}.{name}") });
                    }
                }
                Err(DbError::UnknownTable { name: t })
            }
            None => {
                let mut found = None;
                for (tname, cols, offset) in &self.tables {
                    if let Some(i) = cols.iter().position(|c| *c == name) {
                        if found.is_some() {
                            return Err(DbError::Eval {
                                message: format!(
                                    "ambiguous column '{name}' (qualify with a table name, e.g. {tname}.{name})"
                                ),
                            });
                        }
                        found = Some(offset + i);
                    }
                }
                found.ok_or(DbError::UnknownColumn { name })
            }
        }
    }
}

/// SQL LIKE matching with `%` and `_` wildcards (case-insensitive, the
/// friendlier choice for natural-language-generated SQL).
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_ascii_lowercase().chars().collect();
    let t: Vec<char> = text.to_ascii_lowercase().chars().collect();
    // Dynamic programming over pattern × text.
    let mut dp = vec![vec![false; t.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == '%' {
            dp[i][0] = dp[i - 1][0];
        }
    }
    for i in 1..=p.len() {
        for j in 1..=t.len() {
            dp[i][j] = match p[i - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && c == t[j - 1],
            };
        }
    }
    dp[p.len()][t.len()]
}

/// Evaluation context: one joined row, or a whole group for aggregates.
pub(crate) enum Ctx<'a> {
    Row(&'a [Value]),
    Group {
        rows: &'a [Vec<Value>],
    },
}

pub(crate) fn eval(expr: &Expr, ctx: &Ctx<'_>, layout: &Layout) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = layout.resolve(table.as_deref(), name)?;
            match ctx {
                Ctx::Row(row) => Ok(row[idx].clone()),
                // In aggregate context a bare column takes the group's first
                // row (valid for GROUP BY keys; consistent for others).
                Ctx::Group { rows } => Ok(rows
                    .first()
                    .map(|r| r[idx].clone())
                    .unwrap_or(Value::Null)),
            }
        }
        Expr::Neg(e) => {
            let v = eval(e, ctx, layout)?;
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::Eval { message: format!("cannot negate {other:?}") }),
            }
        }
        Expr::Not(e) => {
            let v = eval(e, ctx, layout)?;
            match v.truthy() {
                Some(b) => Ok(Value::Bool(!b)),
                None => Ok(Value::Null),
            }
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, ctx, layout)?;
            // Short-circuit logic operators.
            match op {
                BinOp::And => {
                    if l.truthy() == Some(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, ctx, layout)?;
                    return Ok(match (l.truthy(), r.truthy()) {
                        (Some(a), Some(b)) => Value::Bool(a && b),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if l.truthy() == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, ctx, layout)?;
                    return Ok(match (l.truthy(), r.truthy()) {
                        (Some(a), Some(b)) => Value::Bool(a || b),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let r = eval(right, ctx, layout)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    match l.compare(&r) {
                        None => Ok(Value::Null),
                        Some(ord) => {
                            let b = match op {
                                BinOp::Eq => ord == Ordering::Equal,
                                BinOp::Ne => ord != Ordering::Equal,
                                BinOp::Lt => ord == Ordering::Less,
                                BinOp::Le => ord != Ordering::Greater,
                                BinOp::Gt => ord == Ordering::Greater,
                                BinOp::Ge => ord != Ordering::Less,
                                _ => {
                                    return Err(DbError::Eval {
                                        message: format!(
                                            "non-comparison operator {op:?} in comparison arm"
                                        ),
                                    })
                                }
                            };
                            Ok(Value::Bool(b))
                        }
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    let (a, b) = (
                        l.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("arithmetic on non-numeric {l:?}"),
                        })?,
                        r.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("arithmetic on non-numeric {r:?}"),
                        })?,
                    );
                    let out = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => {
                            return Err(DbError::Eval {
                                message: format!(
                                    "non-arithmetic operator {op:?} in arithmetic arm"
                                ),
                            })
                        }
                    };
                    // Preserve integer type when both sides were ints and
                    // the result is integral (except division).
                    match (&l, &r, op) {
                        (Value::Int(_), Value::Int(_), BinOp::Add | BinOp::Sub | BinOp::Mul) => {
                            Ok(Value::Int(out as i64))
                        }
                        _ => Ok(Value::Float(out)),
                    }
                }
                BinOp::And | BinOp::Or => Err(DbError::Eval {
                    message: "logical operator reached the scalar evaluator".into(),
                }),
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, ctx, layout)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                other => Err(DbError::Eval { message: format!("LIKE on non-text {other:?}") }),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx, layout)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut any = false;
            for item in list {
                let iv = eval(item, ctx, layout)?;
                if v.sql_eq(&iv) == Some(true) {
                    any = true;
                    break;
                }
            }
            Ok(Value::Bool(any != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx, layout)?;
            let lo = eval(low, ctx, layout)?;
            let hi = eval(high, ctx, layout)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx, layout)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::AggregateCall { func, arg } => {
            let rows: &[Vec<Value>] = match ctx {
                Ctx::Group { rows } => rows,
                Ctx::Row(_) => {
                    return Err(DbError::Eval {
                        message: "aggregate used outside GROUP BY context".into(),
                    })
                }
            };
            let values: Vec<Value> = match arg {
                None => return Ok(Value::Int(rows.len() as i64)), // COUNT(*)
                Some(a) => rows
                    .iter()
                    .map(|r| eval(a, &Ctx::Row(r), layout))
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .filter(|v| !v.is_null())
                    .collect(),
            };
            match func {
                Aggregate::Count => Ok(Value::Int(values.len() as i64)),
                Aggregate::Sum | Aggregate::Avg => {
                    if values.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut sum = 0.0;
                    for v in &values {
                        sum += v.as_f64().ok_or_else(|| DbError::Eval {
                            message: format!("{} on non-numeric value", func.name()),
                        })?;
                    }
                    if *func == Aggregate::Sum {
                        Ok(Value::Float(sum))
                    } else {
                        Ok(Value::Float(sum / values.len() as f64))
                    }
                }
                Aggregate::Min | Aggregate::Max => {
                    let mut best: Option<Value> = None;
                    for v in values {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let keep_new = match v.compare(&b) {
                                    Some(Ordering::Less) => *func == Aggregate::Min,
                                    Some(Ordering::Greater) => *func == Aggregate::Max,
                                    _ => false,
                                };
                                if keep_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
            }
        }
    }
}

/// Adapter feeding pre-materialized rows (the naive join output) into the
/// shared finisher.
struct MaterializedSource {
    rows: std::vec::IntoIter<Vec<Value>>,
}

impl RowSource for MaterializedSource {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>, DbError> {
        Ok(self.rows.next())
    }
}

/// Builds the cumulative join layouts: `layouts[j]` covers tables
/// `0..=j`, so each `ON` clause is resolved against exactly the tables
/// joined so far — the same scoping the naive incremental build sees.
fn prefix_layouts(db: &Database, stmt: &SelectStmt) -> Result<Vec<Layout>, DbError> {
    let base = db.table(&stmt.from.name)?;
    let mut layout = Layout {
        tables: vec![(
            stmt.from.effective_name().to_ascii_lowercase(),
            base.schema.names(),
            0,
        )],
        width: base.schema.len(),
    };
    let mut layouts = vec![layout.clone()];
    for join in &stmt.joins {
        let right = db.table(&join.table.name)?;
        layout.tables.push((
            join.table.effective_name().to_ascii_lowercase(),
            right.schema.names(),
            layout.width,
        ));
        layout.width += right.schema.len();
        layouts.push(layout.clone());
    }
    Ok(layouts)
}

/// Executes a parsed `SELECT` with the naive scan pipeline (the planner's
/// test oracle): materialized nested-loop joins, then the shared finisher.
pub(crate) fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<QueryResult, DbError> {
    let mut sp = easytime_obs::span("db.execute");
    // --- FROM / JOIN: build the joined layout and row set. ---
    let base = db.table(&stmt.from.name)?;
    if sp.is_recording() {
        sp.attr("table", stmt.from.name.as_str());
        sp.attr_u64("joins", stmt.joins.len() as u64);
        easytime_obs::add("db.rows_scanned", base.rows.len() as u64);
    }
    let layouts = prefix_layouts(db, stmt)?;
    let mut rows: Vec<Vec<Value>> = base.rows.clone();
    for (j, join) in stmt.joins.iter().enumerate() {
        let right = db.table(&join.table.name)?;
        let layout = &layouts[j + 1];
        let mut joined = Vec::new();
        for l in &rows {
            for r in &right.rows {
                let mut combined = Vec::with_capacity(l.len() + r.len());
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                if eval(&join.on, &Ctx::Row(&combined), layout)?.truthy() == Some(true) {
                    joined.push(combined);
                }
            }
        }
        rows = joined;
    }

    let mut src = MaterializedSource { rows: rows.into_iter() };
    let result = run_select(stmt, &mut src, layouts.last().unwrap_or(&layouts[0]), false)?;
    if sp.is_recording() {
        sp.attr_u64("rows", result.rows.len() as u64);
        easytime_obs::add("db.rows_returned", result.rows.len() as u64);
    }
    Ok(result)
}

/// Executes a parsed `SELECT` through a planned volcano operator chain.
/// Produces bit-identical results to [`execute_select`] by construction:
/// the access path only prunes (full `WHERE` re-applied per row, full `ON`
/// re-checked per probe), and row order entering the finisher is either
/// naive row-id order or, for sort-elided plans, the final output order.
pub(crate) fn execute_planned(
    db: &Database,
    stmt: &SelectStmt,
    plan: &SelectPlan,
) -> Result<QueryResult, DbError> {
    let mut sp = easytime_obs::span("db.execute");
    let base = db.table(&stmt.from.name)?;
    if sp.is_recording() {
        sp.attr("table", stmt.from.name.as_str());
        sp.attr_u64("joins", stmt.joins.len() as u64);
        sp.attr("path", "planned");
    }
    let layouts = prefix_layouts(db, stmt)?;
    let stats = ExecStats::default();

    let mut src: Box<dyn RowSource + '_> = match &plan.access {
        Access::Scan => Box::new(ScanSource::new(&base.rows, &stats)),
        Access::Seek { index, eq, lo, hi, desc } => {
            let ix = db.index(index).ok_or_else(|| DbError::Eval {
                message: format!("plan references missing index '{index}'"),
            })?;
            stats.add_seeks(1);
            let mut ids = Vec::new();
            if eq.len() == ix.width() {
                let key = IndexKey::from_values(eq.clone());
                ix.probe_into(&key, &mut ids);
            } else {
                let mut start = eq.clone();
                if let Some((v, _)) = lo {
                    start.push(v.clone());
                }
                let start = IndexKey::from_values(start);
                ix.collect_range(
                    &start,
                    eq.len(),
                    lo.as_ref().map(|(v, i)| (v, *i)),
                    hi.as_ref().map(|(v, i)| (v, *i)),
                    *desc,
                    &mut ids,
                );
                if !plan.sort_elided {
                    // Key order isn't needed downstream: restore row-id
                    // order so the finisher sees the naive emission order.
                    ids.sort_unstable();
                }
            }
            stats.add_pruned((base.rows.len() - ids.len()) as u64);
            Box::new(IdListSource::new(&base.rows, ids, &stats))
        }
    };
    if !plan.pushdown.is_empty() {
        src = Box::new(FilterSource::new(src, &plan.pushdown, &layouts[0], &stats));
    }
    for (j, step) in plan.joins.iter().enumerate() {
        let join = &stmt.joins[j];
        let right = db.table(&join.table.name)?;
        src = match step {
            JoinStep::Nested => Box::new(NestedJoinSource::new(
                src,
                &right.rows,
                &join.on,
                &layouts[j + 1],
                &stats,
            )),
            JoinStep::Probe { index, parts } => {
                let ix = db.index(index).ok_or_else(|| DbError::Eval {
                    message: format!("plan references missing index '{index}'"),
                })?;
                Box::new(ProbeJoinSource::new(
                    src,
                    &right.rows,
                    ix,
                    parts,
                    &join.on,
                    &layouts[j + 1],
                    &stats,
                ))
            }
        };
    }

    let result = run_select(
        stmt,
        src.as_mut(),
        layouts.last().unwrap_or(&layouts[0]),
        plan.sort_elided,
    )?;
    drop(src);
    if sp.is_recording() {
        sp.attr_u64("rows", result.rows.len() as u64);
        easytime_obs::add("db.index_seeks", stats.seeks.get());
        easytime_obs::add("db.rows_scanned", stats.scanned.get());
        easytime_obs::add("db.rows_pruned", stats.pruned.get());
        easytime_obs::add("db.rows_returned", result.rows.len() as u64);
    }
    Ok(result)
}

/// Shared finishing pipeline: WHERE → GROUP BY + aggregates → HAVING →
/// projection → DISTINCT → ORDER BY → LIMIT, pulling input rows from
/// `src`. With `sort_elided` the caller guarantees rows already arrive in
/// final `ORDER BY` order and the sort is skipped.
fn run_select(
    stmt: &SelectStmt,
    src: &mut dyn RowSource,
    layout: &Layout,
    sort_elided: bool,
) -> Result<QueryResult, DbError> {
    let has_aggregate = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt.having.as_ref().is_some_and(Expr::contains_aggregate);
    let aggregate_mode = has_aggregate || !stmt.group_by.is_empty();

    // Expand projections into (name, expr-or-wildcard-column).
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_exprs: Vec<Expr> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                if aggregate_mode {
                    return Err(DbError::Unsupported {
                        feature: "SELECT * together with aggregates/GROUP BY".into(),
                    });
                }
                for (tname, cols, _) in &layout.tables {
                    for c in cols {
                        out_columns.push(c.clone());
                        out_exprs.push(Expr::Column {
                            table: Some(tname.clone()),
                            name: c.clone(),
                        });
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                out_columns.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                out_exprs.push(expr.clone());
            }
        }
    }

    // --- pull + WHERE, stopping early when LIMIT needs no ordering pass ---
    let early_limit = match stmt.limit {
        Some(l)
            if !aggregate_mode
                && !stmt.distinct
                && (sort_elided || stmt.order_by.is_empty()) =>
        {
            Some(l)
        }
        _ => None,
    };
    let mut rows: Vec<Vec<Value>> = Vec::new();
    loop {
        if early_limit.is_some_and(|l| rows.len() >= l) {
            break;
        }
        let Some(row) = src.next_row()? else { break };
        if let Some(pred) = &stmt.where_clause {
            if eval(pred, &Ctx::Row(&row), layout)?.truthy() != Some(true) {
                continue;
            }
        }
        rows.push(row);
    }

    let mut result_rows: Vec<Vec<Value>> = Vec::new();
    // Values used for ORDER BY, aligned with result_rows.
    let mut order_keys: Vec<Vec<Value>> = Vec::new();

    // Resolves an ORDER BY expression: output alias/name first, then any
    // expression over the underlying context.
    let order_value = |expr: &Expr,
                       out_row: &[Value],
                       ctx: &Ctx<'_>|
     -> Result<Value, DbError> {
        if let Expr::Column { table: None, name } = expr {
            if let Some(i) = out_columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                return Ok(out_row[i].clone());
            }
        }
        eval(expr, ctx, layout)
    };

    if aggregate_mode {
        // Group rows by the GROUP BY key (whole input = one group when no
        // GROUP BY but aggregates are present). Groups keep first-appearance
        // order; the key map is a BTreeMap over typed order_key tuples.
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        if stmt.group_by.is_empty() {
            groups.push(rows);
        } else {
            let mut index: BTreeMap<IndexKey, usize> = BTreeMap::new();
            for row in rows {
                let keys: Vec<Value> = stmt
                    .group_by
                    .iter()
                    .map(|e| eval(e, &Ctx::Row(&row), layout))
                    .collect::<Result<_, _>>()?;
                let key = IndexKey::from_values(keys);
                match index.get(&key) {
                    Some(&i) => groups[i].push(row),
                    None => {
                        index.insert(key, groups.len());
                        groups.push(vec![row]);
                    }
                }
            }
        }

        for group_rows in &groups {
            if group_rows.is_empty() && !stmt.group_by.is_empty() {
                continue;
            }
            let ctx = Ctx::Group { rows: group_rows };
            if let Some(h) = &stmt.having {
                if eval(h, &ctx, layout)?.truthy() != Some(true) {
                    continue;
                }
            }
            let out: Vec<Value> = out_exprs
                .iter()
                .map(|e| eval(e, &ctx, layout))
                .collect::<Result<_, _>>()?;
            let keys: Vec<Value> = stmt
                .order_by
                .iter()
                .map(|(e, _)| order_value(e, &out, &ctx))
                .collect::<Result<_, _>>()?;
            result_rows.push(out);
            order_keys.push(keys);
        }
    } else {
        if stmt.having.is_some() {
            return Err(DbError::Unsupported {
                feature: "HAVING without GROUP BY or aggregates".into(),
            });
        }
        for row in &rows {
            let ctx = Ctx::Row(row);
            let out: Vec<Value> = out_exprs
                .iter()
                .map(|e| eval(e, &ctx, layout))
                .collect::<Result<_, _>>()?;
            let keys: Vec<Value> = stmt
                .order_by
                .iter()
                .map(|(e, _)| order_value(e, &out, &ctx))
                .collect::<Result<_, _>>()?;
            result_rows.push(out);
            order_keys.push(keys);
        }
    }

    // --- DISTINCT (typed keys, first appearance wins) ---
    if stmt.distinct {
        let mut seen: BTreeSet<IndexKey> = BTreeSet::new();
        let mut deduped_rows = Vec::new();
        let mut deduped_keys = Vec::new();
        for (row, keys) in result_rows.into_iter().zip(order_keys) {
            if seen.insert(IndexKey::from_values(row.clone())) {
                deduped_rows.push(row);
                deduped_keys.push(keys);
            }
        }
        result_rows = deduped_rows;
        order_keys = deduped_keys;
    }

    // --- ORDER BY (stable; skipped when the access path delivered it) ---
    if !stmt.order_by.is_empty() && !sort_elided {
        let mut idx: Vec<usize> = (0..result_rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, (_, desc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k].order_key(&order_keys[b][k]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        result_rows = idx.into_iter().map(|i| std::mem::take(&mut result_rows[i])).collect();
    }

    // --- LIMIT ---
    if let Some(limit) = stmt.limit {
        result_rows.truncate(limit);
    }

    Ok(QueryResult { columns: out_columns, rows: result_rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn results_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE results (dataset_id TEXT, method TEXT, horizon INTEGER, mae REAL)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO results VALUES \
             ('web_01', 'naive', 24, 3.0), \
             ('web_01', 'theta', 24, 2.0), \
             ('web_01', 'naive', 96, 6.0), \
             ('web_01', 'theta', 96, 4.0), \
             ('eco_01', 'naive', 24, 1.0), \
             ('eco_01', 'theta', 24, 1.5)",
        )
        .unwrap();
        db.execute("CREATE TABLE datasets (id TEXT, domain TEXT, trend REAL)").unwrap();
        db.execute(
            "INSERT INTO datasets VALUES ('web_01', 'web', 0.8), ('eco_01', 'economic', 0.3)",
        )
        .unwrap();
        db
    }

    #[test]
    fn where_order_limit() {
        let db = results_db();
        let r = db
            .query("SELECT method, mae FROM results WHERE horizon = 24 ORDER BY mae LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Text("naive".into()), Value::Float(1.0)]);
        assert_eq!(r.rows[1], vec![Value::Text("theta".into()), Value::Float(1.5)]);
    }

    #[test]
    fn group_by_with_aggregates_and_having() {
        let db = results_db();
        let r = db
            .query(
                "SELECT method, AVG(mae) AS mean_mae, COUNT(*) AS n FROM results \
                 GROUP BY method HAVING COUNT(*) >= 3 ORDER BY mean_mae",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["method", "mean_mae", "n"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("theta".into()));
        assert_eq!(r.rows[0][1], Value::Float(2.5));
        assert_eq!(r.rows[0][2], Value::Int(3));
        assert_eq!(r.rows[1][1], Value::Float(10.0 / 3.0));
    }

    #[test]
    fn aggregates_without_group_by() {
        let db = results_db();
        let r = db
            .query("SELECT COUNT(*), MIN(mae), MAX(mae), SUM(mae) FROM results")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Int(6), Value::Float(1.0), Value::Float(6.0), Value::Float(17.5)]
        );
    }

    #[test]
    fn join_with_filter_on_joined_table() {
        let db = results_db();
        let r = db
            .query(
                "SELECT r.method, AVG(r.mae) AS m FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE d.trend > 0.6 AND r.horizon = 96 \
                 GROUP BY r.method ORDER BY m",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("theta".into()));
        assert_eq!(r.rows[0][1], Value::Float(4.0));
    }

    #[test]
    fn distinct_and_wildcard() {
        let db = results_db();
        let r = db.query("SELECT DISTINCT method FROM results ORDER BY method").unwrap();
        assert_eq!(r.rows.len(), 2);
        let all = db.query("SELECT * FROM datasets").unwrap();
        assert_eq!(all.columns, vec!["id", "domain", "trend"]);
        assert_eq!(all.rows.len(), 2);
    }

    #[test]
    fn like_in_between() {
        let db = results_db();
        let r = db
            .query("SELECT DISTINCT dataset_id FROM results WHERE dataset_id LIKE 'web%'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Text("web_01".into())]]);
        let r = db
            .query("SELECT COUNT(*) FROM results WHERE method IN ('naive') AND mae BETWEEN 1 AND 3")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        let r = db
            .query("SELECT COUNT(*) FROM results WHERE method NOT IN ('naive')")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("web%", "web_01"));
        assert!(like_match("%01", "web_01"));
        assert!(like_match("w_b%", "web_01"));
        assert!(like_match("WEB%", "web_01"), "LIKE is case-insensitive");
        assert!(!like_match("web", "web_01"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn arithmetic_in_projections() {
        let db = results_db();
        let r = db
            .query("SELECT mae * 2 + 1 AS double_mae FROM results WHERE mae = 1.0")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));
        let r = db.query("SELECT horizon / 0 FROM results LIMIT 1").unwrap();
        assert!(r.rows[0][0].is_null(), "division by zero yields NULL");
    }

    #[test]
    fn ambiguous_and_unknown_columns_error() {
        let db = results_db();
        // Both tables lack column 'nope'.
        assert!(matches!(
            db.query("SELECT nope FROM results"),
            Err(DbError::UnknownColumn { .. })
        ));
        // Unqualified column that exists in the base table only is fine.
        assert!(db
            .query("SELECT method FROM results r JOIN datasets d ON r.dataset_id = d.id")
            .is_ok());
    }

    #[test]
    fn order_by_alias_and_expression() {
        let db = results_db();
        let r = db
            .query("SELECT method, mae AS m FROM results WHERE horizon = 24 ORDER BY m DESC")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("naive".into()));
        let r = db
            .query("SELECT method FROM results WHERE horizon = 24 ORDER BY mae * -1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("naive".into()));
    }

    #[test]
    fn count_distinct_like_queries_by_group() {
        let db = results_db();
        let r = db
            .query(
                "SELECT dataset_id, COUNT(*) AS n FROM results GROUP BY dataset_id \
                 ORDER BY n DESC, dataset_id",
            )
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Text("web_01".into()), Value::Int(4)]);
        assert_eq!(r.rows[1], vec![Value::Text("eco_01".into()), Value::Int(2)]);
    }

    #[test]
    fn empty_results_are_not_errors() {
        let db = results_db();
        let r = db.query("SELECT * FROM results WHERE mae > 100").unwrap();
        assert!(r.is_empty());
        let r = db
            .query("SELECT method, AVG(mae) FROM results WHERE mae > 100 GROUP BY method")
            .unwrap();
        assert!(r.is_empty());
        // Aggregate over empty set without GROUP BY: one row, NULL/0.
        let r = db.query("SELECT COUNT(*), AVG(mae) FROM results WHERE mae > 100").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn select_star_with_group_by_is_unsupported() {
        let db = results_db();
        assert!(matches!(
            db.query("SELECT * FROM results GROUP BY method"),
            Err(DbError::Unsupported { .. })
        ));
    }

    #[test]
    fn typed_group_keys_merge_cross_type_numerics() {
        // Int 2 and Float 2.0 are one group under order_key equality — the
        // same policy ORDER BY uses, unlike the old stringified keys.
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k REAL, v INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (2, 1), (2.0, 10), (3, 5)").unwrap();
        let r = db.query("SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn planned_matches_scan_on_indexed_point_query() {
        let mut db = results_db();
        db.create_index("ix_m", "results", &["method", "horizon"]).unwrap();
        let sql = "SELECT mae FROM results WHERE method = 'theta' AND horizon = 24";
        let planned = db.query(sql).unwrap();
        let scanned = db.query_scan(sql).unwrap();
        assert_eq!(planned, scanned);
        let explain = db.explain(sql).unwrap();
        assert!(explain.contains("index-seek ix_m"), "{explain}");
    }
}
