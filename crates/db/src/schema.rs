//! Table schemas.

use crate::error::DbError;
use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float (accepts integer literals, widened).
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Canonical SQL name.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "INTEGER",
            ColumnType::Float => "REAL",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOLEAN",
        }
    }

    /// Parses a type from common SQL spellings.
    pub fn parse(s: &str) -> Option<ColumnType> {
        match s.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Some(ColumnType::Int),
            "REAL" | "FLOAT" | "DOUBLE" => Some(ColumnType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Some(ColumnType::Text),
            "BOOL" | "BOOLEAN" => Some(ColumnType::Bool),
            _ => None,
        }
    }

    /// Checks (and possibly widens) a value for storage in this column.
    pub(crate) fn coerce(self, value: Value) -> Result<Value, DbError> {
        match (self, value) {
            (_, Value::Null) => Ok(Value::Null),
            (ColumnType::Int, Value::Int(i)) => Ok(Value::Int(i)),
            (ColumnType::Float, Value::Float(f)) => Ok(Value::Float(f)),
            (ColumnType::Float, Value::Int(i)) => Ok(Value::Float(i as f64)),
            (ColumnType::Text, Value::Text(s)) => Ok(Value::Text(s)),
            (ColumnType::Bool, Value::Bool(b)) => Ok(Value::Bool(b)),
            (ty, v) => Err(DbError::TypeMismatch {
                message: format!("cannot store {v:?} in a {} column", ty.name()),
            }),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lowercase).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column; names are normalized to lowercase.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column { name: name.into().to_ascii_lowercase(), ty }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Validates and coerces a row for storage.
    pub(crate) fn coerce_row(&self, row: Vec<Value>) -> Result<Vec<Value>, DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch { expected: self.columns.len(), found: row.len() });
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| c.ty.coerce(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("ID", ColumnType::Int),
            Column::new("score", ColumnType::Float),
            Column::new("name", ColumnType::Text),
        ])
    }

    #[test]
    fn column_names_are_lowercased_and_found_case_insensitively() {
        let s = schema();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Score"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.names(), vec!["id", "score", "name"]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn coerce_row_validates_types_and_arity() {
        let s = schema();
        let ok = s
            .coerce_row(vec![Value::Int(1), Value::Int(2), Value::Text("x".into())])
            .unwrap();
        // Int widened to Float in the score column.
        assert_eq!(ok[1], Value::Float(2.0));

        assert!(matches!(
            s.coerce_row(vec![Value::Int(1)]),
            Err(DbError::ArityMismatch { expected: 3, found: 1 })
        ));
        assert!(matches!(
            s.coerce_row(vec![Value::Text("no".into()), Value::Float(1.0), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
        // NULL is storable in any column.
        assert!(s.coerce_row(vec![Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn type_parsing() {
        assert_eq!(ColumnType::parse("integer"), Some(ColumnType::Int));
        assert_eq!(ColumnType::parse("DOUBLE"), Some(ColumnType::Float));
        assert_eq!(ColumnType::parse("varchar"), Some(ColumnType::Text));
        assert_eq!(ColumnType::parse("bool"), Some(ColumnType::Bool));
        assert_eq!(ColumnType::parse("blob"), None);
        assert_eq!(ColumnType::Int.name(), "INTEGER");
    }
}
