//! SQL value type.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// True when the value is NULL.
    pub(crate) fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to floats); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view; `None` for non-text values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view with SQL-ish truthiness: booleans as-is, numbers ≠ 0,
    /// NULL is `None`.
    pub(crate) fn truthy(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Null => None,
            Value::Text(_) => None,
        }
    }

    /// SQL comparison: numerics compare cross-type, text with text, bools
    /// with bools; NULL and mixed types are incomparable.
    pub(crate) fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (used by `=`, `IN`, `DISTINCT`, `GROUP BY`): NULL never
    /// equals anything via `=`, but grouping treats NULLs as one group —
    /// callers pick the semantics they need.
    pub(crate) fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            _ => Some(self.compare(other) == Some(Ordering::Equal)),
        }
    }

    /// Grouping key equality: NULL == NULL, otherwise `sql_eq` (test
    /// diagnostics).
    #[cfg(test)]
    pub(crate) fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other).unwrap_or(false),
        }
    }

    /// Stable *total* ordering for ORDER BY: NULLs first, then bools,
    /// numbers (NaN sorting after every real number via `total_cmp`),
    /// then text.
    ///
    /// `compare` deliberately answers `None` for NaN-vs-number (SQL
    /// comparisons with NaN are not meaningful), but ORDER BY must still
    /// place such rows deterministically — falling back to the type rank
    /// would call NaN "equal" to every number and let the sort order
    /// depend on input order.
    pub fn order_key(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        if let Some(ord) = self.compare(other) {
            return ord;
        }
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            return a.total_cmp(&b);
        }
        rank(self).cmp(&rank(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).compare(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn text_and_bool_comparison() {
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Bool(false).compare(&Value::Bool(true)), Some(Ordering::Less));
        // Mixed text/number is incomparable.
        assert_eq!(Value::Text("1".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn order_key_is_total() {
        let mut vals = [
            Value::Text("z".into()),
            Value::Null,
            Value::Int(5),
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort_by(|a, b| a.order_key(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[4], Value::Text("z".into()));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).truthy(), Some(true));
        assert_eq!(Value::Int(0).truthy(), Some(false));
        assert_eq!(Value::Float(0.5).truthy(), Some(true));
        assert_eq!(Value::Null.truthy(), None);
        assert_eq!(Value::Text("x".into()).truthy(), None);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::Text("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("s".into()).as_f64(), None);
        assert_eq!(Value::Text("s".into()).as_str(), Some("s"));
    }
}
