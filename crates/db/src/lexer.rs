//! SQL tokenizer.

use crate::error::DbError;

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// Punctuation or operator: `, ( ) * . ; = != <> < <= > >= + - /`.
    Symbol(&'static str),
}

impl Token {
    /// The token's surface text for error messages.
    pub fn text(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Number(n) => n.to_string(),
            Token::Str(s) => format!("'{s}'"),
            Token::Symbol(s) => (*s).to_string(),
        }
    }
}

/// Tokenizes SQL text.
pub(crate) fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Symbol(","));
                i += 1;
            }
            '(' => {
                out.push(Token::Symbol("("));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(")"));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol("*"));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol("."));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(";"));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol("+"));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol("-"));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol("/"));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol("="));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    return Err(DbError::Lex { position: i, message: "stray '!'".into() });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol("<="));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    out.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::Lex {
                            position: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 safe: find char at byte i.
                        let Some(ch) = input[i..].chars().next() else {
                            break;
                        };
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // Don't consume '.' if followed by a non-digit (could be
                    // qualified-name syntax after a number — not valid SQL,
                    // but keep errors local).
                    if bytes[i] == b'.'
                        && !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                // Scientific notation.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| DbError::Lex {
                    position: start,
                    message: format!("bad number '{text}'"),
                })?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Symbol(","));
        assert!(toks.contains(&Token::Symbol(">=")));
        assert!(toks.contains(&Token::Number(1.5)));
        assert_eq!(toks.last(), Some(&Token::Symbol(";")));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize("'it''s fine'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's fine".into())]);
        assert!(matches!(tokenize("'open"), Err(DbError::Lex { .. })));
    }

    #[test]
    fn operators_and_aliases() {
        let toks = tokenize("a <> b != c <= d >= e < f > g = h").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["!=", "!=", "<=", ">=", "<", ">", "="]);
    }

    #[test]
    fn numbers_including_scientific() {
        let toks = tokenize("1 2.5 3e2 4.5E-1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(300.0),
                Token::Number(0.45)
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = tokenize("SELECT -- pick everything\n *").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Symbol("*")]);
    }

    #[test]
    fn qualified_names_and_stars() {
        let toks = tokenize("t.col, COUNT(*)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol("."),
                Token::Ident("col".into()),
                Token::Symbol(","),
                Token::Ident("COUNT".into()),
                Token::Symbol("("),
                Token::Symbol("*"),
                Token::Symbol(")"),
            ]
        );
    }

    #[test]
    fn bad_characters_error_with_position() {
        match tokenize("SELECT @") {
            Err(DbError::Lex { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'中文 série'").unwrap();
        assert_eq!(toks, vec![Token::Str("中文 série".into())]);
    }
}
