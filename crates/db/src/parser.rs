//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::DbError;
use crate::lexer::{tokenize, Token};
use crate::schema::ColumnType;
use crate::value::Value;

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";");
    if !p.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: &str) -> DbError {
        DbError::Parse {
            message: message.to_string(),
            near: self.peek().map(Token::text).unwrap_or_default(),
        }
    }

    /// Consumes an identifier token equal (case-insensitively) to `kw`.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), DbError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{sym}'")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Reserved words that terminate identifier positions.
    fn is_reserved(s: &str) -> bool {
        const RESERVED: &[&str] = &[
            "select", "from", "where", "group", "by", "having", "order", "limit", "join",
            "inner", "on", "as", "and", "or", "not", "like", "in", "between", "is", "null",
            "asc", "desc", "distinct", "insert", "into", "values", "create", "table", "true",
            "false",
        ];
        RESERVED.contains(&s.to_ascii_lowercase().as_str())
    }

    fn identifier(&mut self) -> Result<String, DbError> {
        match self.peek() {
            Some(Token::Ident(s)) if !Self::is_reserved(s) => {
                let out = s.to_ascii_lowercase();
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.peek_keyword("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek_keyword("insert") {
            Ok(Statement::Insert(self.insert()?))
        } else if self.peek_keyword("create") {
            Ok(Statement::CreateTable(self.create_table()?))
        } else {
            Err(self.error("expected SELECT, INSERT, or CREATE TABLE"))
        }
    }

    fn select(&mut self) -> Result<SelectStmt, DbError> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");

        let mut items = Vec::new();
        loop {
            if self.eat_symbol("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("as") {
                    Some(self.identifier()?)
                } else {
                    match self.peek() {
                        Some(Token::Ident(s))
                            if !Self::is_reserved(s) =>
                        {
                            Some(self.identifier()?)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }

        self.expect_keyword("from")?;
        let from = self.table_ref()?;

        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("inner");
            if self.eat_keyword("join") {
                let table = self.table_ref()?;
                self.expect_keyword("on")?;
                let on = self.expr()?;
                joins.push(Join { table, on });
            } else if inner {
                return Err(self.error("expected JOIN after INNER"));
            } else {
                break;
            }
        }

        let where_clause = if self.eat_keyword("where") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("having") { Some(self.expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("limit") {
            match self.advance() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                _ => return Err(self.error("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };

        Ok(SelectStmt { distinct, items, from, joins, where_clause, group_by, having, order_by, limit })
    }

    fn table_ref(&mut self) -> Result<TableRef, DbError> {
        let name = self.identifier()?;
        let alias = if self.eat_keyword("as") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !Self::is_reserved(s) => Some(self.identifier()?),
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> Result<InsertStmt, DbError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.identifier()?;
        let columns = if self.eat_symbol("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(InsertStmt { table, columns, rows })
    }

    fn create_table(&mut self) -> Result<CreateTableStmt, DbError> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.identifier()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier()?;
            let ty_name = match self.advance() {
                Some(Token::Ident(s)) => s,
                _ => return Err(self.error("expected column type")),
            };
            let ty = ColumnType::parse(&ty_name)
                .ok_or_else(|| self.error(&format!("unknown column type '{ty_name}'")))?;
            columns.push((col, ty));
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(CreateTableStmt { name, columns })
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        let negative = self.eat_symbol("-");
        match self.advance() {
            Some(Token::Number(n)) => {
                let v = if negative { -n } else { n };
                if v.fract() == 0.0 && v.abs() < 9.2e18 {
                    Ok(Value::Int(v as i64))
                } else {
                    Ok(Value::Float(v))
                }
            }
            Some(Token::Str(s)) if !negative => Ok(Value::Text(s)),
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("true") => {
                Ok(Value::Bool(true))
            }
            Some(Token::Ident(s)) if !negative && s.eq_ignore_ascii_case("false") => {
                Ok(Value::Bool(false))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected literal value"))
            }
        }
    }

    // ----- expression grammar, lowest precedence first -----

    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, DbError> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }

        // [NOT] LIKE / IN / BETWEEN
        let negated = self.eat_keyword("not");
        if self.eat_keyword("like") {
            match self.advance() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern, negated })
                }
                _ => return Err(self.error("LIKE expects a string pattern")),
            }
        }
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("between") {
            let low = self.additive()?;
            self.expect_keyword("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected LIKE, IN, or BETWEEN after NOT"));
        }

        let op = if self.eat_symbol("=") {
            Some(BinOp::Eq)
        } else if self.eat_symbol("!=") {
            Some(BinOp::Ne)
        } else if self.eat_symbol("<=") {
            Some(BinOp::Le)
        } else if self.eat_symbol("<") {
            Some(BinOp::Lt)
        } else if self.eat_symbol(">=") {
            Some(BinOp::Ge)
        } else if self.eat_symbol(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        if let Some(op) = op {
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, DbError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinOp::Add
            } else if self.eat_symbol("-") {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, DbError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinOp::Mul
            } else if self.eat_symbol("/") {
                BinOp::Div
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, DbError> {
        if self.eat_symbol("-") {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, DbError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.fract() == 0.0 && n.abs() < 9.2e18 {
                    Ok(Expr::Literal(Value::Int(n as i64)))
                } else {
                    Ok(Expr::Literal(Value::Float(n)))
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Symbol("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Ident(ident)) => {
                if ident.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if ident.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if ident.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                // Aggregate call?
                if let Some(func) = Aggregate::parse(&ident) {
                    if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol("("))) {
                        self.pos += 2; // name and '('
                        let arg = if self.eat_symbol("*") {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_symbol(")")?;
                        return Ok(Expr::AggregateCall { func, arg });
                    }
                }
                if Self::is_reserved(&ident) {
                    return Err(self.error("unexpected keyword in expression"));
                }
                self.pos += 1;
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.identifier()?;
                    Ok(Expr::Column { table: Some(ident.to_ascii_lowercase()), name: col })
                } else {
                    Ok(Expr::Column { table: None, name: ident.to_ascii_lowercase() })
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_select() {
        let s = select("SELECT a, b FROM t");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.name, "t");
        assert!(!s.distinct);
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn parses_full_query_shape() {
        let s = select(
            "SELECT method, AVG(mae) AS mean_mae FROM results \
             WHERE horizon >= 48 AND strategy = 'rolling' \
             GROUP BY method HAVING COUNT(*) > 3 \
             ORDER BY mean_mae ASC, method DESC LIMIT 8;",
        );
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.as_ref().unwrap().contains_aggregate());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1);
        assert!(s.order_by[1].1);
        assert_eq!(s.limit, Some(8));
        match &s.items[1] {
            SelectItem::Expr { alias, expr } => {
                assert_eq!(alias.as_deref(), Some("mean_mae"));
                assert!(expr.contains_aggregate());
            }
            _ => panic!("expected aliased aggregate"),
        }
    }

    #[test]
    fn parses_joins_with_aliases() {
        let s = select(
            "SELECT r.method, d.domain FROM results r \
             JOIN datasets AS d ON r.dataset_id = d.id WHERE d.trend > 0.6",
        );
        assert_eq!(s.from.effective_name(), "r");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.effective_name(), "d");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Column { table, name }, .. } => {
                assert_eq!(table.as_deref(), Some("r"));
                assert_eq!(name, "method");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_inner_join_keyword() {
        let s = select("SELECT * FROM a INNER JOIN b ON a.x = b.y");
        assert_eq!(s.joins.len(), 1);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
    }

    #[test]
    fn parses_predicates() {
        let s = select(
            "SELECT * FROM t WHERE a LIKE 'web%' AND b IN (1, 2, 3) \
             AND c BETWEEN 0 AND 1 AND d IS NOT NULL AND NOT e = 5",
        );
        let w = s.where_clause.unwrap();
        let mut likes = 0;
        let mut ins = 0;
        let mut betweens = 0;
        let mut is_nulls = 0;
        let mut nots = 0;
        fn walk(
            e: &Expr,
            likes: &mut i32,
            ins: &mut i32,
            betweens: &mut i32,
            is_nulls: &mut i32,
            nots: &mut i32,
        ) {
            match e {
                Expr::Like { .. } => *likes += 1,
                Expr::InList { list, .. } => {
                    *ins += 1;
                    assert_eq!(list.len(), 3);
                }
                Expr::Between { .. } => *betweens += 1,
                Expr::IsNull { negated, .. } => {
                    *is_nulls += 1;
                    assert!(*negated);
                }
                Expr::Not(inner) => {
                    *nots += 1;
                    walk(inner, likes, ins, betweens, is_nulls, nots);
                }
                Expr::Binary { left, right, .. } => {
                    walk(left, likes, ins, betweens, is_nulls, nots);
                    walk(right, likes, ins, betweens, is_nulls, nots);
                }
                _ => {}
            }
        }
        walk(&w, &mut likes, &mut ins, &mut betweens, &mut is_nulls, &mut nots);
        assert_eq!((likes, ins, betweens, is_nulls, nots), (1, 1, 1, 1, 1));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = select("SELECT a + b * 2 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_and_create() {
        let stmt = parse(
            "INSERT INTO methods (name, family) VALUES ('theta', 'statistical'), ('naive', 'statistical')",
        )
        .unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.table, "methods");
                assert_eq!(i.columns.as_ref().unwrap().len(), 2);
                assert_eq!(i.rows.len(), 2);
                assert_eq!(i.rows[0][0], Value::Text("theta".into()));
            }
            other => panic!("unexpected {other:?}"),
        }

        let stmt = parse("CREATE TABLE t (id INTEGER, score REAL, name TEXT, ok BOOLEAN)").unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert_eq!(c.name, "t");
                assert_eq!(c.columns.len(), 4);
                assert_eq!(c.columns[1], ("score".to_string(), ColumnType::Float));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_literals_support_negatives_null_bool() {
        let stmt = parse("INSERT INTO t VALUES (-3, -2.5, NULL, true)").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(
                    i.rows[0],
                    vec![Value::Int(-3), Value::Float(-2.5), Value::Null, Value::Bool(true)]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("SELEC a FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t; garbage").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("SELECT a FROM t INNER b").is_err());
    }

    #[test]
    fn count_star_and_distinct() {
        let s = select("SELECT DISTINCT domain, COUNT(*) FROM datasets GROUP BY domain");
        assert!(s.distinct);
        match &s.items[1] {
            SelectItem::Expr { expr: Expr::AggregateCall { func, arg }, .. } => {
                assert_eq!(*func, Aggregate::Count);
                assert!(arg.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
