//! Error type for the SQL engine.

use std::fmt;

/// Errors produced by the SQL engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Tokenization failed.
    Lex {
        /// Byte offset of the failure.
        position: usize,
        /// Description.
        message: String,
    },
    /// Parsing failed.
    Parse {
        /// Description.
        message: String,
        /// Token text near the failure (empty at end of input).
        near: String,
    },
    /// A referenced table does not exist.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A referenced column does not exist.
    UnknownColumn {
        /// The missing column name (possibly qualified).
        name: String,
    },
    /// A table with this name already exists.
    DuplicateTable {
        /// The conflicting name.
        name: String,
    },
    /// An index with this name already exists.
    DuplicateIndex {
        /// The conflicting name.
        name: String,
    },
    /// A value did not match the column type.
    TypeMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// Columns expected.
        expected: usize,
        /// Values provided.
        found: usize,
    },
    /// The statement uses an unsupported feature.
    Unsupported {
        /// Description of the feature.
        feature: String,
    },
    /// Verification rejected the statement (e.g. non-SELECT on the Q&A path).
    VerificationFailed {
        /// Why the statement was rejected.
        reason: String,
    },
    /// Runtime evaluation error (division by zero, bad aggregate input, …).
    Eval {
        /// Description.
        message: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            DbError::Parse { message, near } => {
                if near.is_empty() {
                    write!(f, "parse error: {message} (at end of input)")
                } else {
                    write!(f, "parse error: {message} (near '{near}')")
                }
            }
            DbError::UnknownTable { name } => write!(f, "unknown table '{name}'"),
            DbError::UnknownColumn { name } => write!(f, "unknown column '{name}'"),
            DbError::DuplicateTable { name } => write!(f, "table '{name}' already exists"),
            DbError::DuplicateIndex { name } => write!(f, "index '{name}' already exists"),
            DbError::TypeMismatch { message } => write!(f, "type mismatch: {message}"),
            DbError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} values, found {found}")
            }
            DbError::Unsupported { feature } => write!(f, "unsupported SQL feature: {feature}"),
            DbError::VerificationFailed { reason } => {
                write!(f, "verification failed: {reason}")
            }
            DbError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for DbError {}
