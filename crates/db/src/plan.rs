//! Cost-based `SELECT` planning.
//!
//! The planner picks, per query, an access path for the driving table
//! (sequential scan, index seek, or ordered index walk), a strategy for
//! each join (index probe vs nested loop), and whether the final sort can
//! be elided because the chosen index already delivers `ORDER BY` order.
//! Decisions come from a selectivity cost model over [`crate::stats`].
//!
//! Two contracts:
//!
//! * **Bit-identical results.** Index access only *prunes*: the executor
//!   re-applies the full `WHERE` per row and the full `ON` per probe, and
//!   non-elided plans restore row-id order before downstream stages, so
//!   every plan reproduces the naive scan path's output exactly.
//! * **Byte-deterministic explain.** Statistics derive from table contents
//!   only, candidates are enumerated in index-name order with strict-`<`
//!   cost replacement, and the explain renderer is pure — the same query
//!   over the same data yields the same plan text, regardless of
//!   index-creation order.

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt};
use crate::database::{Database, Table};
use crate::error::DbError;
use crate::index::Index;
use crate::stats::{self, TableStats};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Cost of touching one row on a sequential scan.
const ROW_COST: f64 = 1.0;
/// Cost of fetching one row through an index (pointer chase + key check).
const INDEX_ROW_COST: f64 = 1.05;
/// Selectivity guess for a non-sargable residual conjunct.
const RESIDUAL_SEL: f64 = 0.75;

fn sort_cost(n: f64) -> f64 {
    n * (n + 2.0).log2() * 0.25
}

/// Cost of re-sorting seek results back into row-id order (cheap integer
/// sort, no key comparisons).
fn id_sort_cost(n: f64) -> f64 {
    n * (n + 2.0).log2() * 0.05
}

/// How the driving table's rows are produced.
#[derive(Debug, Clone)]
pub(crate) enum Access {
    /// Sequential scan in row-id order.
    Scan,
    /// Index seek/walk: equality prefix `eq`, optional range bounds on the
    /// next key column, walked descending when `desc`.
    Seek {
        /// Index name.
        index: String,
        /// Equality prefix values, one per leading key column.
        eq: Vec<Value>,
        /// Lower bound on the column after the prefix (value, inclusive).
        lo: Option<(Value, bool)>,
        /// Upper bound on the column after the prefix (value, inclusive).
        hi: Option<(Value, bool)>,
        /// Walk the keys in descending order.
        desc: bool,
    },
}

/// One probe-key component for an index-nested-loop join.
#[derive(Debug, Clone)]
pub(crate) enum ProbePart {
    /// Take the value at this global offset of the already-joined row.
    LeftCol(usize),
    /// A constant from the `ON` clause.
    Const(Value),
}

/// Strategy for one `JOIN`.
#[derive(Debug, Clone)]
pub(crate) enum JoinStep {
    /// Nested loop over the right table's rows.
    Nested,
    /// Probe the named right-table index with a key built from `parts`.
    Probe {
        /// Index on the joined table.
        index: String,
        /// Key components in index-column order.
        parts: Vec<ProbePart>,
    },
}

/// A complete plan for one `SELECT`.
#[derive(Debug, Clone)]
pub(crate) struct SelectPlan {
    /// Driving-table access path.
    pub(crate) access: Access,
    /// Driver-only conjuncts applied before joining (empty when the query
    /// has no joins — the final `WHERE` pass covers them).
    pub(crate) pushdown: Vec<Expr>,
    /// One step per `JOIN`, in statement order.
    pub(crate) joins: Vec<JoinStep>,
    /// The access path already delivers `ORDER BY` order: skip the sort.
    pub(crate) sort_elided: bool,
    /// Deterministic plan description.
    pub(crate) explain: String,
}

/// Name-resolution view over the query's tables.
struct Tables<'a> {
    /// `(effective name, table, global column offset)` in join order.
    list: Vec<(String, &'a Table, usize)>,
}

enum Res {
    Col { table: usize, pos: usize, offset: usize },
    Missing,
}

impl Tables<'_> {
    fn resolve(&self, table: Option<&str>, name: &str) -> Res {
        match table {
            Some(t) => {
                for (i, (eff, tab, off)) in self.list.iter().enumerate() {
                    if eff == t {
                        return match tab.schema.index_of(name) {
                            Some(pos) => Res::Col { table: i, pos, offset: off + pos },
                            None => Res::Missing,
                        };
                    }
                }
                Res::Missing
            }
            None => {
                let mut found = None;
                for (i, (_, tab, off)) in self.list.iter().enumerate() {
                    if let Some(pos) = tab.schema.index_of(name) {
                        if found.is_some() {
                            return Res::Missing; // ambiguous: treat as unplannable
                        }
                        found = Some(Res::Col { table: i, pos, offset: off + pos });
                    }
                }
                found.unwrap_or(Res::Missing)
            }
        }
    }
}

/// Flattens top-level `AND`s into a conjunct list.
fn split_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            split_and(left, out);
            split_and(right, out);
        }
        other => out.push(other),
    }
}

/// The set of tables a conjunct references; `None` when any column fails
/// to resolve (unknown or ambiguous — the naive `WHERE` pass will report
/// it, the planner just refuses to reason about it).
fn conjunct_tables(expr: &Expr, tables: &Tables<'_>) -> Option<BTreeSet<usize>> {
    let mut ok = true;
    let mut set = BTreeSet::new();
    expr.visit_columns(&mut |t, n| match tables.resolve(t, n) {
        Res::Col { table, .. } => {
            set.insert(table);
        }
        Res::Missing => ok = false,
    });
    ok.then_some(set)
}

/// A literal operand, folding unary minus over numeric literals.
fn lit_of(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Neg(inner) => match inner.as_ref() {
            Expr::Literal(Value::Int(i)) => Some(Value::Int(-i)),
            Expr::Literal(Value::Float(f)) => Some(Value::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// A plain column operand resolved to `(table, position)`.
fn col_of(expr: &Expr, tables: &Tables<'_>) -> Option<(usize, usize)> {
    if let Expr::Column { table, name } = expr {
        if let Res::Col { table: t, pos, .. } = tables.resolve(table.as_deref(), name) {
            return Some((t, pos));
        }
    }
    None
}

/// Sargable predicates extracted from the driver-only conjuncts, keyed by
/// driver column position, in conjunct order.
#[derive(Default)]
struct Sargs {
    eqs: Vec<(usize, Value)>,
    los: Vec<(usize, Value, bool)>,
    his: Vec<(usize, Value, bool)>,
    /// Conjuncts that contributed at least one entry above.
    sarg_conjuncts: usize,
}

impl Sargs {
    fn extract(conjuncts: &[&Expr], tables: &Tables<'_>) -> Sargs {
        let mut s = Sargs::default();
        for c in conjuncts {
            let before = (s.eqs.len(), s.los.len(), s.his.len());
            match c {
                Expr::Binary { op, left, right }
                    if matches!(
                        op,
                        BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                    ) =>
                {
                    let hit = match (col_of(left, tables), lit_of(right)) {
                        (Some((0, pos)), Some(v)) => Some((pos, *op, v)),
                        _ => match (col_of(right, tables), lit_of(left)) {
                            // Flip the comparison when the literal is on
                            // the left: `5 < col` means `col > 5`.
                            (Some((0, pos)), Some(v)) => {
                                let flipped = match op {
                                    BinOp::Lt => BinOp::Gt,
                                    BinOp::Le => BinOp::Ge,
                                    BinOp::Gt => BinOp::Lt,
                                    BinOp::Ge => BinOp::Le,
                                    other => *other,
                                };
                                Some((pos, flipped, v))
                            }
                            _ => None,
                        },
                    };
                    if let Some((pos, op, v)) = hit {
                        match op {
                            BinOp::Eq => s.eqs.push((pos, v)),
                            BinOp::Lt => s.his.push((pos, v, false)),
                            BinOp::Le => s.his.push((pos, v, true)),
                            BinOp::Gt => s.los.push((pos, v, false)),
                            BinOp::Ge => s.los.push((pos, v, true)),
                            _ => {}
                        }
                    }
                }
                Expr::Between { expr, low, high, negated: false } => {
                    if let (Some((0, pos)), Some(lo), Some(hi)) =
                        (col_of(expr, tables), lit_of(low), lit_of(high))
                    {
                        s.los.push((pos, lo, true));
                        s.his.push((pos, hi, true));
                    }
                }
                _ => {}
            }
            if (s.eqs.len(), s.los.len(), s.his.len()) != before {
                s.sarg_conjuncts += 1;
            }
        }
        s
    }
}

/// `ORDER BY` as a driver-column sequence, when elision is even possible:
/// uniform direction, every key a plain driver column (after resolving
/// output-alias shadowing the way `order_value` does), no `DISTINCT`, and
/// in aggregate mode a `GROUP BY` list equal to the `ORDER BY` list.
fn wanted_order(
    stmt: &SelectStmt,
    tables: &Tables<'_>,
    aggregate_mode: bool,
) -> Option<(Vec<usize>, bool)> {
    if stmt.order_by.is_empty() || stmt.distinct {
        return None;
    }
    let desc = stmt.order_by[0].1;
    if stmt.order_by.iter().any(|(_, d)| *d != desc) {
        return None;
    }
    // Output columns: name plus, for plain-column projections, the column
    // they resolve to. `order_value` prefers an output alias over a table
    // column for unqualified ORDER BY names, so elision must follow suit.
    let mut out: Vec<(String, Option<(usize, usize)>)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (i, (_, tab, _)) in tables.list.iter().enumerate() {
                    for (pos, name) in tab.schema.names().into_iter().enumerate() {
                        out.push((name, Some((i, pos))));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                out.push((name, col_of(expr, tables)));
            }
        }
    }
    let mut cols = Vec::new();
    for (expr, _) in &stmt.order_by {
        let Expr::Column { table, name } = expr else { return None };
        let target = if table.is_none() {
            match out.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)) {
                // Alias-shadowed: usable only when the projection is itself
                // a plain column (the sort key is that column's value).
                Some((_, plain)) => (*plain)?,
                None => col_of(expr, tables)?,
            }
        } else {
            col_of(expr, tables)?
        };
        if target.0 != 0 {
            return None;
        }
        cols.push(target.1);
    }
    if aggregate_mode {
        if stmt.group_by.len() != cols.len() {
            return None;
        }
        for (g, &c) in stmt.group_by.iter().zip(&cols) {
            if col_of(g, tables) != Some((0, c)) {
                return None;
            }
        }
    }
    Some((cols, desc))
}

/// What `match_index` consumed from the sargable predicates.
struct IndexMatch {
    eq: Vec<Value>,
    lo: Option<(Value, bool)>,
    hi: Option<(Value, bool)>,
    /// Product of the consumed predicates' selectivities.
    selectivity: f64,
}

/// Greedily consumes equality predicates along the index's leading
/// columns, then range bounds on the next column.
fn match_index(ix: &Index, sargs: &Sargs, st: &TableStats) -> IndexMatch {
    let mut eq = Vec::new();
    let mut sel = 1.0;
    for &pos in ix.positions() {
        match sargs.eqs.iter().find(|(p, _)| *p == pos) {
            Some((_, v)) => {
                eq.push(v.clone());
                sel *= st.eq_selectivity(pos);
            }
            None => break,
        }
    }
    let mut lo = None;
    let mut hi = None;
    if eq.len() < ix.width() {
        let pos = ix.positions()[eq.len()];
        lo = sargs.los.iter().find(|(p, _, _)| *p == pos).map(|(_, v, i)| (v.clone(), *i));
        hi = sargs.his.iter().find(|(p, _, _)| *p == pos).map(|(_, v, i)| (v.clone(), *i));
        if lo.is_some() || hi.is_some() {
            sel *= st.range_selectivity(
                pos,
                lo.as_ref().map(|(v, _)| v),
                hi.as_ref().map(|(v, _)| v),
            );
        }
    }
    IndexMatch { eq, lo, hi, selectivity: sel }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// SQL-ish deterministic expression printer for explain output.
pub(crate) fn render_expr(expr: &Expr) -> String {
    match expr {
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::Literal(v) => render_value(v),
        Expr::Binary { op, left, right } => {
            let op = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {op} {})", render_expr(left), render_expr(right))
        }
        Expr::Neg(e) => format!("-{}", render_expr(e)),
        Expr::Not(e) => format!("NOT {}", render_expr(e)),
        Expr::AggregateCall { func, arg } => match arg {
            Some(a) => format!("{}({})", func.name(), render_expr(a)),
            None => format!("{}(*)", func.name()),
        },
        Expr::Like { expr, pattern, negated } => format!(
            "{}{} LIKE '{}'",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
            pattern.replace('\'', "''"),
        ),
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(render_expr).collect();
            format!(
                "{}{} IN ({})",
                render_expr(expr),
                if *negated { " NOT" } else { "" },
                items.join(", "),
            )
        }
        Expr::Between { expr, low, high, negated } => format!(
            "{}{} BETWEEN {} AND {}",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
            render_expr(low),
            render_expr(high),
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS{} NULL",
            render_expr(expr),
            if *negated { " NOT" } else { "" },
        ),
    }
}

/// Plans a verified `SELECT`. Never fails for resolution reasons — on any
/// trouble it degrades to the naive scan plan and lets the executor report
/// the same error the scan path would.
pub(crate) fn plan_select(db: &Database, stmt: &SelectStmt) -> Result<SelectPlan, DbError> {
    let mut sp = easytime_obs::span("db.plan");
    let plan = build_plan(db, stmt);
    if sp.is_recording() {
        sp.attr("table", stmt.from.effective_name());
        sp.attr(
            "access",
            match &plan.access {
                Access::Scan => "seq-scan",
                Access::Seek { .. } => "index-seek",
            },
        );
        sp.attr_u64("joins", plan.joins.len() as u64);
        sp.attr_u64("sort_elided", u64::from(plan.sort_elided));
    }
    Ok(plan)
}

fn scan_plan(stmt: &SelectStmt) -> SelectPlan {
    let mut explain = format!("select from {}\n", stmt.from.effective_name());
    let _ = writeln!(explain, "  access {}: seq-scan", stmt.from.effective_name());
    for j in &stmt.joins {
        let _ = writeln!(explain, "  join {}: nested-loop", j.table.effective_name());
    }
    SelectPlan {
        access: Access::Scan,
        pushdown: Vec::new(),
        joins: vec![JoinStep::Nested; stmt.joins.len()],
        sort_elided: false,
        explain,
    }
}

fn build_plan(db: &Database, stmt: &SelectStmt) -> SelectPlan {
    // Resolve every table up front; bail to the naive plan when any is
    // unknown (the executor reproduces the scan path's error).
    let mut list = Vec::new();
    let mut offset = 0usize;
    for r in std::iter::once(&stmt.from).chain(stmt.joins.iter().map(|j| &j.table)) {
        let Ok(tab) = db.table(&r.name) else { return scan_plan(stmt) };
        list.push((r.effective_name().to_ascii_lowercase(), tab, offset));
        offset += tab.schema.len();
    }
    let tables = Tables { list };
    let driver = tables.list[0].1;
    let driver_eff = tables.list[0].0.clone();
    let st = stats::gather(db, &driver.name);
    let n = st.rows as f64;

    // Conjunct classification.
    let mut conjuncts = Vec::new();
    if let Some(w) = &stmt.where_clause {
        split_and(w, &mut conjuncts);
    }
    let driver_only: Vec<&Expr> = conjuncts
        .iter()
        .filter(|c| {
            conjunct_tables(c, &tables).is_some_and(|s| s.len() == 1 && s.contains(&0))
        })
        .copied()
        .collect();
    let sargs = Sargs::extract(&driver_only, &tables);

    let has_aggregate = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt.having.as_ref().is_some_and(Expr::contains_aggregate);
    let aggregate_mode = has_aggregate || !stmt.group_by.is_empty();
    let wanted = wanted_order(stmt, &tables, aggregate_mode);

    // Overall output-row estimate (for sort and streaming costs): every
    // sargable conjunct applies its modeled selectivity, every residual
    // driver conjunct a fixed factor.
    let mut sel_all = 1.0f64;
    for (pos, _) in &sargs.eqs {
        sel_all *= st.eq_selectivity(*pos);
    }
    let bounded: BTreeSet<usize> = sargs
        .los
        .iter()
        .map(|(p, _, _)| *p)
        .chain(sargs.his.iter().map(|(p, _, _)| *p))
        .collect();
    for pos in &bounded {
        sel_all *= st.range_selectivity(
            *pos,
            sargs.los.iter().find(|(p, _, _)| p == pos).map(|(_, v, _)| v),
            sargs.his.iter().find(|(p, _, _)| p == pos).map(|(_, v, _)| v),
        );
    }
    let residual = driver_only.len().saturating_sub(sargs.sarg_conjuncts);
    sel_all *= RESIDUAL_SEL.powi(residual as i32);
    let est_out = (n * sel_all).max(1.0);

    // Streaming: an order-delivering access under LIMIT stops early.
    let streamable = stmt.limit.is_some() && !aggregate_mode && !stmt.distinct;

    // --- candidate enumeration: scan first, then indexes in name order ---
    struct Candidate {
        cost: f64,
        access: Access,
        elided: bool,
        est: f64,
    }
    let scan_cost =
        n * ROW_COST + if wanted.is_some() { sort_cost(est_out) } else { 0.0 };
    let mut best = Candidate { cost: scan_cost, access: Access::Scan, elided: false, est: n };
    for ix in db.indexes_for(&driver.name) {
        let m = match_index(ix, &sargs, &st);
        let e = m.eq.len();
        let ranged = m.lo.is_some() || m.hi.is_some();
        // Does the walk deliver the wanted order? Exactly when the index's
        // key tail past the equality prefix *is* the ORDER BY column list:
        // the equality prefix pins its columns, so key order == tail order,
        // and a fully determined key keeps row-id tie order intact.
        let ordered = wanted.as_ref().is_some_and(|(cols, _)| {
            e < ix.width() && ix.positions()[e..] == cols[..]
        });
        if e == 0 && !ranged && !ordered {
            continue; // nothing to seek, nothing to order by
        }
        let est = (n * m.selectivity).max(1.0);
        let walk = if ordered && streamable {
            // Pull until LIMIT is satisfied: the walked share of the
            // matching rows that yields `limit` output rows.
            let l = stmt.limit.unwrap_or(0) as f64;
            (l * est / est_out).clamp(l.min(est), est)
        } else {
            est
        };
        let mut cost = (n + 2.0).log2() + walk * INDEX_ROW_COST;
        if !ordered {
            // Seek results are re-sorted into row-id order (determinism),
            // and the final ORDER BY sort still runs.
            cost += id_sort_cost(est);
            if wanted.is_some() {
                cost += sort_cost(est_out);
            }
        }
        if cost < best.cost {
            let desc = ordered && wanted.as_ref().is_some_and(|(_, d)| *d);
            best = Candidate {
                cost,
                access: Access::Seek {
                    index: ix.name().to_string(),
                    eq: m.eq,
                    lo: m.lo,
                    hi: m.hi,
                    desc,
                },
                elided: ordered,
                est,
            };
        }
    }

    // --- joins: probe when an index covers ON equalities, else nested ---
    let mut joins = Vec::new();
    let mut join_lines = Vec::new();
    let mut left_est = best.est;
    for (j, join) in stmt.joins.iter().enumerate() {
        let right_idx = j + 1;
        let right = tables.list[right_idx].1;
        let n_r = right.rows.len() as f64;
        let mut on_parts = Vec::new();
        let mut on_conjuncts = Vec::new();
        split_and(&join.on, &mut on_conjuncts);
        for c in &on_conjuncts {
            if let Expr::Binary { op: BinOp::Eq, left, right: rexpr } = c {
                for (a, b) in [(left, rexpr), (rexpr, left)] {
                    let Some((t, pos)) = col_of(a, &tables) else { continue };
                    if t != right_idx {
                        continue;
                    }
                    let part = if let Some(v) = lit_of(b) {
                        Some(ProbePart::Const(v))
                    } else if let Expr::Column { table, name } = b.as_ref() {
                        match tables.resolve(table.as_deref(), name) {
                            Res::Col { table: bt, offset, .. } if bt <= j => {
                                Some(ProbePart::LeftCol(offset))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if let Some(p) = part {
                        on_parts.push((pos, p, render_expr(b)));
                        break;
                    }
                }
            }
        }
        // Best probe index: longest covered prefix, name order breaking ties.
        let r_st = stats::gather(db, &right.name);
        let mut probe: Option<(String, Vec<ProbePart>, Vec<String>, f64)> = None;
        for ix in db.indexes_for(&right.name) {
            let mut parts = Vec::new();
            let mut labels = Vec::new();
            let mut sel = 1.0;
            for &pos in ix.positions() {
                match on_parts.iter().find(|(p, _, _)| *p == pos) {
                    Some((_, part, label)) => {
                        parts.push(part.clone());
                        labels.push(format!(
                            "{} = {label}",
                            ix.columns()[parts.len() - 1]
                        ));
                        sel *= r_st.eq_selectivity(pos);
                    }
                    None => break,
                }
            }
            if !parts.is_empty()
                && probe.as_ref().is_none_or(|(_, best_parts, _, _)| {
                    parts.len() > best_parts.len()
                })
            {
                probe = Some((ix.name().to_string(), parts, labels, sel));
            }
        }
        match probe {
            Some((name, parts, labels, sel)) => {
                let match_est = (n_r * sel).max(1.0);
                let nested_cost = left_est * n_r;
                let probe_cost = left_est * ((n_r + 2.0).log2() + match_est * INDEX_ROW_COST);
                if probe_cost < nested_cost {
                    join_lines.push(format!(
                        "  join {}: index-probe {name} ({})",
                        join.table.effective_name(),
                        labels.join(", "),
                    ));
                    joins.push(JoinStep::Probe { index: name, parts });
                    left_est *= match_est;
                } else {
                    join_lines
                        .push(format!("  join {}: nested-loop", join.table.effective_name()));
                    joins.push(JoinStep::Nested);
                    left_est *= (n_r * 0.2).max(1.0);
                }
            }
            None => {
                join_lines.push(format!("  join {}: nested-loop", join.table.effective_name()));
                joins.push(JoinStep::Nested);
                left_est *= (n_r * 0.2).max(1.0);
            }
        }
    }

    // Pushdown only matters ahead of joins; single-table queries filter in
    // the main WHERE pass anyway.
    let pushdown: Vec<Expr> = if stmt.joins.is_empty() {
        Vec::new()
    } else {
        driver_only.iter().map(|e| (*e).clone()).collect()
    };

    // --- explain ---
    let mut explain = format!("select from {driver_eff}\n");
    match &best.access {
        Access::Scan => {
            let _ = writeln!(
                explain,
                "  access {driver_eff}: seq-scan rows~{n:.1} cost~{:.1}",
                best.cost
            );
        }
        Access::Seek { index, eq, lo, hi, desc } => {
            let ix = db.index(index.as_str());
            let mut conds = Vec::new();
            if let Some(ix) = ix {
                for (i, v) in eq.iter().enumerate() {
                    conds.push(format!("{} = {}", ix.columns()[i], render_value(v)));
                }
                if eq.len() < ix.width() {
                    let col = &ix.columns()[eq.len()];
                    if let Some((v, incl)) = lo {
                        conds.push(format!(
                            "{col} {} {}",
                            if *incl { ">=" } else { ">" },
                            render_value(v)
                        ));
                    }
                    if let Some((v, incl)) = hi {
                        conds.push(format!(
                            "{col} {} {}",
                            if *incl { "<=" } else { "<" },
                            render_value(v)
                        ));
                    }
                }
            }
            let kind = if conds.is_empty() { "index-scan" } else { "index-seek" };
            let _ = write!(explain, "  access {driver_eff}: {kind} {index}");
            if !conds.is_empty() {
                let _ = write!(explain, " ({})", conds.join(", "));
            }
            if *desc {
                let _ = write!(explain, " desc");
            }
            let _ = writeln!(explain, " rows~{:.1} cost~{:.1}", best.est, best.cost);
        }
    }
    if !pushdown.is_empty() {
        let rendered: Vec<String> = pushdown.iter().map(render_expr).collect();
        let _ = writeln!(explain, "  filter {driver_eff}: {}", rendered.join(" AND "));
    }
    for line in &join_lines {
        let _ = writeln!(explain, "{line}");
    }
    if let Some(w) = &stmt.where_clause {
        let _ = writeln!(explain, "  where: {}", render_expr(w));
    }
    if !stmt.group_by.is_empty() {
        let rendered: Vec<String> = stmt.group_by.iter().map(render_expr).collect();
        let _ = writeln!(explain, "  group by: {}", rendered.join(", "));
    }
    if let Some(h) = &stmt.having {
        let _ = writeln!(explain, "  having: {}", render_expr(h));
    }
    if !stmt.order_by.is_empty() {
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|(e, d)| format!("{} {}", render_expr(e), if *d { "desc" } else { "asc" }))
            .collect();
        let _ = writeln!(
            explain,
            "  order by: {} {}",
            keys.join(", "),
            if best.elided { "[sort elided: index order]" } else { "[sort]" }
        );
    }
    if let Some(l) = stmt.limit {
        let _ = writeln!(explain, "  limit: {l}");
    }

    SelectPlan { access: best.access, pushdown, joins, sort_elided: best.elided, explain }
}
