//! The benchmark-knowledge schema.
//!
//! TFB's *benchmark knowledge* "consists of the meta-information of both
//! datasets and methods, and also the benchmarking experiment results"
//! (paper §II-A). This module defines those three tables and typed row
//! structs for ingestion; the core crate populates them from the pipeline's
//! [`EvalRecord`]s and the recommender/Q&A modules read them back with SQL.
//!
//! Schema:
//!
//! ```text
//! datasets(id, domain, length, frequency, channels, multivariate,
//!          seasonality, trend, transition, shifting, stationarity,
//!          correlation, period)
//! methods(name, family, description)
//! results(dataset_id, method, strategy, horizon, mae, mse, rmse, smape,
//!         mase, r2, runtime_ms, windows)
//! ```
//!
//! [`EvalRecord`]: https://docs.rs/easytime-eval

use crate::database::Database;
use crate::error::DbError;
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;

/// Typed row of the `datasets` table.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Dataset id.
    pub id: String,
    /// Application domain.
    pub domain: String,
    /// Number of time steps.
    pub length: i64,
    /// Sampling frequency name.
    pub frequency: String,
    /// Channel count.
    pub channels: i64,
    /// Seasonality strength in `[0, 1]`.
    pub seasonality: f64,
    /// Trend strength in `[0, 1]`.
    pub trend: f64,
    /// Transition score in `[0, 1]`.
    pub transition: f64,
    /// Shifting score in `[0, 1]`.
    pub shifting: f64,
    /// Stationarity score in `[0, 1]`.
    pub stationarity: f64,
    /// Cross-channel correlation in `[0, 1]`.
    pub correlation: f64,
    /// Detected seasonal period (0 = none).
    pub period: i64,
}

/// Typed row of the `methods` table.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Canonical method name.
    pub name: String,
    /// Method family (`statistical` / `machine_learning` / `deep_learning`).
    pub family: String,
    /// One-line description.
    pub description: String,
}

/// Typed row of the `results` table. Metric fields are `None` when the
/// metric was not computed for the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Dataset id.
    pub dataset_id: String,
    /// Method name.
    pub method: String,
    /// Evaluation strategy name.
    pub strategy: String,
    /// Forecast horizon.
    pub horizon: i64,
    /// Mean absolute error.
    pub mae: Option<f64>,
    /// Mean squared error.
    pub mse: Option<f64>,
    /// Root mean squared error.
    pub rmse: Option<f64>,
    /// Symmetric MAPE.
    pub smape: Option<f64>,
    /// Mean absolute scaled error.
    pub mase: Option<f64>,
    /// Coefficient of determination.
    pub r2: Option<f64>,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
    /// Number of evaluation windows.
    pub windows: i64,
}

fn opt(v: Option<f64>) -> Value {
    match v {
        Some(x) if x.is_finite() => Value::Float(x),
        _ => Value::Null,
    }
}

/// Creates the three knowledge tables in `db`.
pub fn create_knowledge_schema(db: &mut Database) -> Result<(), DbError> {
    db.create_table(
        "datasets",
        Schema::new(vec![
            Column::new("id", ColumnType::Text),
            Column::new("domain", ColumnType::Text),
            Column::new("length", ColumnType::Int),
            Column::new("frequency", ColumnType::Text),
            Column::new("channels", ColumnType::Int),
            Column::new("multivariate", ColumnType::Bool),
            Column::new("seasonality", ColumnType::Float),
            Column::new("trend", ColumnType::Float),
            Column::new("transition", ColumnType::Float),
            Column::new("shifting", ColumnType::Float),
            Column::new("stationarity", ColumnType::Float),
            Column::new("correlation", ColumnType::Float),
            Column::new("period", ColumnType::Int),
        ]),
    )?;
    db.create_table(
        "methods",
        Schema::new(vec![
            Column::new("name", ColumnType::Text),
            Column::new("family", ColumnType::Text),
            Column::new("description", ColumnType::Text),
        ]),
    )?;
    db.create_table(
        "results",
        Schema::new(vec![
            Column::new("dataset_id", ColumnType::Text),
            Column::new("method", ColumnType::Text),
            Column::new("strategy", ColumnType::Text),
            Column::new("horizon", ColumnType::Int),
            Column::new("mae", ColumnType::Float),
            Column::new("mse", ColumnType::Float),
            Column::new("rmse", ColumnType::Float),
            Column::new("smape", ColumnType::Float),
            Column::new("mase", ColumnType::Float),
            Column::new("r2", ColumnType::Float),
            Column::new("runtime_ms", ColumnType::Float),
            Column::new("windows", ColumnType::Int),
        ]),
    )?;
    // Secondary indexes over the columns the Q&A and recommender query
    // shapes filter, join, and order on. Maintained incrementally on every
    // insert; the planner picks among them by estimated cost.
    db.create_index("ix_datasets_id", "datasets", &["id"])?;
    db.create_index("ix_datasets_domain", "datasets", &["domain"])?;
    db.create_index("ix_methods_name", "methods", &["name"])?;
    db.create_index("ix_results_method", "results", &["method"])?;
    db.create_index("ix_results_dataset", "results", &["dataset_id", "horizon"])?;
    db.create_index("ix_results_horizon", "results", &["horizon"])?;
    db.create_index("ix_results_mae", "results", &["mae"])?;
    Ok(())
}

/// Inserts a dataset meta-information row.
pub fn insert_dataset(db: &mut Database, row: &DatasetRow) -> Result<(), DbError> {
    db.insert_row(
        "datasets",
        vec![
            Value::Text(row.id.clone()),
            Value::Text(row.domain.clone()),
            Value::Int(row.length),
            Value::Text(row.frequency.clone()),
            Value::Int(row.channels),
            Value::Bool(row.channels > 1),
            Value::Float(row.seasonality),
            Value::Float(row.trend),
            Value::Float(row.transition),
            Value::Float(row.shifting),
            Value::Float(row.stationarity),
            Value::Float(row.correlation),
            Value::Int(row.period),
        ],
    )
}

/// Inserts a method meta-information row.
pub fn insert_method(db: &mut Database, row: &MethodRow) -> Result<(), DbError> {
    db.insert_row(
        "methods",
        vec![
            Value::Text(row.name.clone()),
            Value::Text(row.family.clone()),
            Value::Text(row.description.clone()),
        ],
    )
}

/// Inserts a benchmark result row.
pub fn insert_result(db: &mut Database, row: &ResultRow) -> Result<(), DbError> {
    db.insert_row(
        "results",
        vec![
            Value::Text(row.dataset_id.clone()),
            Value::Text(row.method.clone()),
            Value::Text(row.strategy.clone()),
            Value::Int(row.horizon),
            opt(row.mae),
            opt(row.mse),
            opt(row.rmse),
            opt(row.smape),
            opt(row.mase),
            opt(row.r2),
            Value::Float(row.runtime_ms),
            Value::Int(row.windows),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        create_knowledge_schema(&mut db).unwrap();
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: "web_0001".into(),
                domain: "web".into(),
                length: 400,
                frequency: "daily".into(),
                channels: 1,
                seasonality: 0.8,
                trend: 0.7,
                transition: 0.1,
                shifting: 0.4,
                stationarity: 0.2,
                correlation: 0.0,
                period: 7,
            },
        )
        .unwrap();
        insert_method(
            &mut db,
            &MethodRow {
                name: "theta".into(),
                family: "statistical".into(),
                description: "the Theta method".into(),
            },
        )
        .unwrap();
        insert_result(
            &mut db,
            &ResultRow {
                dataset_id: "web_0001".into(),
                method: "theta".into(),
                strategy: "rolling".into(),
                horizon: 96,
                mae: Some(1.5),
                mse: Some(4.0),
                rmse: Some(2.0),
                smape: Some(12.0),
                mase: Some(0.8),
                r2: None,
                runtime_ms: 3.5,
                windows: 4,
            },
        )
        .unwrap();
        db
    }

    #[test]
    fn schema_supports_paper_style_question() {
        let db = sample_db();
        // "Top methods (by MAE) for long-term forecasting on datasets with
        // trends" — the Figure 5 query shape.
        let r = db
            .query(
                "SELECT r.method, AVG(r.mae) AS mean_mae FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE r.horizon >= 96 AND d.trend >= 0.6 \
                 GROUP BY r.method ORDER BY mean_mae LIMIT 8",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Text("theta".into()));
        assert_eq!(r.rows[0][1], Value::Float(1.5));
    }

    #[test]
    fn multivariate_flag_is_derived_from_channels() {
        let mut db = Database::new();
        create_knowledge_schema(&mut db).unwrap();
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: "mv".into(),
                domain: "traffic".into(),
                length: 100,
                frequency: "hourly".into(),
                channels: 4,
                seasonality: 0.5,
                trend: 0.1,
                transition: 0.1,
                shifting: 0.1,
                stationarity: 0.9,
                correlation: 0.7,
                period: 24,
            },
        )
        .unwrap();
        let r = db.query("SELECT multivariate FROM datasets WHERE id = 'mv'").unwrap();
        assert_eq!(r.rows[0][0], Value::Bool(true));
    }

    #[test]
    fn missing_metrics_store_as_null() {
        let db = sample_db();
        let r = db.query("SELECT r2 FROM results").unwrap();
        assert!(r.rows[0][0].is_null());
        let r = db.query("SELECT COUNT(r2) FROM results").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0), "COUNT skips NULLs");
    }

    #[test]
    fn duplicate_schema_creation_fails_cleanly() {
        let mut db = Database::new();
        create_knowledge_schema(&mut db).unwrap();
        assert!(matches!(
            create_knowledge_schema(&mut db),
            Err(DbError::DuplicateTable { .. })
        ));
    }
}
