//! Typed secondary indexes.
//!
//! An [`Index`] maps a tuple of column values — ordered by
//! [`Value::order_key`], so NULLs, NaNs, and cross-type tuples sort exactly
//! like `ORDER BY` does — to the ascending row ids that carry that tuple.
//! Multi-column indexes support *prefix* access: an equality prefix plus an
//! optional range on the next column, walked forward or backward.
//!
//! Two contracts matter for the planner's bit-identical-results guarantee:
//!
//! 1. **Superset pruning.** `order_key` equality is coarser than SQL
//!    equality (`Int(2)` equals `Float(2.0)`, `NaN` equals `NaN`), so a
//!    seek returns a *superset* of the SQL-matching rows. The executor
//!    always re-applies the full predicate; the index only prunes.
//! 2. **Row-id tie order.** Ids are appended in insertion order, so each
//!    key's id list is ascending. A forward (or per-key, in reverse) walk
//!    therefore reproduces the stable-sort tie order of the scan path.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Lexicographic [`Value::order_key`] comparison of two value tuples;
/// shorter tuples sort before longer ones sharing their prefix.
// lint: hot(runs per tree-node comparison on every index seek and per entry on range walks; must stay allocation-free)
pub(crate) fn cmp_values(a: &[Value], b: &[Value]) -> Ordering {
    let mut i = 0;
    while i < a.len() && i < b.len() {
        let ord = a[i].order_key(&b[i]);
        if ord != Ordering::Equal {
            return ord;
        }
        i += 1;
    }
    a.len().cmp(&b.len())
}

/// An owned index key: a tuple of column values totally ordered by
/// [`cmp_values`]. Reusable as a probe scratch buffer (`clear` + `push`
/// keep the allocation).
#[derive(Debug, Clone, Default)]
pub struct IndexKey {
    values: Vec<Value>,
}

impl IndexKey {
    /// Creates an empty key.
    pub fn new() -> IndexKey {
        IndexKey { values: Vec::new() }
    }

    /// Creates a key from owned values.
    pub fn from_values(values: Vec<Value>) -> IndexKey {
        IndexKey { values }
    }

    /// Drops all components, keeping the allocation (probe-scratch reuse).
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Appends one component.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// The key's components.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the key has no components.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl PartialEq for IndexKey {
    fn eq(&self, other: &IndexKey) -> bool {
        cmp_values(&self.values, &other.values) == Ordering::Equal
    }
}

// `cmp_values` is a total order (order_key is total per column), so the
// reflexive/symmetric/transitive requirements hold even for NaN-bearing
// keys — `total_cmp` calls a NaN equal to itself.
impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &IndexKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &IndexKey) -> Ordering {
        cmp_values(&self.values, &other.values)
    }
}

/// A secondary index over one table's columns.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    table: String,
    columns: Vec<String>,
    positions: Vec<usize>,
    map: BTreeMap<IndexKey, Vec<usize>>,
}

impl Index {
    /// Creates an empty index over `columns` (schema `positions`) of
    /// `table`. Names are expected lowercased by the caller.
    pub(crate) fn new(
        name: String,
        table: String,
        columns: Vec<String>,
        positions: Vec<usize>,
    ) -> Index {
        Index { name, table, columns, positions, map: BTreeMap::new() }
    }

    /// Index name (lowercased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed table name (lowercased).
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Indexed column names in key order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Schema positions of the key columns, in key order.
    pub(crate) fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of key columns.
    pub fn width(&self) -> usize {
        self.positions.len()
    }

    /// Number of distinct keys (the planner's distinct-count estimate for
    /// the leading column, exact for single-column indexes).
    pub(crate) fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Smallest key, when the index is non-empty (planner min statistic).
    pub(crate) fn first_key(&self) -> Option<&IndexKey> {
        self.map.keys().next()
    }

    /// Largest key, when the index is non-empty (planner max statistic).
    pub(crate) fn last_key(&self) -> Option<&IndexKey> {
        self.map.keys().next_back()
    }

    /// Registers `row` (stored at `row_id`) in the index. Called in
    /// insertion order, so each key's id list stays ascending.
    pub(crate) fn insert_row(&mut self, row_id: usize, row: &[Value]) {
        let key =
            IndexKey::from_values(self.positions.iter().map(|&p| row[p].clone()).collect());
        self.map.entry(key).or_default().push(row_id);
    }

    /// Equality probe: appends the row ids whose key starts with `key`
    /// (all components when `key` is full-width) to `out`, in ascending
    /// row-id order. `out` is cleared first; capacity is reused across
    /// probes.
    // lint: hot(join probes run once per driving row; the seek and id copy must not allocate per probe)
    pub fn probe_into(&self, key: &IndexKey, out: &mut Vec<usize>) {
        out.clear();
        if key.len() == self.width() {
            if let Some(ids) = self.map.get(key) {
                out.extend_from_slice(ids);
            }
            return;
        }
        self.collect_range(key, key.len(), None, None, false, out);
        // Prefix probes span several keys; per-key runs are ascending but
        // the concatenation is not. Ids are unique, so unstable is exact.
        out.sort_unstable();
    }

    /// Ordered range walk: appends row ids for keys whose first
    /// `prefix_len` components equal `start`'s, with the component at
    /// `prefix_len` further constrained by `lo`/`hi` (bound value,
    /// inclusive flag), to `out` in index-key order (reversed key order
    /// when `desc`; ids within one key always ascend). `start` doubles as
    /// the seek position: when `lo` is given, the caller pushes the bound
    /// as component `prefix_len` so the walk starts at the range's floor.
    // lint: hot(the per-entry bound checks of every index range scan; pruning wins vanish if this allocates per key)
    pub fn collect_range(
        &self,
        start: &IndexKey,
        prefix_len: usize,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
        desc: bool,
        out: &mut Vec<usize>,
    ) {
        let prefix = &start.values()[..prefix_len];
        // Collected per-key id runs for the descending replay; forward
        // walks extend `out` directly.
        let mut rev_groups: Vec<&[usize]> = Vec::new();
        for (key, ids) in self.map.range((Bound::Included(start), Bound::Unbounded)) {
            let kv = key.values();
            if cmp_values(&kv[..prefix_len.min(kv.len())], prefix) != Ordering::Equal {
                break;
            }
            if prefix_len < kv.len() {
                let v = &kv[prefix_len];
                if let Some((bound, inclusive)) = lo {
                    match v.order_key(bound) {
                        Ordering::Less => continue,
                        Ordering::Equal if !inclusive => continue,
                        _ => {}
                    }
                }
                if let Some((bound, inclusive)) = hi {
                    match v.order_key(bound) {
                        Ordering::Greater => break,
                        Ordering::Equal if !inclusive => break,
                        _ => {}
                    }
                }
            }
            if desc {
                rev_groups.push(ids.as_slice());
            } else {
                out.extend_from_slice(ids);
            }
        }
        if desc {
            for ids in rev_groups.iter().rev() {
                out.extend_from_slice(ids);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ix() -> Index {
        // Key: (method TEXT, horizon INT) over rows laid out as
        // [method, horizon, mae].
        let mut ix = Index::new(
            "ix_t".into(),
            "t".into(),
            vec!["method".into(), "horizon".into()],
            vec![0, 1],
        );
        let rows = [
            ("naive", 24, 1.0),
            ("theta", 24, 2.0),
            ("naive", 96, 3.0),
            ("naive", 24, 4.0),
            ("theta", 96, 5.0),
        ];
        for (i, (m, h, mae)) in rows.iter().enumerate() {
            ix.insert_row(i, &[Value::from(*m), Value::Int(*h), Value::Float(*mae)]);
        }
        ix
    }

    #[test]
    fn full_key_probe_returns_ascending_ids() {
        let ix = ix();
        let key = IndexKey::from_values(vec![Value::from("naive"), Value::Int(24)]);
        let mut out = Vec::new();
        ix.probe_into(&key, &mut out);
        assert_eq!(out, vec![0, 3]);
    }

    #[test]
    fn prefix_probe_sorts_across_keys() {
        let ix = ix();
        let key = IndexKey::from_values(vec![Value::from("naive")]);
        let mut out = Vec::new();
        ix.probe_into(&key, &mut out);
        assert_eq!(out, vec![0, 2, 3], "ids across (naive,24) and (naive,96) re-sorted");
    }

    #[test]
    fn range_walk_orders_by_key_and_reverses_key_groups() {
        let ix = ix();
        // All of method = 'naive', ordered by horizon.
        let start = IndexKey::from_values(vec![Value::from("naive")]);
        let mut out = Vec::new();
        ix.collect_range(&start, 1, None, None, false, &mut out);
        assert_eq!(out, vec![0, 3, 2], "(24: ids 0,3) then (96: id 2)");
        out.clear();
        ix.collect_range(&start, 1, None, None, true, &mut out);
        assert_eq!(out, vec![2, 0, 3], "descending keys, ascending ids within a key");
    }

    #[test]
    fn range_bounds_clip_the_walk() {
        // horizon >= 90 over every method: prefix empty, bound on col 0
        // (single-column view: build a horizon-only index)
        let mut hix =
            Index::new("ix_h".into(), "t".into(), vec!["horizon".into()], vec![1]);
        for (i, h) in [24, 24, 96, 24, 96].iter().enumerate() {
            hix.insert_row(i, &[Value::Null, Value::Int(*h), Value::Null]);
        }
        let start = IndexKey::from_values(vec![Value::Int(90)]);
        let mut out = Vec::new();
        hix.collect_range(&start, 0, Some((&Value::Int(90), true)), None, false, &mut out);
        assert_eq!(out, vec![2, 4]);
        // Exclusive upper bound stops before the boundary key.
        let start = IndexKey::new();
        out.clear();
        hix.collect_range(&start, 0, None, Some((&Value::Int(96), false)), false, &mut out);
        assert_eq!(out, vec![0, 1, 3]);
    }

    #[test]
    fn nan_keys_group_and_order_deterministically() {
        let mut ix = Index::new("ix_m".into(), "t".into(), vec!["mae".into()], vec![0]);
        for (i, v) in
            [Value::Float(f64::NAN), Value::Float(1.0), Value::Float(f64::NAN), Value::Null]
                .iter()
                .enumerate()
        {
            ix.insert_row(i, std::slice::from_ref(v));
        }
        assert_eq!(ix.key_count(), 3, "both NaNs share one key; NULL is its own");
        let key = IndexKey::from_values(vec![Value::Float(f64::NAN)]);
        let mut out = Vec::new();
        ix.probe_into(&key, &mut out);
        assert_eq!(out, vec![0, 2]);
        // Full ascending walk: NULL first, then 1.0, then NaN last.
        let start = IndexKey::new();
        out.clear();
        ix.collect_range(&start, 0, None, None, false, &mut out);
        assert_eq!(out, vec![3, 1, 0, 2]);
    }

    #[test]
    fn key_equality_follows_order_key() {
        let a = IndexKey::from_values(vec![Value::Int(2)]);
        let b = IndexKey::from_values(vec![Value::Float(2.0)]);
        assert_eq!(a, b, "cross-type numeric equality, same as ORDER BY");
        let shorter = IndexKey::from_values(vec![Value::Int(2)]);
        let longer = IndexKey::from_values(vec![Value::Int(2), Value::Int(0)]);
        assert!(shorter < longer, "prefix sorts first");
    }
}
