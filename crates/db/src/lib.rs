//! Embedded SQL engine backing the EasyTime benchmark knowledge base.
//!
//! The Q&A workflow (paper §II-D, Figure 3) generates SQL from natural
//! language, *verifies* it, executes it against "the comprehensive knowledge
//! base", and renders the results. That requires an actual SQL surface; this
//! crate provides one, written from scratch on the approved dependency set:
//!
//! * [`lexer`] / [`parser`] — SQL tokenization and a recursive-descent
//!   parser producing a typed [`ast`].
//! * [`executor`] — evaluation of `SELECT` (projection, `WHERE`, inner
//!   `JOIN`, `GROUP BY` + aggregates, `HAVING`, `ORDER BY`, `LIMIT`,
//!   `DISTINCT`), `INSERT`, and `CREATE TABLE`. Two paths share one
//!   finisher: a naive scan oracle and a planned volcano operator chain.
//! * [`index`] — typed secondary B-tree indexes (single- and multi-column,
//!   ordered by `Value::order_key`) maintained on every insert.
//! * `plan` / `stats` / `iter` (internal) — the cost-based planner:
//!   per-table statistics, selectivity-costed access-path and join-strategy
//!   choice, sort elision onto index order, and a deterministic plan
//!   explain surfaced via [`Database::explain`].
//! * [`verify`] — the *verification step* of Figure 3: statements are
//!   parsed and schema-checked against the catalog before execution, and
//!   the Q&A path additionally restricts statements to read-only `SELECT`.
//! * [`knowledge`] — the benchmark-knowledge schema (datasets, methods,
//!   results) shared by the recommender and the Q&A module.
//!
//! The dialect is deliberately small but genuine: every query the NL2SQL
//! module can generate round-trips through this parser and executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod database;
pub mod error;
pub mod executor;
pub mod index;
mod iter;
pub mod knowledge;
pub mod lexer;
pub mod parser;
mod plan;
pub mod schema;
mod stats;
pub mod value;
pub mod verify;

pub use database::{Database, QueryResult};
pub use error::DbError;
pub use schema::{Column, ColumnType, Schema};
pub use value::Value;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DbError>;
