//! Proof that steady-state embedding is allocation-free.
//!
//! A counting global allocator wraps the system allocator and a fitted
//! kernel-feature embedder (`use_stats: false` — the statistical features
//! route through the corpus characteristic extractor, which allocates by
//! design) embeds the same series repeatedly through
//! `Embedder::embed_into` with one `EmbedScratch` and one output buffer.
//! After a warm-up pass grows the buffers to capacity, N embeddings and
//! 10·N embeddings must cost the *same* number of allocations (zero per
//! additional series): the z-normalization buffer and the feature vector
//! are reused, and the convolution kernel works entirely in registers.
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this test binary opts back in locally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use easytime_data::{Frequency, TimeSeries};
use easytime_repr::{EmbedScratch, Embedder, EmbedderConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of `n` embeddings of `series`, minimized over several
/// repeats: the embedding loop's own count is deterministic, while any
/// harness threads sharing the process allocator can only *add* strays,
/// so the minimum converges to the true per-loop cost.
fn measured_embeds(embedder: &Embedder, series: &TimeSeries, n: usize) -> u64 {
    let mut scratch = EmbedScratch::new();
    let mut out = Vec::new();
    // Warm-up: grow both buffers to capacity before counting.
    embedder.embed_into(series, &mut scratch, &mut out);
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..n {
            embedder.embed_into(series, &mut scratch, &mut out);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(out.len(), embedder.dim());
        assert!(out.iter().all(|v| v.is_finite()));
        min = min.min(after - before);
    }
    min
}

// One test function only: a second concurrently-running test would
// allocate during the measurement window and make the count flaky.
#[test]
fn steady_state_embedding_is_allocation_free() {
    let values: Vec<f64> = (0..512)
        .map(|t| {
            let t = t as f64;
            10.0 + 0.02 * t + 3.0 * (t / 12.0).sin()
        })
        .collect();
    let series = TimeSeries::new("alloc", values, Frequency::Monthly).unwrap();
    let mut embedder =
        Embedder::new(EmbedderConfig { num_kernels: 48, use_stats: false, seed: 42 });
    embedder.fit(std::slice::from_ref(&series));

    let with_10 = measured_embeds(&embedder, &series, 10);
    let with_100 = measured_embeds(&embedder, &series, 100);
    assert_eq!(
        with_10, with_100,
        "90 extra warm embeddings must not allocate: 10 embeddings cost {with_10} \
         allocations, 100 cost {with_100}"
    );
}
