//! The combined embedder: kernel features + canonical features with
//! corpus-fitted per-dimension normalization.
//!
//! Mirrors the paper's offline/online split (§II-C): [`Embedder::fit`] runs
//! once over the offline pretraining corpus (computing the normalization
//! statistics), then [`Embedder::embed`] maps any new series into the same
//! space during online inference.

use crate::features::{extract_features_into, FEATURE_DIM};
use crate::rocket::RocketEncoder;
use easytime_data::TimeSeries;
use easytime_linalg::stats::{mean, std_dev};

/// Reusable working memory for repeated embedding.
///
/// Holds the z-normalization buffer the kernel transform writes into.
/// Create one per embedding loop (corpus fit, recommendation batch) and
/// pass it to [`Embedder::embed_into`]; once grown to capacity, the
/// kernel-feature path performs zero allocations per series.
#[derive(Debug, Clone, Default)]
pub struct EmbedScratch {
    /// Z-normalized copy of the series consumed by the convolution sweep.
    z: Vec<f64>,
}

impl EmbedScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> EmbedScratch {
        EmbedScratch::default()
    }
}

/// Configuration of the embedder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbedderConfig {
    /// Number of random kernels (0 disables kernel features — used by the
    /// embedding ablation experiment A3).
    pub num_kernels: usize,
    /// Include the canonical statistical features (disabled by ablation A3).
    pub use_stats: bool,
    /// Seed for kernel generation.
    pub seed: u64,
}

impl Default for EmbedderConfig {
    /// 48 kernels (96 dims) + 16 canonical features: enough capacity to
    /// separate dynamics while keeping the classifier's input dimension
    /// below typical corpus sizes (overfitting guard).
    fn default() -> Self {
        EmbedderConfig { num_kernels: 48, use_stats: true, seed: 42 }
    }
}

/// Maps series into a fixed-dimension embedding space.
#[derive(Debug, Clone)]
pub struct Embedder {
    rocket: Option<RocketEncoder>,
    config: EmbedderConfig,
    /// Per-dimension (mean, std) fitted on the corpus; `None` until fitted.
    norm: Option<Vec<(f64, f64)>>,
}

impl Embedder {
    /// Creates an unfitted embedder.
    ///
    /// # Panics
    /// Panics if the config disables both feature groups.
    pub fn new(config: EmbedderConfig) -> Embedder {
        assert!(
            config.num_kernels > 0 || config.use_stats,
            "embedder needs at least one feature group"
        );
        let rocket =
            (config.num_kernels > 0).then(|| RocketEncoder::new(config.num_kernels, config.seed));
        Embedder { rocket, config, norm: None }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.rocket.as_ref().map_or(0, RocketEncoder::dim)
            + if self.config.use_stats { FEATURE_DIM } else { 0 }
    }

    /// Raw (un-normalized) embedding of one series, appended to `out`.
    fn raw_embed_into(&self, series: &TimeSeries, scratch: &mut EmbedScratch, out: &mut Vec<f64>) {
        if let Some(rocket) = &self.rocket {
            rocket.transform_into(series.values(), &mut scratch.z, out);
        }
        if self.config.use_stats {
            extract_features_into(series.values(), series.frequency().default_period(), out);
        }
    }

    /// Offline phase: fits per-dimension normalization on a corpus and
    /// returns the normalized corpus embeddings (one per input series, in
    /// order).
    pub fn fit(&mut self, corpus: &[TimeSeries]) -> Vec<Vec<f64>> {
        let mut scratch = EmbedScratch::new();
        let raws: Vec<Vec<f64>> = corpus
            .iter()
            .map(|s| {
                let mut out = Vec::with_capacity(self.dim());
                self.raw_embed_into(s, &mut scratch, &mut out);
                out
            })
            .collect();
        let dim = self.dim();
        let mut norm = Vec::with_capacity(dim);
        for d in 0..dim {
            let column: Vec<f64> = raws.iter().map(|r| r[d]).collect();
            norm.push((mean(&column), std_dev(&column).max(1e-9)));
        }
        self.norm = Some(norm);
        let mut raws = raws;
        for r in &mut raws {
            self.normalize(r);
        }
        raws
    }

    fn normalize(&self, raw: &mut [f64]) {
        // lint: allow(panic) — normalize is private and only called after
        // fit has populated the normalization table.
        let norm = self.norm.as_ref().expect("embedder must be fitted");
        for (v, (mu, sigma)) in raw.iter_mut().zip(norm) {
            // Winsorize: a dimension that was near-constant on the corpus
            // has a tiny fitted sigma, and an out-of-corpus series would
            // otherwise map to an astronomically large z-score that
            // dominates every inner product downstream.
            *v = ((*v - mu) / sigma).clamp(-8.0, 8.0);
        }
    }

    /// Online phase: embeds a new series with the corpus-fitted
    /// normalization. Falls back to the raw embedding when unfitted (useful
    /// for similarity queries that only need relative geometry).
    ///
    /// Allocates the result (and a scratch) per call; loops should hold an
    /// [`EmbedScratch`] and an output buffer and call
    /// [`Embedder::embed_into`] instead.
    pub fn embed(&self, series: &TimeSeries) -> Vec<f64> {
        let mut scratch = EmbedScratch::new();
        let mut out = Vec::with_capacity(self.dim());
        self.embed_into(series, &mut scratch, &mut out);
        out
    }

    // lint: hot(steady-state embedding entry; allocation-free once buffers are warm, pinned by repr/tests/no_alloc_embed.rs)
    /// Embeds a series into `out` (cleared first), reusing `scratch`.
    ///
    /// With kernel-only features (`use_stats: false`) the steady state
    /// performs zero allocations once the buffers have grown to capacity —
    /// pinned by the counting-allocator test in `tests/no_alloc_embed.rs`.
    pub fn embed_into(&self, series: &TimeSeries, scratch: &mut EmbedScratch, out: &mut Vec<f64>) {
        out.clear();
        self.raw_embed_into(series, scratch, out);
        if self.norm.is_some() {
            self.normalize(out);
        }
    }

    /// Embeds a batch of series into one row-major `series.len() × dim`
    /// matrix appended to `out` (cleared first), reusing `scratch` across
    /// rows. This is the coalescing entry point for cross-request
    /// micro-batching: the serving engine stacks every queued embedding
    /// job here, then scores all rows with a single blocked matmul
    /// instead of one matvec per request.
    pub fn embed_batch_into(
        &self,
        batch: &[&TimeSeries],
        scratch: &mut EmbedScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(batch.len() * self.dim());
        for series in batch {
            let row_start = out.len();
            self.raw_embed_into(series, scratch, out);
            if self.norm.is_some() {
                self.normalize(&mut out[row_start..]);
            }
        }
    }

    /// True once [`Embedder::fit`] has run (test diagnostics).
    #[cfg(test)]
    pub(crate) fn is_fitted(&self) -> bool {
        self.norm.is_some()
    }
}

/// Cosine similarity between two embeddings (test diagnostics).
#[cfg(test)]
pub(crate) fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "embedding dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::synthetic::{domain_spec, generate};
    use easytime_data::{Domain, Frequency};
    use std::f64::consts::PI;

    fn series(name: &str, f: impl Fn(usize) -> f64, n: usize) -> TimeSeries {
        TimeSeries::new(name, (0..n).map(f).collect(), Frequency::Monthly).unwrap()
    }

    fn corpus() -> Vec<TimeSeries> {
        let mut out = Vec::new();
        for (i, domain) in [Domain::Nature, Domain::Stock, Domain::Web].iter().enumerate() {
            for v in 0..4 {
                let spec = domain_spec(*domain, v, 200);
                out.push(generate(format!("c{i}_{v}"), &spec, (i * 10 + v) as u64).unwrap());
            }
        }
        out
    }

    #[test]
    fn fit_normalizes_corpus_dimensions() {
        let mut emb = Embedder::new(EmbedderConfig { num_kernels: 16, use_stats: true, seed: 1 });
        let corpus = corpus();
        let embedded = emb.fit(&corpus);
        assert!(emb.is_fitted());
        assert_eq!(embedded.len(), corpus.len());
        assert_eq!(embedded[0].len(), emb.dim());
        // Each dimension is approximately zero-mean after normalization.
        for d in 0..emb.dim() {
            let col: Vec<f64> = embedded.iter().map(|e| e[d]).collect();
            // Near-constant dimensions have their std clamped to 1e-9,
            // which amplifies rounding residue; allow that slack.
            assert!(mean(&col).abs() < 1e-3, "dim {d} mean {}", mean(&col));
        }
    }

    #[test]
    fn embedding_dim_matches_config() {
        let both = Embedder::new(EmbedderConfig { num_kernels: 8, use_stats: true, seed: 1 });
        assert_eq!(both.dim(), 16 + FEATURE_DIM);
        let rocket_only = Embedder::new(EmbedderConfig { num_kernels: 8, use_stats: false, seed: 1 });
        assert_eq!(rocket_only.dim(), 16);
        let stats_only = Embedder::new(EmbedderConfig { num_kernels: 0, use_stats: true, seed: 1 });
        assert_eq!(stats_only.dim(), FEATURE_DIM);
    }

    #[test]
    #[should_panic(expected = "at least one feature group")]
    fn empty_config_panics() {
        let _ = Embedder::new(EmbedderConfig { num_kernels: 0, use_stats: false, seed: 1 });
    }

    #[test]
    fn similar_series_are_more_cosine_similar() {
        let mut emb = Embedder::new(EmbedderConfig::default());
        let c = corpus();
        emb.fit(&c);
        let s12a = emb.embed(&series("a", |t| (2.0 * PI * t as f64 / 12.0).sin(), 240));
        let s12b = emb.embed(&series("b", |t| 1.1 * (2.0 * PI * t as f64 / 12.0).sin() + 3.0, 240));
        let trending = emb.embed(&series("t", |t| t as f64, 240));
        let sim_same = cosine_similarity(&s12a, &s12b);
        let sim_diff = cosine_similarity(&s12a, &trending);
        assert!(
            sim_same > sim_diff,
            "same dynamics {sim_same} should beat different dynamics {sim_diff}"
        );
    }

    #[test]
    fn out_of_corpus_series_cannot_explode_the_embedding() {
        // Fit on a homogeneous corpus (several near-constant dimensions),
        // then embed something wildly different: every coordinate must stay
        // within the winsorization bound.
        let mut emb = Embedder::new(EmbedderConfig { num_kernels: 24, use_stats: true, seed: 2 });
        let corpus: Vec<TimeSeries> =
            (0..8).map(|i| series("c", move |t| ((t + i) as f64 * 0.26).sin(), 200)).collect();
        emb.fit(&corpus);
        let alien = series("alien", |t| (t as f64).powf(1.5) * 1e3, 300);
        let e = emb.embed(&alien);
        assert!(
            e.iter().all(|v| v.abs() <= 8.0 + 1e-9),
            "max |z| = {}",
            e.iter().fold(0.0f64, |m, v| m.max(v.abs()))
        );
    }

    #[test]
    fn embedding_is_deterministic() {
        let mut a = Embedder::new(EmbedderConfig::default());
        let mut b = Embedder::new(EmbedderConfig::default());
        let c = corpus();
        let ea = a.fit(&c);
        let eb = b.fit(&c);
        assert_eq!(ea, eb);
    }

    #[test]
    fn batch_embedding_matches_per_series_rows() {
        let mut emb = Embedder::new(EmbedderConfig { num_kernels: 16, use_stats: true, seed: 9 });
        let c = corpus();
        emb.fit(&c);
        let batch: Vec<&TimeSeries> = c.iter().take(5).collect();
        let mut scratch = EmbedScratch::new();
        let mut flat = Vec::new();
        emb.embed_batch_into(&batch, &mut scratch, &mut flat);
        assert_eq!(flat.len(), 5 * emb.dim());
        for (i, s) in batch.iter().enumerate() {
            let row = &flat[i * emb.dim()..(i + 1) * emb.dim()];
            assert_eq!(row, emb.embed(s).as_slice(), "row {i} must match embed()");
        }
        // Empty batches are a no-op, and the buffer is cleared on entry.
        emb.embed_batch_into(&[], &mut scratch, &mut flat);
        assert!(flat.is_empty());
    }

    #[test]
    fn cosine_similarity_edge_cases() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }
}
