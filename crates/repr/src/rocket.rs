//! ROCKET-style random convolution kernel features.
//!
//! Each kernel is a short weight vector applied as a dilated 1-D
//! convolution over the z-normalized series; two pooled statistics are kept
//! per kernel: the proportion of positive values (PPV) and the maximum.
//! With a few hundred kernels this yields a strong generic representation
//! at a fraction of the cost of a learned encoder.

use easytime_linalg::kernels::conv_ppv_max;
use easytime_linalg::stats::{mean, std_dev};
use easytime_rng::StdRng;

/// One random convolution kernel.
#[derive(Debug, Clone, PartialEq)]
struct Kernel {
    weights: Vec<f64>,
    bias: f64,
    dilation: usize,
}

/// A bank of random convolution kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct RocketEncoder {
    kernels: Vec<Kernel>,
}

impl RocketEncoder {
    /// Creates `num_kernels` random kernels from `seed`. Kernel lengths are
    /// drawn from {7, 9, 11}; weights are centered Gaussians; dilations are
    /// powers of two up to 32.
    pub fn new(num_kernels: usize, seed: u64) -> RocketEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kernels = Vec::with_capacity(num_kernels);
        for _ in 0..num_kernels {
            let len = [7usize, 9, 11][rng.gen_range(0..3)];
            let mut weights: Vec<f64> = (0..len).map(|_| rng.normal()).collect();
            let m = mean(&weights);
            for w in &mut weights {
                *w -= m; // centering, as in the ROCKET paper
            }
            let bias = rng.gen_f64() * 2.0 - 1.0;
            let dilation = 1usize << rng.gen_range(0..6);
            kernels.push(Kernel { weights, bias, dilation });
        }
        RocketEncoder { kernels }
    }

    /// Number of output features (2 per kernel: PPV and max).
    pub fn dim(&self) -> usize {
        self.kernels.len() * 2
    }

    /// Transforms a series into kernel features.
    ///
    /// The input is z-normalized internally, so series level and scale do
    /// not leak into the representation. Allocates fresh buffers per call;
    /// hot paths should hold a scratch buffer and use
    /// [`RocketEncoder::transform_into`] instead.
    pub fn transform(&self, values: &[f64]) -> Vec<f64> {
        let mut scratch = Vec::new();
        let mut out = Vec::with_capacity(self.dim());
        self.transform_into(values, &mut scratch, &mut out);
        out
    }

    // lint: hot(kernel feature transform on the embedding path; scratch-reuse keeps the steady state allocation-free)
    /// Transforms a series into kernel features, appending them to `out`
    /// and reusing `scratch` for the z-normalized series.
    ///
    /// Once `scratch` and `out` have grown to capacity this performs zero
    /// allocations, which is what makes repeated embedding (corpus fits,
    /// online recommendation) allocation-free in the steady state. The
    /// produced features are bit-identical to [`RocketEncoder::transform`].
    pub fn transform_into(&self, values: &[f64], scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        let mu = mean(values);
        let sigma = std_dev(values).max(1e-9);
        scratch.clear();
        scratch.extend(values.iter().map(|v| (v - mu) / sigma));

        out.reserve(self.dim());
        for k in &self.kernels {
            // Short series (receptive field larger than the input) yield
            // the neutral (0, 0) feature pair from the kernel.
            let (ppv, max) = conv_ppv_max(scratch, &k.weights, k.bias, k.dilation);
            out.push(ppv);
            out.push(max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(n: usize, period: f64) -> Vec<f64> {
        (0..n).map(|t| (2.0 * PI * t as f64 / period).sin()).collect()
    }

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RocketEncoder::new(64, 9);
        let b = RocketEncoder::new(64, 9);
        assert_eq!(a, b);
        let c = RocketEncoder::new(64, 10);
        assert_ne!(a, c);
        assert_eq!(a.dim(), 128);
    }

    #[test]
    fn features_are_scale_and_level_invariant() {
        let enc = RocketEncoder::new(32, 7);
        let base = sine(200, 12.0);
        let scaled: Vec<f64> = base.iter().map(|v| 100.0 + 50.0 * v).collect();
        let fa = enc.transform(&base);
        let fb = enc.transform(&scaled);
        assert!(euclid(&fa, &fb) < 1e-9, "z-normalization should remove scale/level");
    }

    #[test]
    fn similar_dynamics_embed_closer_than_different_dynamics() {
        let enc = RocketEncoder::new(128, 3);
        let sin12a = enc.transform(&sine(240, 12.0));
        let sin12b = enc.transform(
            &sine(240, 12.0).iter().map(|v| v + 0.05).collect::<Vec<_>>(),
        );
        // A trending line has very different dynamics.
        let line: Vec<f64> = (0..240).map(|t| t as f64).collect();
        let ftrend = enc.transform(&line);
        let d_same = euclid(&sin12a, &sin12b);
        let d_diff = euclid(&sin12a, &ftrend);
        assert!(
            d_same < d_diff,
            "same-dynamics distance {d_same} should be below cross-dynamics {d_diff}"
        );
    }

    #[test]
    fn ppv_features_are_probabilities() {
        let enc = RocketEncoder::new(64, 21);
        let f = enc.transform(&sine(300, 24.0));
        for (i, chunk) in f.chunks(2).enumerate() {
            assert!(
                (0.0..=1.0).contains(&chunk[0]),
                "kernel {i} PPV {} out of range",
                chunk[0]
            );
            assert!(chunk[1].is_finite());
        }
    }

    #[test]
    fn transform_into_is_bit_identical_and_reuses_buffers() {
        let enc = RocketEncoder::new(48, 13);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for n in [3usize, 40, 240] {
            let xs = sine(n, 12.0);
            out.clear();
            enc.transform_into(&xs, &mut scratch, &mut out);
            let fresh = enc.transform(&xs);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn short_series_get_neutral_features_not_panics() {
        let enc = RocketEncoder::new(32, 5);
        let f = enc.transform(&[1.0, 2.0, 3.0]);
        assert_eq!(f.len(), enc.dim());
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
