//! Canonical statistical feature vector.
//!
//! A compact, interpretable complement to the random-kernel features:
//! distribution moments, autocorrelation structure, spectral entropy, and
//! the six TFB characteristics. These are the features a practitioner
//! would recognize from catch22/tsfeatures-style toolkits.

use easytime_data::characteristics::extract_values;
use easytime_linalg::stats::{acf, kurtosis, mean, skewness, std_dev};

/// Number of features produced by [`extract_features`].
pub(crate) const FEATURE_DIM: usize = 16;

/// Names of the features, aligned with [`extract_features`] output (test
/// diagnostics).
#[cfg(test)]
pub(crate) const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "cv",
    "skewness",
    "kurtosis",
    "acf1",
    "acf2",
    "acf_period",
    "diff_acf1",
    "turning_rate",
    "spectral_entropy_proxy",
    "seasonality",
    "trend",
    "transition",
    "shifting",
    "stationarity",
    "log_length",
    "period_norm",
];

/// Extracts the canonical feature vector from raw series values.
///
/// All features are level/scale-free (the coefficient of variation is the
/// only one that sees the mean, deliberately), so they compose with the
/// z-normalized kernel features.
pub fn extract_features(values: &[f64], period_hint: Option<usize>) -> Vec<f64> {
    let mut out = Vec::with_capacity(FEATURE_DIM);
    extract_features_into(values, period_hint, &mut out);
    out
}

/// Appends the canonical feature vector to `out` without allocating the
/// result vector (internal characteristic extraction still allocates; the
/// kernel-feature path is the one pinned allocation-free).
pub(crate) fn extract_features_into(values: &[f64], period_hint: Option<usize>, out: &mut Vec<f64>) {
    let n = values.len();
    let mu = mean(values);
    let sigma = std_dev(values);
    let cv = if mu.abs() > 1e-9 { (sigma / mu.abs()).min(10.0) } else { 0.0 };

    let chars = extract_values(values, period_hint);
    let max_lag = 24.min(n.saturating_sub(1));
    let a = acf(values, max_lag);
    let acf1 = a.get(1).copied().unwrap_or(0.0);
    let acf2 = a.get(2).copied().unwrap_or(0.0);
    let acf_period = if chars.period >= 1 && chars.period < a.len() {
        a[chars.period]
    } else {
        0.0
    };

    // ACF(1) of first differences: separates smooth from noisy dynamics.
    let diffs: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
    let diff_acf1 = if diffs.len() > 2 { acf(&diffs, 1)[1] } else { 0.0 };

    // Turning-point rate: fraction of interior points that are local
    // extrema (2/3 for white noise, lower for smooth series).
    let mut turns = 0usize;
    for w in values.windows(3) {
        if (w[1] > w[0] && w[1] > w[2]) || (w[1] < w[0] && w[1] < w[2]) {
            turns += 1;
        }
    }
    let turning_rate = if n > 2 { turns as f64 / (n - 2) as f64 } else { 0.0 };

    // Cheap spectral-entropy proxy: 1 − normalized low-lag ACF energy.
    let energy: f64 = a.iter().skip(1).map(|v| v * v).sum::<f64>() / max_lag.max(1) as f64;
    let spectral = (1.0 - energy).clamp(0.0, 1.0);

    out.extend_from_slice(&[
        cv,
        skewness(values).clamp(-10.0, 10.0),
        kurtosis(values).clamp(-10.0, 10.0),
        acf1,
        acf2,
        acf_period,
        diff_acf1,
        turning_rate,
        spectral,
        chars.seasonality,
        chars.trend,
        chars.transition,
        chars.shifting,
        chars.stationarity,
        (n as f64).ln(),
        (chars.period as f64 / 64.0).min(2.0),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn lcg_noise(n: usize) -> Vec<f64> {
        let mut state: u64 = 0x1234_5678_9ABC_DEF0;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn dimension_and_names_agree() {
        let f = extract_features(&lcg_noise(100), None);
        assert_eq!(f.len(), FEATURE_DIM);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn white_noise_has_high_turning_rate_low_acf() {
        let f = extract_features(&lcg_noise(400), None);
        let acf1 = f[3];
        let turning = f[7];
        assert!(acf1.abs() < 0.2, "acf1 {acf1}");
        assert!(turning > 0.5, "turning rate {turning}");
    }

    #[test]
    fn smooth_seasonal_series_has_low_turning_high_period_acf() {
        let xs: Vec<f64> = (0..240).map(|t| (2.0 * PI * t as f64 / 24.0).sin()).collect();
        let f = extract_features(&xs, None);
        let acf_period = f[5];
        let turning = f[7];
        let seasonality = f[9];
        assert!(acf_period > 0.8, "acf at period {acf_period}");
        assert!(turning < 0.2, "turning rate {turning}");
        assert!(seasonality > 0.8, "seasonality {seasonality}");
    }

    #[test]
    fn features_distinguish_trend_from_noise() {
        let trend: Vec<f64> = (0..200).map(|t| t as f64 * 0.5).collect();
        let ft = extract_features(&trend, None);
        let fn_ = extract_features(&lcg_noise(200), None);
        assert!(ft[10] > 0.9, "trend feature {}", ft[10]);
        assert!(fn_[10] < 0.3, "noise trend feature {}", fn_[10]);
        assert!(ft[13] < fn_[13], "trend should be less stationary than noise");
    }

    #[test]
    fn constant_series_is_handled() {
        let f = extract_features(&[5.0; 50], None);
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
