//! Time-series representation learning for EasyTime's Automated Ensemble.
//!
//! The paper (§II-C) pretrains TS2Vec, an unsupervised contrastive
//! representation model, to "extract features of time series" that the
//! method-recommendation classifier consumes. Training TS2Vec requires a
//! GPU-scale PyTorch stack; per the reproduction rules it is substituted by
//! a training-free encoder with the same contract — a fixed-dimension
//! vector whose geometry clusters series with similar dynamics:
//!
//! * [`rocket`] — ROCKET-style random dilated convolution kernels with
//!   PPV/max pooling (Dempster et al.), an established stand-in for learned
//!   TS representations.
//! * [`features`] — a canonical statistical feature vector (moments,
//!   autocorrelation structure, and the six TFB characteristics).
//! * [`encoder`] — the [`encoder::Embedder`] that concatenates
//!   both, z-normalized per dimension with statistics fitted on the
//!   *offline pretraining corpus* (mirroring the paper's offline phase).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod features;
pub mod rocket;

pub use encoder::{EmbedScratch, Embedder, EmbedderConfig};
