//! Seedable, std-only pseudo-random number generation for EasyTime.
//!
//! This crate replaces the external `rand` dependency so the workspace
//! builds hermetically (no network, no registry). It provides two small,
//! well-known generators:
//!
//! * [`SplitMix64`] — a 64-bit mixer used to expand a single `u64` seed
//!   into generator state (and to derive independent streams),
//! * [`Xoshiro256pp`] — xoshiro256++, the general-purpose generator used
//!   everywhere randomness is needed (also exported as [`StdRng`] so call
//!   sites read like the `rand` idiom they replaced).
//!
//! Every generator is deterministic from its seed: identical seeds produce
//! identical sequences on every platform, which is what makes the synthetic
//! benchmark corpus and all randomized tests reproducible.
//!
//! The API is intentionally tiny — exactly what the workspace uses:
//! uniform `u64`/`f64`, bounded ranges, Fisher–Yates shuffle, and a
//! Box–Muller standard normal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// SplitMix64: a fast 64-bit mixing generator.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256pp`], following the seeding procedure recommended by the
/// xoshiro authors. Usable on its own when a minimal generator suffices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's standard pseudo-random generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality for
/// non-cryptographic use. Seeded from a single `u64` via [`SplitMix64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default generator (replaces `rand::rngs::StdRng`).
pub type StdRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with [`SplitMix64`]. Identical seeds yield identical sequences.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp { s: [mix.next_u64(), mix.next_u64(), mix.next_u64(), mix.next_u64()] }
    }

    /// Derives an independent stream for `index` from this generator's
    /// seed material without advancing `self`. Useful for giving each
    /// worker/series its own generator from one master seed.
    pub fn derive(&self, index: u64) -> Xoshiro256pp {
        let mut mix = SplitMix64::new(
            self.s[0] ^ self.s[2].rotate_left(17) ^ index.wrapping_mul(0xD134_2543_DE82_EF95),
        );
        Xoshiro256pp { s: [mix.next_u64(), mix.next_u64(), mix.next_u64(), mix.next_u64()] }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// Uses rejection sampling to avoid modulo bias. An empty range
    /// returns `range.start` rather than panicking (library code must not
    /// panic under the repo's lint rules).
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        let span = (range.end - range.start) as u64;
        // Rejection zone: the largest multiple of `span` that fits in u64.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }

    /// Uniform `f64` in `[low, high)` (returns `low` when the interval is
    /// empty or inverted).
    pub fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        if !(high > low) {
            return low;
        }
        low + (high - low) * self.gen_f64()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Standard normal draw (mean 0, variance 1) via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.gen_f64();
            let u2 = self.gen_f64();
            if u1 > 1e-12 {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn f64_draws_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(10..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
        // Degenerate ranges do not panic.
        assert_eq!(rng.gen_range(4..4), 4);
        assert_eq!(rng.gen_range(9..2), 9);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move elements");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn derive_yields_independent_streams() {
        let base = StdRng::seed_from_u64(9);
        let mut a = base.derive(0);
        let mut b = base.derive(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        let mut a2 = base.derive(0);
        let xs2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_eq!(xs, xs2, "derive must be deterministic");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(23);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
