//! Seeded property tests for the blocked compute kernels.
//!
//! Two properties, checked across many deterministic randomized cases:
//!
//! 1. **Agreement** — every blocked/multi-accumulator kernel matches a
//!    naive textbook reference within `1e-12` *relative* error, including
//!    on degenerate shapes (`0×n`, `1×1`, `n×1`) and shapes that are not
//!    multiples of the blocking factors.
//! 2. **Determinism** — repeated evaluation is byte-identical: the fixed
//!    4-lane reassociation order makes results independent of when or how
//!    often a kernel runs.

use easytime_linalg::kernels;
use easytime_rng::StdRng;

const CASES: u64 = 48;
const MASTER_SEED: u64 = 0x6E57_AB1E;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

fn fill(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range_f64(-10.0, 10.0)).collect()
}

fn assert_rel_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = g.abs().max(w.abs()).max(1.0);
        assert!(
            (g - w).abs() <= 1e-12 * scale,
            "{what}[{i}]: blocked {g} vs naive {w}"
        );
    }
}

// ---- naive textbook references ----

fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn naive_matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += aik * b[kk * n + j];
            }
        }
    }
    out
}

fn naive_gram(rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; cols * cols];
    for i in 0..cols {
        for j in 0..cols {
            let mut s = 0.0;
            for r in 0..rows {
                s += x[r * cols + i] * x[r * cols + j];
            }
            out[i * cols + j] = s;
        }
    }
    out
}

fn naive_conv_ppv_max(z: &[f64], w: &[f64], bias: f64, dilation: usize) -> (f64, f64) {
    let span = w.len().saturating_sub(1) * dilation;
    if z.len() <= span {
        return (0.0, 0.0);
    }
    let n_out = z.len() - span;
    let mut positive = 0usize;
    let mut max = f64::NEG_INFINITY;
    for t in 0..n_out {
        let mut acc = bias;
        for (tap, wv) in w.iter().enumerate() {
            acc += wv * z[t + tap * dilation];
        }
        if acc > 0.0 {
            positive += 1;
        }
        if acc > max {
            max = acc;
        }
    }
    (positive as f64 / n_out as f64, max)
}

// ---- agreement with the naive reference ----

#[test]
fn dot_matches_naive_on_all_tail_lengths() {
    for mut rng in cases() {
        // Cover every remainder class of the 4-lane chunking, plus longer
        // vectors.
        for len in [0usize, 1, 2, 3, 4, 5, 6, 7, rng.gen_range(8..200)] {
            let a = fill(&mut rng, len);
            let b = fill(&mut rng, len);
            assert_rel_close(&[kernels::dot(&a, &b)], &[naive_dot(&a, &b)], "dot");
        }
    }
}

#[test]
fn blocked_matmul_matches_naive_on_awkward_shapes() {
    for mut rng in cases() {
        let (m, k, n) = (rng.gen_range(0..9), rng.gen_range(0..9), rng.gen_range(0..9));
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut panel = Vec::new();
        let mut out = vec![0.0; m * n];
        kernels::matmul(m, k, n, &a, &b, &mut panel, &mut out);
        assert_rel_close(&out, &naive_matmul(m, k, n, &a, &b), "matmul");
    }
    // Shapes straddling the blocking factors (panels of 128 columns,
    // k-blocks of 256), checked once: a partial final block on both axes.
    let mut rng = StdRng::seed_from_u64(MASTER_SEED).derive(CASES);
    for (m, k, n) in [(3usize, 263usize, 133usize), (1, 1, 1), (0, 4, 5), (7, 1, 130)] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut panel = Vec::new();
        let mut out = vec![0.0; m * n];
        kernels::matmul(m, k, n, &a, &b, &mut panel, &mut out);
        assert_rel_close(&out, &naive_matmul(m, k, n, &a, &b), "matmul(block-straddling)");
    }
}

#[test]
fn packed_gram_matches_naive() {
    for mut rng in cases() {
        let (rows, cols) = (rng.gen_range(0..30), rng.gen_range(0..10));
        let x = fill(&mut rng, rows * cols);
        let mut packed = Vec::new();
        let mut out = vec![0.0; cols * cols];
        kernels::gram(rows, cols, &x, &mut packed, &mut out);
        assert_rel_close(&out, &naive_gram(rows, cols, &x), "gram");
    }
    // Ridge-fit-sized case: tall and skinny, rows not a lane multiple.
    let mut rng = StdRng::seed_from_u64(MASTER_SEED).derive(CASES + 1);
    let (rows, cols) = (479usize, 25usize);
    let x = fill(&mut rng, rows * cols);
    let mut packed = Vec::new();
    let mut out = vec![0.0; cols * cols];
    kernels::gram(rows, cols, &x, &mut packed, &mut out);
    assert_rel_close(&out, &naive_gram(rows, cols, &x), "gram(ridge-shaped)");
}

#[test]
fn fused_matvec_kernels_match_naive() {
    for mut rng in cases() {
        let (rows, cols) = (rng.gen_range(0..20), rng.gen_range(0..20));
        let a = fill(&mut rng, rows * cols);
        let v_cols = fill(&mut rng, cols);
        let v_rows = fill(&mut rng, rows);

        let mut mv = vec![0.0; rows];
        kernels::matvec(rows, cols, &a, &v_cols, &mut mv);
        let want_mv: Vec<f64> =
            (0..rows).map(|i| naive_dot(&a[i * cols..(i + 1) * cols], &v_cols)).collect();
        assert_rel_close(&mv, &want_mv, "matvec");

        let mut tmv = vec![0.0; cols];
        kernels::tr_matvec(rows, cols, &a, &v_rows, &mut tmv);
        let want_tmv: Vec<f64> = (0..cols)
            .map(|j| (0..rows).map(|i| a[i * cols + j] * v_rows[i]).sum())
            .collect();
        assert_rel_close(&tmv, &want_tmv, "tr_matvec");
    }
}

#[test]
fn tr_matmul_matches_naive_transpose_product() {
    for mut rng in cases() {
        let (m, n, p) = (rng.gen_range(0..14), rng.gen_range(0..7), rng.gen_range(0..7));
        let a = fill(&mut rng, m * n);
        let b = fill(&mut rng, m * p);
        let mut out = vec![0.0; n * p];
        kernels::tr_matmul(m, n, p, &a, &b, &mut out);
        // Naive aᵀ·b via an explicitly materialized transpose.
        let mut at = vec![0.0; n * m];
        for i in 0..m {
            for j in 0..n {
                at[j * m + i] = a[i * n + j];
            }
        }
        assert_rel_close(&out, &naive_matmul(n, m, p, &at, &b), "tr_matmul");
    }
}

#[test]
fn conv_ppv_max_matches_naive() {
    for mut rng in cases() {
        let z_len = rng.gen_range(0..120);
        let z = fill(&mut rng, z_len);
        let w_len = [7usize, 9, 11][rng.gen_range(0..3)];
        let w = fill(&mut rng, w_len);
        let bias = rng.gen_range_f64(-1.0, 1.0);
        let dilation = rng.gen_range(1..8);
        let (ppv, max) = kernels::conv_ppv_max(&z, &w, bias, dilation);
        let (nppv, nmax) = naive_conv_ppv_max(&z, &w, bias, dilation);
        // PPV is a count ratio — exact. Max selection order differs from
        // the naive scan only in reassociation-free comparisons — exact.
        assert_eq!(ppv.to_bits(), nppv.to_bits(), "ppv");
        assert_rel_close(&[max], &[nmax], "conv max");
    }
}

// ---- byte-identical determinism ----

#[test]
fn kernels_are_byte_identical_across_repeated_runs() {
    for mut rng in cases() {
        let (m, k, n) = (rng.gen_range(1..10), rng.gen_range(1..40), rng.gen_range(1..10));
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let x = fill(&mut rng, m * n);
        let v = fill(&mut rng, k);

        let run = || {
            let mut panel = Vec::new();
            let mut out = vec![0.0; m * n];
            kernels::matmul(m, k, n, &a, &b, &mut panel, &mut out);
            let mut packed = Vec::new();
            let mut g = vec![0.0; n * n];
            kernels::gram(m, n, &x, &mut packed, &mut g);
            let mut mv = vec![0.0; m];
            kernels::matvec(m, k, &a, &v, &mut mv);
            let d = kernels::dot(&b[..k.min(b.len())], &v[..k.min(b.len())]);
            let s = kernels::sum(&a);
            let nrm = kernels::norm2(&a);
            (out, g, mv, d, s, nrm)
        };
        let (o1, g1, mv1, d1, s1, n1) = run();
        let (o2, g2, mv2, d2, s2, n2) = run();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&o1), bits(&o2), "matmul not byte-identical");
        assert_eq!(bits(&g1), bits(&g2), "gram not byte-identical");
        assert_eq!(bits(&mv1), bits(&mv2), "matvec not byte-identical");
        assert_eq!(d1.to_bits(), d2.to_bits(), "dot not byte-identical");
        assert_eq!(s1.to_bits(), s2.to_bits(), "sum not byte-identical");
        assert_eq!(n1.to_bits(), n2.to_bits(), "norm2 not byte-identical");
    }
}
