//! Property-style tests for the linear-algebra kernels, driven by the
//! workspace's own deterministic RNG: each property is checked across many
//! randomized cases with seeds derived from a fixed master seed, so runs
//! are reproducible and fully hermetic.

use easytime_linalg::matrix::dot;
use easytime_linalg::stats::{acf, mean, quantile, ranks, softmax, std_dev, variance};
use easytime_linalg::{lstsq, lu_solve, Matrix};
use easytime_rng::StdRng;

const CASES: u64 = 48;
const MASTER_SEED: u64 = 0xE457_11E0;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

fn finite_vec(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<f64> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.gen_range_f64(-1e3, 1e3)).collect()
}

#[test]
fn transpose_is_involution() {
    for mut rng in cases() {
        let rows = rng.gen_range(1..8);
        let cols = rng.gen_range(1..8);
        let seed = rng.next_u64();
        let m = Matrix::from_fn(rows, cols, |i, j| {
            ((seed as f64).sin() * 100.0 + (i * 31 + j * 7) as f64).sin()
        });
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_identity_is_noop() {
    for mut rng in cases() {
        let rows = rng.gen_range(1..6);
        let cols = rng.gen_range(1..6);
        let m = Matrix::from_fn(rows, cols, |i, j| (i as f64) - 0.5 * (j as f64));
        let prod = m.matmul(&Matrix::identity(cols));
        assert!((&prod - &m).max_abs() < 1e-12);
    }
}

#[test]
fn dot_is_commutative() {
    for mut rng in cases() {
        let a = finite_vec(&mut rng, 1, 32);
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
    }
}

#[test]
fn lu_solution_satisfies_system() {
    for mut rng in cases() {
        let n = rng.gen_range(1..6);
        let seed = rng.gen_range(0..1000) as u64;
        // Diagonally dominant matrices are always nonsingular.
        let m = Matrix::from_fn(n, n, |i, j| {
            let base = (((seed + 1) as f64) * ((i * n + j + 1) as f64)).sin();
            if i == j { base + n as f64 + 1.0 } else { base * 0.5 }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + seed as f64).cos()).collect();
        let x = lu_solve(&m, &b).unwrap();
        let residual = m.matvec(&x);
        for (r, want) in residual.iter().zip(&b) {
            assert!((r - want).abs() < 1e-7);
        }
    }
}

#[test]
fn lstsq_residual_is_orthogonal_to_columns() {
    for mut rng in cases() {
        let n = rng.gen_range(5..30);
        let seed = rng.gen_range(0..500) as u64;
        let x = Matrix::from_fn(n, 2, |i, j| {
            (((seed + 3) * (i as u64 + 1) * (j as u64 + 2)) as f64 * 0.37).sin()
        });
        let y: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.11).cos()).collect();
        let beta = lstsq(&x, &y).unwrap();
        let yhat = x.matvec(&beta);
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        // Normal equations: Xᵀ r ≈ 0 (up to the ridge jitter).
        let xtr = x.tr_matvec(&resid);
        for v in xtr {
            assert!(v.abs() < 1e-4, "column correlation with residual too large: {v}");
        }
    }
}

#[test]
fn variance_is_shift_invariant() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 2, 64);
        let shift = rng.gen_range_f64(-100.0, 100.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!((variance(&xs) - variance(&shifted)).abs() < 1e-6 * (1.0 + variance(&xs)));
    }
}

#[test]
fn mean_lies_between_extremes() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 1, 64);
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}

#[test]
fn acf_lag_zero_is_one_for_non_constant() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 3, 64);
        if std_dev(&xs) <= 1e-6 {
            continue;
        }
        let a = acf(&xs, 2);
        assert!((a[0] - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|v| v.abs() <= 1.0 + 1e-9));
    }
}

#[test]
fn softmax_is_a_distribution() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 1, 32);
        let p = softmax(&xs);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|v| *v >= 0.0));
    }
}

#[test]
fn quantile_monotone_in_q() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 1, 64);
        let q1 = rng.gen_f64();
        let q2 = rng.gen_f64();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        assert!(a <= b + 1e-9);
    }
}

#[test]
fn ranks_are_a_permutation() {
    for mut rng in cases() {
        let xs = finite_vec(&mut rng, 1, 48);
        let mut r = ranks(&xs);
        r.sort_unstable();
        let expect: Vec<usize> = (0..xs.len()).collect();
        assert_eq!(r, expect);
    }
}
