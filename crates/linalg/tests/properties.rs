//! Property-based tests for the linear-algebra kernels.

use easytime_linalg::matrix::dot;
use easytime_linalg::{lstsq, lu_solve, Matrix};
use easytime_linalg::stats::{acf, mean, quantile, ranks, softmax, std_dev, variance};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #[test]
    fn transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let m = Matrix::from_fn(rows, cols, |i, j| {
            ((seed as f64).sin() * 100.0 + (i * 31 + j * 7) as f64).sin()
        });
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop(rows in 1usize..6, cols in 1usize..6) {
        let m = Matrix::from_fn(rows, cols, |i, j| (i as f64) - 0.5 * (j as f64));
        let prod = m.matmul(&Matrix::identity(cols));
        prop_assert!((&prod - &m).max_abs() < 1e-12);
    }

    #[test]
    fn dot_is_commutative(a in finite_vec(1..32)) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn lu_solution_satisfies_system(n in 1usize..6, seed in 0u64..1000) {
        // Diagonally dominant matrices are always nonsingular.
        let m = Matrix::from_fn(n, n, |i, j| {
            let base = (((seed + 1) as f64) * ((i * n + j + 1) as f64)).sin();
            if i == j { base + n as f64 + 1.0 } else { base * 0.5 }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + seed as f64).cos()).collect();
        let x = lu_solve(&m, &b).unwrap();
        let residual = m.matvec(&x);
        for (r, want) in residual.iter().zip(&b) {
            prop_assert!((r - want).abs() < 1e-7);
        }
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(n in 5usize..30, seed in 0u64..500) {
        let x = Matrix::from_fn(n, 2, |i, j| {
            (((seed + 3) * (i as u64 + 1) * (j as u64 + 2)) as f64 * 0.37).sin()
        });
        let y: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.11).cos()).collect();
        let beta = lstsq(&x, &y).unwrap();
        let yhat = x.matvec(&beta);
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        // Normal equations: Xᵀ r ≈ 0 (up to the ridge jitter).
        let xtr = x.tr_matvec(&resid);
        for v in xtr {
            prop_assert!(v.abs() < 1e-4, "column correlation with residual too large: {v}");
        }
    }

    #[test]
    fn variance_is_shift_invariant(xs in finite_vec(2..64), shift in -100.0..100.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&xs) - variance(&shifted)).abs() < 1e-6 * (1.0 + variance(&xs)));
    }

    #[test]
    fn mean_lies_between_extremes(xs in finite_vec(1..64)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn acf_lag_zero_is_one_for_non_constant(xs in finite_vec(3..64)) {
        prop_assume!(std_dev(&xs) > 1e-6);
        let a = acf(&xs, 2);
        prop_assert!((a[0] - 1.0).abs() < 1e-9);
        prop_assert!(a.iter().all(|v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn softmax_is_a_distribution(xs in finite_vec(1..32)) {
        let p = softmax(&xs);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn quantile_monotone_in_q(xs in finite_vec(1..64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn ranks_are_a_permutation(xs in finite_vec(1..48)) {
        let mut r = ranks(&xs);
        r.sort_unstable();
        let expect: Vec<usize> = (0..xs.len()).collect();
        prop_assert_eq!(r, expect);
    }
}
