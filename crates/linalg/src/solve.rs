//! Linear system solvers and least squares.
//!
//! Provides LU decomposition with partial pivoting for general square
//! systems, Cholesky for symmetric positive-definite systems, and (ridge)
//! least squares built on top of Cholesky-factored normal equations. These
//! cover every fit in the model zoo (AR/ARIMA, ridge lag regression, VAR,
//! Holt-Winters initialization) and the ensemble weight solver.

use crate::kernels;
use crate::matrix::Matrix;
use std::fmt;

/// Errors produced by the solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot index where elimination broke down.
        pivot: usize,
    },
    /// Cholesky failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Diagonal index where the factorization broke down.
        index: usize,
    },
    /// Input shapes are inconsistent with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (diagonal {index})")
            }
            LinalgError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves the square system `a * x = b` by LU decomposition with partial
/// pivoting.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch { what: "lu_solve requires a square matrix" });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch { what: "rhs length must equal matrix order" });
    }

    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Partial pivoting: pick the largest magnitude entry in column k.
        let mut p = k;
        let mut max = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > max {
                max = v;
                p = i;
            }
        }
        if max < 1e-300 {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            perm.swap(p, k);
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
            x.swap(p, k);
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            if factor == 0.0 {
                continue;
            }
            for j in (k + 1)..n {
                let upd = factor * lu[(k, j)];
                lu[(i, j)] -= upd;
            }
            x[i] -= factor * x[k];
        }
    }

    // Back substitution on the upper triangle; the strict upper part of
    // each row is contiguous, so the reduction is a four-lane dot.
    for i in (0..n).rev() {
        let sum = x[i] - kernels::dot(&lu.row(i)[(i + 1)..], &x[(i + 1)..]);
        x[i] = sum / lu[(i, i)];
    }
    Ok(x)
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `a = L * Lᵀ`.
pub(crate) fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch { what: "cholesky requires a square matrix" });
    }
    let mut l = Matrix::zeros(n, n);
    // Row-major lower-triangular storage makes every inner reduction a
    // contiguous prefix of a row, i.e. a four-lane dot.
    for j in 0..n {
        let lj = &l.row(j)[..j];
        let diag = a[(j, j)] - kernels::dot(lj, lj);
        if diag <= 0.0 || !diag.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { index: j });
        }
        let dj = diag.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let s = a[(i, j)] - kernels::dot(&l.row(i)[..j], &l.row(j)[..j]);
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Solves `a * x = b` for symmetric positive-definite `a` via Cholesky.
pub(crate) fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch { what: "rhs length must equal matrix order" });
    }
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let s = b[i] - kernels::dot(&l.row(i)[..i], &y[..i]);
        y[i] = s / l[(i, i)];
    }
    // Backward solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Ordinary least squares: minimizes `‖X β − y‖₂`.
///
/// Solved via ridge with a tiny jitter (1e-10) for numerical robustness on
/// collinear designs; callers needing exact OLS on well-conditioned systems
/// are unaffected at the precision the benchmark uses.
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    ridge(x, y, 1e-10)
}

/// Ridge regression: minimizes `‖X β − y‖₂² + λ‖β‖₂²`.
///
/// Uses the normal equations `(XᵀX + λI) β = Xᵀ y` factored by Cholesky.
pub fn ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch { what: "design rows must equal target length" });
    }
    if lambda < 0.0 {
        return Err(LinalgError::ShapeMismatch { what: "ridge penalty must be non-negative" });
    }
    let mut gram = x.gram();
    let n = gram.rows();
    for i in 0..n {
        gram[(i, i)] += lambda;
    }
    let xty = x.tr_matvec(y);
    match cholesky_solve(&gram, &xty) {
        Ok(beta) => Ok(beta),
        // Retry once with a stronger diagonal if the design is degenerate.
        Err(LinalgError::NotPositiveDefinite { .. }) => {
            for i in 0..n {
                gram[(i, i)] += 1e-6 + 1e-6 * gram[(i, i)].abs();
            }
            cholesky_solve(&gram, &xty)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let b = [8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        assert_close(&x, &[2.0, 3.0, -1.0], 1e-10);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 3.0], 1e-12);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(lu_solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(lu_solve(&a, &[1.0, 2.0]), Err(LinalgError::ShapeMismatch { .. })));
        let b = Matrix::identity(2);
        assert!(matches!(lu_solve(&b, &[1.0]), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn cholesky_factors_spd() {
        let a = Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let l = cholesky(&a).unwrap();
        let expected = Matrix::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![6.0, 1.0, 0.0],
            vec![-8.0, 5.0, 3.0],
        ]);
        assert!((&l - &expected).max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 5.0]]);
        let b = [4.0, 3.0];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = lu_solve(&a, &b).unwrap();
        assert_close(&x1, &x2, 1e-12);
    }

    #[test]
    fn lstsq_recovers_exact_line() {
        // y = 3 + 2 t, design with intercept column.
        let t: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x = Matrix::from_fn(20, 2, |i, j| if j == 0 { 1.0 } else { t[i] });
        let y: Vec<f64> = t.iter().map(|v| 3.0 + 2.0 * v).collect();
        let beta = lstsq(&x, &y).unwrap();
        assert_close(&beta, &[3.0, 2.0], 1e-6);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_fn(50, 1, |i, _| (i as f64) / 10.0);
        let y: Vec<f64> = (0..50).map(|i| (i as f64) / 10.0 * 4.0).collect();
        let ols = ridge(&x, &y, 0.0).unwrap()[0];
        let shrunk = ridge(&x, &y, 100.0).unwrap()[0];
        assert!((ols - 4.0).abs() < 1e-8);
        assert!(shrunk < ols && shrunk > 0.0);
    }

    #[test]
    fn ridge_handles_collinear_design() {
        // Two identical columns: OLS normal equations are singular, ridge
        // with jitter must still return finite coefficients.
        let x = Matrix::from_fn(30, 2, |i, _| (i as f64).sin());
        let y: Vec<f64> = (0..30).map(|i| 2.0 * (i as f64).sin()).collect();
        let beta = lstsq(&x, &y).unwrap();
        assert!(beta.iter().all(|b| b.is_finite()));
        // The two columns together should reconstruct the signal.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_rejects_negative_penalty() {
        let x = Matrix::identity(2);
        assert!(ridge(&x, &[1.0, 1.0], -1.0).is_err());
    }
}
