//! A row-major dense `f64` matrix.
//!
//! [`Matrix`] is intentionally small: it supports exactly the operations the
//! rest of the workspace needs (construction, element access, transpose,
//! matrix/vector products, and a few element-wise helpers). Shapes are
//! validated eagerly with panics on programmer error (mismatched dimensions
//! are bugs, not runtime conditions), mirroring the convention used by dense
//! linear-algebra libraries.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::kernels;

/// Dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix with every element set to `value`
    /// (test fixtures).
    #[cfg(test)]
    pub(crate) fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Borrow of the underlying row-major buffer (test oracles).
    #[cfg(test)]
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Creates a matrix of the given shape filled with zeros.
    pub(crate) fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub(crate) fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows * cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let mut panel = Vec::new();
        kernels::matmul(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut panel,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// Prefer this (or [`Matrix::gram`] when `rhs` is `self`) over
    /// `self.transpose().matmul(rhs)`: it makes one contiguous pass over
    /// both operands instead of building an intermediate matrix.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn tr_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row counts must agree");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        kernels::tr_matmul(self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data);
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "vector length must equal column count");
        let mut out = vec![0.0; self.rows];
        kernels::matvec(self.rows, self.cols, &self.data, v, &mut out);
        out
    }

    /// `selfᵀ * v` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != v.len()`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        kernels::tr_matvec(self.rows, self.cols, &self.data, v, &mut out);
        out
    }

    /// The Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        let mut packed = Vec::new();
        kernels::gram(self.rows, self.cols, &self.data, &mut packed, &mut g.data);
        g
    }

    /// Applies `f` to every element in place.
    pub(crate) fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Scales every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        self.map_inplace(|x| x * s);
    }

    /// Adds `s * rhs` to `self` element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shapes must match");
        kernels::axpy(s, &rhs.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        kernels::norm2(&self.data)
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shapes must match");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shapes must match");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// Delegates to the four-lane [`kernels::dot`]; the reassociation order
/// is fixed, so results are deterministic across runs.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i.matmul(&i), i);
    }

    #[test]
    fn from_rows_round_trips_indices() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matvec_and_transpose_matvec_agree() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 0.5);
        let v = vec![1.0, -2.0, 0.5];
        let got = m.matvec(&v);
        let expected: Vec<f64> = (0..4).map(|i| dot(m.row(i), &v)).collect();
        assert_eq!(got, expected);

        let w = vec![0.5, 1.5, -1.0, 2.0];
        let lhs = m.tr_matvec(&w);
        let rhs = m.transpose().matvec(&w);
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose_product() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f64 * 0.7).sin());
        let b = Matrix::from_fn(6, 4, |i, j| ((i * 4 + j) as f64 * 0.3).cos());
        let got = a.tr_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(got.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert!((got[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn products_propagate_nan_past_exact_zeros() {
        // Regression: the old kernels skipped work when a coefficient was
        // exactly 0.0, so `0.0 * NaN` never happened and NaN inputs could
        // leave output cells untouched. IEEE 754 says 0.0 * NaN is NaN;
        // non-finite data must poison everything it touches.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN; // row 0 = [NaN, 0], row 1 = [0, 0]
        let zeros = Matrix::zeros(2, 2);

        // matmul: zero lhs coefficients must still multiply the NaN in
        // rhs column 0 (0.0 * NaN = NaN), so that whole column is NaN.
        let prod = zeros.matmul(&a);
        assert!(prod[(0, 0)].is_nan() && prod[(1, 0)].is_nan(), "{prod:?}");

        // tr_matvec: a zero vector entry must still touch the NaN row.
        let t = a.tr_matvec(&[0.0, 0.0]);
        assert!(t[0].is_nan(), "{t:?}");

        // matvec: NaN anywhere in a row poisons that row's output even
        // when the matching vector entry is zero.
        let mv = a.matvec(&[0.0, 1.0]);
        assert!(mv[0].is_nan(), "{mv:?}");

        // gram: a NaN in one column poisons every entry sharing it.
        let g = a.gram();
        assert!(g[(0, 0)].is_nan() && g[(0, 1)].is_nan() && g[(1, 0)].is_nan(), "{g:?}");
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let g = m.gram();
        let explicit = m.transpose().matmul(&m);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 3.0);
        assert_eq!((&a + &b), Matrix::filled(2, 2, 5.0));
        assert_eq!((&b - &a), Matrix::filled(2, 2, 1.0));
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c, Matrix::filled(2, 2, 8.0));
        assert!((Matrix::identity(2).norm() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(b.max_abs(), 3.0);
        assert!(b.is_finite());
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let abs = m.map(f64::abs);
        assert_eq!(abs.as_slice(), &[1.0, 2.0]);
    }
}
