//! Descriptive statistics and time-series helper routines.
//!
//! These free functions operate on `&[f64]` so every layer of the workspace
//! (generators, feature extraction, metrics, model fitting) can share them
//! without conversions.

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); returns 0.0 for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `None` when empty or any NaN is present.
pub fn min(xs: &[f64]) -> Option<f64> {
    if xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    xs.iter().copied().reduce(f64::min)
}

/// Maximum value; `None` when empty or any NaN is present.
pub fn max(xs: &[f64]) -> Option<f64> {
    if xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    xs.iter().copied().reduce(f64::max)
}

/// Linear-interpolated quantile `q ∈ [0, 1]`; `None` when empty or `q` is out
/// of range.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    // lint: allow(lossy-cast) — q is validated to [0, 1], so pos lies in
    // [0, len-1] and truncation yields an exact, in-range index.
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Covariance of two equal-length slices (population normalization).
///
/// # Panics
/// Panics if the slices differ in length.
pub(crate) fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation; 0.0 when either side is constant.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Autocorrelation at `lag`; 0.0 when the series is too short or constant.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if lag >= xs.len() {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom < 1e-12 {
        return 0.0;
    }
    let numer: f64 = xs[lag..]
        .iter()
        .zip(&xs[..xs.len() - lag])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    numer / denom
}

/// Autocorrelation function for lags `0..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|lag| autocorrelation(xs, lag)).collect()
}

/// First differences `x[t] - x[t-1]`; empty when `xs.len() < 2`.
pub fn diff(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 2 {
        return Vec::new();
    }
    xs.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Simple linear regression of `ys` on `0..n`; returns `(intercept, slope)`.
///
/// Returns `(mean, 0.0)` for slices shorter than 2.
pub fn linear_trend(ys: &[f64]) -> (f64, f64) {
    let n = ys.len();
    if n < 2 {
        return (mean(ys), 0.0);
    }
    let nf = n as f64;
    let tx = (nf - 1.0) / 2.0;
    let ty = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - tx;
        sxy += dx * (y - ty);
        sxx += dx * dx;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    (ty - slope * tx, slope)
}

/// Skewness (population, Fisher); 0.0 for constant/short series.
pub fn skewness(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

/// Excess kurtosis (population); 0.0 for constant/short series.
pub fn kurtosis(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0
}

/// Softmax over a slice, numerically stabilized by max subtraction.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|x| (x - mx).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Ranks of the values (0 = smallest), average-free: ties broken by index.
pub fn ranks(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0usize; xs.len()];
    for (rank, &i) in idx.iter().enumerate() {
        out[i] = rank;
    }
    out
}

/// Spearman rank correlation between two equal-length slices.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    let rx: Vec<f64> = ranks(xs).into_iter().map(|r| r as f64).collect();
    let ry: Vec<f64> = ranks(ys).into_iter().map(|r| r as f64).collect();
    correlation(&rx, &ry)
}

/// Sample variance (divides by `n - 1`); returns 0.0 for slices shorter than 2.
#[cfg(test)]
pub(crate) fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Seasonal differences `x[t] - x[t-period]`.
#[cfg(test)]
pub(crate) fn seasonal_diff(xs: &[f64], period: usize) -> Vec<f64> {
    if period == 0 || xs.len() <= period {
        return Vec::new();
    }
    (period..xs.len()).map(|t| xs[t] - xs[t - period]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn minmax_and_quantiles() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(9.0));
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(min(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn correlation_bounds_and_signs() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let zs: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &vec![5.0; 50]), 0.0);
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let xs: Vec<f64> =
            (0..240).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()).collect();
        let a = acf(&xs, 24);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!(a[12] > 0.9, "lag-12 autocorrelation should be near 1, got {}", a[12]);
        assert!(a[6] < -0.9, "half-period autocorrelation should be near -1");
        assert_eq!(autocorrelation(&xs, 500), 0.0);
    }

    #[test]
    fn diff_and_seasonal_diff() {
        let xs = [1.0, 3.0, 6.0, 10.0];
        assert_eq!(diff(&xs), vec![2.0, 3.0, 4.0]);
        assert_eq!(seasonal_diff(&xs, 2), vec![5.0, 7.0]);
        assert!(diff(&[1.0]).is_empty());
        assert!(seasonal_diff(&xs, 0).is_empty());
        assert!(seasonal_diff(&xs, 10).is_empty());
    }

    #[test]
    fn linear_trend_recovers_slope() {
        let ys: Vec<f64> = (0..100).map(|t| 5.0 + 0.25 * t as f64).collect();
        let (b, m) = linear_trend(&ys);
        assert!((b - 5.0).abs() < 1e-9);
        assert!((m - 0.25).abs() < 1e-12);
        let (b1, m1) = linear_trend(&[7.0]);
        assert_eq!((b1, m1), (7.0, 0.0));
    }

    #[test]
    fn moments_of_symmetric_data() {
        let xs: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        assert!(skewness(&xs).abs() < 1e-9);
        // Uniform distribution has negative excess kurtosis (~ -1.2).
        assert!(kurtosis(&xs) < -1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Large inputs must not overflow.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn ranks_and_spearman() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![2, 0, 1]);
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 25.0, 100.0]; // monotone but nonlinear
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &zs) + 1.0).abs() < 1e-12);
    }
}
