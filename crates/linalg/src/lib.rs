//! Dense linear-algebra and statistics kernels for EasyTime.
//!
//! This crate is the numerical substrate shared by the synthetic data
//! generators, the forecasting model zoo, the representation module, and the
//! AutoML classifier. It deliberately implements a small, well-tested subset
//! of dense linear algebra from scratch (no BLAS/LAPACK dependency):
//!
//! * [`kernels`] — cache-blocked, multi-accumulator compute kernels with a
//!   fixed reassociation order (the deterministic fast path everything
//!   else is built on).
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual algebra.
//! * [`solve`] — LU / Cholesky solvers and (ridge) least squares.
//! * [`stats`] — descriptive statistics, autocorrelation, and regression
//!   helpers used throughout the benchmark.
//!
//! All routines are deterministic and allocation-conscious: hot paths accept
//! slices and reuse buffers where practical, per the workspace performance
//! guidelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod matrix;
pub mod solve;
pub mod stats;

pub use matrix::Matrix;
pub use solve::{lstsq, lu_solve, ridge, LinalgError};

/// Convenience result alias for fallible linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;
