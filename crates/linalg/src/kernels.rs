//! Cache-aware compute kernels shared by every hot numeric path.
//!
//! The routines here are the single implementation point for the inner
//! loops that dominate ridge fits, neural training, ROCKET embedding, and
//! corpus sweeps. They are written for the autovectorizer rather than for
//! brevity: reductions run in four independent accumulator lanes combined
//! in a fixed order, matrix products are blocked so panels stay resident
//! in cache, and everything operates on caller-provided slices so the
//! steady state allocates nothing.
//!
//! # Numeric policy
//!
//! Every reduction uses a *fixed* reassociation order — four lanes over
//! `chunks_exact(4)`, combined as `((s0 + s1) + (s2 + s3)) + tail` — so
//! results are bit-identical across runs and thread counts. The kernels
//! never skip multiply-adds on exact zeros: `0.0 * NaN` must stay NaN so
//! non-finite inputs propagate to the output instead of being silently
//! swallowed. Blocked results are allowed to differ from a naive
//! left-to-right loop only by reassociation (≤ 1e-12 relative error in
//! the property suite); they may not differ between two invocations.

/// Number of independent accumulator lanes used by the reductions.
///
/// Four 64-bit lanes fill a 256-bit vector register, which is the widest
/// unit portable builds can count on; the fixed lane count is also what
/// pins the reassociation order.
pub(crate) const LANES: usize = 4;

/// Column-panel width for the blocked matrix–matrix product.
///
/// 128 columns of `f64` per panel row keeps a full B panel (`KC × NC`)
/// within a typical 256 KiB L2 slice.
const NC: usize = 128;

/// Depth (inner-dimension) blocking factor for the matrix–matrix product.
const KC: usize = 256;

// lint: hot(innermost reduction of every matvec/gram call; runs per window in the rolling loop)
/// Dot product of two equal-length slices in four accumulator lanes.
///
/// The reassociation order is fixed (`((s0 + s1) + (s2 + s3)) + tail`),
/// so the result is deterministic across runs and independent of thread
/// count.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut lanes = [0.0_f64; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let tail = a_chunks
        .remainder()
        .iter()
        .zip(b_chunks.remainder())
        .map(|(x, y)| x * y)
        .sum::<f64>();
    for (ca, cb) in a_chunks.zip(b_chunks) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

// lint: hot(innermost update of the blocked matmul and transposed products)
/// `y[i] += alpha * x[i]` over equal-length slices.
///
/// No reduction is involved, so each output element has exactly one
/// rounding and the loop vectorizes without reassociation concerns.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// lint: hot(lane-parallel reduction used by scalers and metrics per window)
/// Sum of a slice in four accumulator lanes with a fixed combine order.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    let mut lanes = [0.0_f64; LANES];
    let chunks = a.chunks_exact(LANES);
    let tail = chunks.remainder().iter().sum::<f64>();
    for c in chunks {
        lanes[0] += c[0];
        lanes[1] += c[1];
        lanes[2] += c[2];
        lanes[3] += c[3];
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

// lint: hot(lane-parallel norm on the solver and metric paths)
/// Euclidean norm `sqrt(Σ aᵢ²)` in four accumulator lanes.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    let mut lanes = [0.0_f64; LANES];
    let chunks = a.chunks_exact(LANES);
    let tail = chunks.remainder().iter().map(|x| x * x).sum::<f64>();
    for c in chunks {
        lanes[0] += c[0] * c[0];
        lanes[1] += c[1] * c[1];
        lanes[2] += c[2] * c[2];
        lanes[3] += c[3] * c[3];
    }
    (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail).sqrt()
}

// lint: hot(blocked compute kernel; the panel scratch is caller-provided so steady state reuses it)
/// Blocked matrix–matrix product `out = a * b` on row-major buffers.
///
/// `a` is `m × k`, `b` is `k × n`, and `out` is `m × n` and must be
/// zeroed by the caller. The product is blocked over the inner dimension
/// and over column panels of `b`; the panel currently in flight is packed
/// into `panel`, a caller-provided scratch buffer that is resized to at
/// most `KC × NC` elements. Per output cell the `k` contributions are
/// accumulated in ascending order regardless of blocking, so the result
/// is bit-identical to the straightforward i-k-j loop.
///
/// # Panics
/// Panics if any buffer length disagrees with the stated shape.
pub fn matmul(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    panel: &mut Vec<f64>,
    out: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "matmul: lhs buffer/shape mismatch");
    assert_eq!(b.len(), k * n, "matmul: rhs buffer/shape mismatch");
    assert_eq!(out.len(), m * n, "matmul: out buffer/shape mismatch");
    let mut j0 = 0;
    while j0 < n {
        let nb = NC.min(n - j0);
        let mut k0 = 0;
        while k0 < k {
            let kb = KC.min(k - k0);
            // Pack the kb × nb panel of `b` so the inner axpy streams
            // through contiguous memory even when `n` is large.
            panel.clear();
            for p in 0..kb {
                let row = (k0 + p) * n;
                panel.extend_from_slice(&b[row + j0..row + j0 + nb]);
            }
            for i in 0..m {
                let a_row = &a[i * k + k0..i * k + k0 + kb];
                let out_row = &mut out[i * n + j0..i * n + j0 + nb];
                for (p, &aip) in a_row.iter().enumerate() {
                    axpy(aip, &panel[p * nb..(p + 1) * nb], out_row);
                }
            }
            k0 += kb;
        }
        j0 += nb;
    }
}

// lint: hot(per-forecast product on the ridge and ARIMA prediction paths)
/// Matrix–vector product `out[i] = dot(a.row(i), v)` on a row-major buffer.
///
/// `a` is `rows × cols`; each output element is one four-lane [`dot`], so
/// the per-row reassociation order is fixed.
///
/// # Panics
/// Panics if any buffer length disagrees with the stated shape.
pub fn matvec(rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "matvec: buffer/shape mismatch");
    assert_eq!(v.len(), cols, "matvec: vector length mismatch");
    assert_eq!(out.len(), rows, "matvec: out length mismatch");
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&a[i * cols..(i + 1) * cols], v);
    }
}

// lint: hot(fused transpose product; the R13 replacement on per-window solve paths)
/// Transposed matrix–vector product `out = aᵀ * v` without materializing
/// the transpose.
///
/// `a` is `rows × cols` and `out` has length `cols` and must be zeroed by
/// the caller. Implemented as a row sweep of [`axpy`] updates so the
/// inner loop is contiguous in both `a` and `out`; contributions per
/// output element arrive in ascending row order. Exact zeros in `v` are
/// *not* skipped: `0.0 * NaN` must propagate.
///
/// # Panics
/// Panics if any buffer length disagrees with the stated shape.
pub fn tr_matvec(rows: usize, cols: usize, a: &[f64], v: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "tr_matvec: buffer/shape mismatch");
    assert_eq!(v.len(), rows, "tr_matvec: vector length mismatch");
    assert_eq!(out.len(), cols, "tr_matvec: out length mismatch");
    for (i, &vi) in v.iter().enumerate() {
        axpy(vi, &a[i * cols..(i + 1) * cols], out);
    }
}

// lint: hot(fused transpose product; the R13 replacement on normal-equation builds)
/// Transposed matrix–matrix product `out = aᵀ * b` without materializing
/// the transpose.
///
/// `a` is `m × n`, `b` is `m × p`, and `out` is `n × p` and must be
/// zeroed by the caller. One pass over the shared `m` dimension updates
/// each output row with a contiguous [`axpy`], which is both faster and
/// lighter than `a.transpose().matmul(b)` (lint rule R13).
///
/// # Panics
/// Panics if any buffer length disagrees with the stated shape.
pub fn tr_matmul(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * n, "tr_matmul: lhs buffer/shape mismatch");
    assert_eq!(b.len(), m * p, "tr_matmul: rhs buffer/shape mismatch");
    assert_eq!(out.len(), n * p, "tr_matmul: out buffer/shape mismatch");
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        let b_row = &b[i * p..(i + 1) * p];
        for (j, &aij) in a_row.iter().enumerate() {
            axpy(aij, b_row, &mut out[j * p..(j + 1) * p]);
        }
    }
}

// lint: hot(ridge normal-equation build; packed scratch is caller-provided for reuse)
/// Gram matrix `out = xᵀ * x` via a packed transpose panel.
///
/// `x` is `rows × cols` row-major and `out` is `cols × cols`. The columns
/// of `x` are first packed contiguously into `packed` (caller-provided
/// scratch, resized to `cols × rows`), after which every Gram entry is a
/// four-lane [`dot`] of two contiguous column vectors — all accumulation
/// happens in registers instead of the `cols × cols` output, which is
/// what makes this ≥2× faster than the row-scatter formulation at ridge
/// shapes. Only the upper triangle is computed; the lower is mirrored.
///
/// # Panics
/// Panics if any buffer length disagrees with the stated shape.
pub fn gram(rows: usize, cols: usize, x: &[f64], packed: &mut Vec<f64>, out: &mut [f64]) {
    assert_eq!(x.len(), rows * cols, "gram: buffer/shape mismatch");
    assert_eq!(out.len(), cols * cols, "gram: out buffer/shape mismatch");
    packed.clear();
    packed.resize(cols * rows, 0.0);
    for (i, row) in x.chunks_exact(cols.max(1)).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            packed[j * rows + i] = v;
        }
    }
    for j in 0..cols {
        let cj = &packed[j * rows..(j + 1) * rows];
        for k in j..cols {
            let v = dot(cj, &packed[k * rows..(k + 1) * rows]);
            out[j * cols + k] = v;
            out[k * cols + j] = v;
        }
    }
}

// lint: hot(per-kernel convolution of every embedding; works entirely in registers)
/// Proportion-of-positive-values and maximum of one dilated convolution.
///
/// Applies the ROCKET kernel `weights` with the given `bias` and
/// `dilation` to the (already z-normalized) series `z` and returns
/// `(ppv, max)` over all valid output positions. Output positions are
/// processed four at a time with independent accumulators, but each
/// accumulator applies the taps in the same ascending order as a scalar
/// loop, so every convolution output — and therefore the returned pair —
/// is bit-identical to the one-position-at-a-time reference.
///
/// Returns `(0.0, 0.0)` when the dilated span does not fit in `z`,
/// matching the encoder's zero-feature convention for short series.
pub fn conv_ppv_max(z: &[f64], weights: &[f64], bias: f64, dilation: usize) -> (f64, f64) {
    let span = weights.len().saturating_sub(1) * dilation;
    let n_out = z.len().saturating_sub(span);
    if n_out == 0 {
        return (0.0, 0.0);
    }
    let mut positive = 0_usize;
    let mut max = f64::NEG_INFINITY;
    let blocks = n_out / LANES;
    for blk in 0..blocks {
        let t = blk * LANES;
        let mut acc = [bias; LANES];
        for (i, &w) in weights.iter().enumerate() {
            let base = t + i * dilation;
            acc[0] += w * z[base];
            acc[1] += w * z[base + 1];
            acc[2] += w * z[base + 2];
            acc[3] += w * z[base + 3];
        }
        for &a in &acc {
            if a > 0.0 {
                positive += 1;
            }
            max = max.max(a);
        }
    }
    for t in blocks * LANES..n_out {
        let mut acc = bias;
        for (i, &w) in weights.iter().enumerate() {
            acc += w * z[t + i * dilation];
        }
        if acc > 0.0 {
            positive += 1;
        }
        max = max.max(acc);
    }
    (positive as f64 / n_out as f64, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive left-to-right reference implementations: the oracle the
    /// blocked kernels are checked against here and in the seeded
    /// property suite.
    mod naive {
        pub fn dot(a: &[f64], b: &[f64]) -> f64 {
            a.iter().zip(b).map(|(x, y)| x * y).sum()
        }

        pub fn matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for p in 0..k {
                    let aip = a[i * k + p];
                    for j in 0..n {
                        out[i * n + j] += aip * b[p * n + j];
                    }
                }
            }
            out
        }

        pub fn gram(rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
            let mut g = vec![0.0; cols * cols];
            for i in 0..rows {
                for j in 0..cols {
                    for k in 0..cols {
                        g[j * cols + k] += x[i * cols + j] * x[i * cols + k];
                    }
                }
            }
            g
        }
    }

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) as f64 * 0.137).sin()).collect()
    }

    #[test]
    fn dot_matches_naive_and_is_deterministic() {
        for n in [0, 1, 3, 4, 5, 17, 128, 1001] {
            let a = seq(n);
            let b: Vec<f64> = a.iter().map(|x| x * 1.7 - 0.3).collect();
            let fast = dot(&a, &b);
            assert!((fast - naive::dot(&a, &b)).abs() <= 1e-12 * (1.0 + fast.abs()));
            assert_eq!(fast.to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn sum_and_norm2_match_naive() {
        for n in [0, 1, 7, 64, 513] {
            let a = seq(n);
            let s: f64 = a.iter().sum();
            let q: f64 = a.iter().map(|x| x * x).sum::<f64>();
            assert!((sum(&a) - s).abs() <= 1e-12 * (1.0 + s.abs()));
            assert!((norm2(&a) - q.sqrt()).abs() <= 1e-12 * (1.0 + q.sqrt()));
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = seq(9);
        let mut y = seq(9);
        let expect: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi + 2.5 * xi).collect();
        axpy(2.5, &x, &mut y);
        assert_eq!(y, expect);
    }

    #[test]
    fn blocked_matmul_matches_naive_at_awkward_shapes() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 2), (5, 7, 3), (3, 300, 10), (4, 9, 200)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut out = vec![0.0; m * n];
            let mut panel = Vec::new();
            matmul(m, k, n, &a, &b, &mut panel, &mut out);
            let reference = naive::matmul(m, k, n, &a, &b);
            for (got, want) in out.iter().zip(&reference) {
                assert!((got - want).abs() <= 1e-12 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn packed_gram_matches_naive() {
        for (rows, cols) in [(1, 1), (0, 3), (6, 1), (7, 5), (480, 25)] {
            let x = seq(rows * cols);
            let mut out = vec![0.0; cols * cols];
            let mut packed = Vec::new();
            gram(rows, cols, &x, &mut packed, &mut out);
            let reference = naive::gram(rows, cols, &x);
            for (got, want) in out.iter().zip(&reference) {
                assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn tr_matmul_matches_transpose_then_matmul() {
        let (m, n, p) = (11, 4, 6);
        let a = seq(m * n);
        let b = seq(m * p);
        let mut out = vec![0.0; n * p];
        tr_matmul(m, n, p, &a, &b, &mut out);
        // Explicit transpose reference.
        let mut at = vec![0.0; n * m];
        for i in 0..m {
            for j in 0..n {
                at[j * m + i] = a[i * n + j];
            }
        }
        let reference = naive::matmul(n, m, p, &at, &b);
        for (got, want) in out.iter().zip(&reference) {
            assert!((got - want).abs() <= 1e-12 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn matvec_pair_matches_naive() {
        let (rows, cols) = (9, 5);
        let a = seq(rows * cols);
        let v = seq(cols);
        let w = seq(rows);
        let mut out = vec![0.0; rows];
        matvec(rows, cols, &a, &v, &mut out);
        for (i, o) in out.iter().enumerate() {
            let want = naive::dot(&a[i * cols..(i + 1) * cols], &v);
            assert!((o - want).abs() <= 1e-12 * (1.0 + want.abs()));
        }
        let mut tout = vec![0.0; cols];
        tr_matvec(rows, cols, &a, &w, &mut tout);
        for (j, o) in tout.iter().enumerate() {
            let want: f64 = (0..rows).map(|i| a[i * cols + j] * w[i]).sum();
            assert!((o - want).abs() <= 1e-12 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn conv_matches_scalar_reference_bitwise() {
        let z = seq(257);
        let weights = seq(9);
        for dilation in [1, 2, 8, 32] {
            let (ppv, max) = conv_ppv_max(&z, &weights, 0.25, dilation);
            let span = (weights.len() - 1) * dilation;
            let n_out = z.len() - span;
            let mut positive = 0;
            let mut ref_max = f64::NEG_INFINITY;
            for t in 0..n_out {
                let mut acc = 0.25;
                for (i, &w) in weights.iter().enumerate() {
                    acc += w * z[t + i * dilation];
                }
                if acc > 0.0 {
                    positive += 1;
                }
                ref_max = ref_max.max(acc);
            }
            assert_eq!(ppv.to_bits(), (positive as f64 / n_out as f64).to_bits());
            assert_eq!(max.to_bits(), ref_max.to_bits());
        }
    }

    #[test]
    fn conv_short_series_yields_zero_features() {
        let z = seq(5);
        let weights = seq(9);
        assert_eq!(conv_ppv_max(&z, &weights, 0.1, 4), (0.0, 0.0));
    }
}
