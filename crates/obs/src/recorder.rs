//! The global recorder: enabled gate, clock, per-thread collectors.
//!
//! Layout: one global [`Recorder`] holds the enabled flag, the installed
//! [`Clock`], global sequence/span-id counters, and a registry of
//! per-thread sinks. Each thread lazily registers one `Arc<Mutex<ThreadSink>>`
//! and caches it in a thread-local, so the steady-state cost of recording
//! is one uncontended mutex lock — the registry lock is only taken on
//! first use per thread and at drain. An epoch counter invalidates the
//! thread-local caches when the clock is swapped or the recorder is reset.
//!
//! ## Allocation accounting
//!
//! A counting global allocator (installed by the `exp_profile` bench bin)
//! reports every heap allocation through [`count_alloc`]. The hook is
//! deliberately independent of the [`Recorder`] singleton: it reads one
//! process-global relaxed [`AtomicBool`] and, only when profiling is on,
//! bumps a thread-local [`Cell`] tally. It must never touch the `OnceLock`
//! — the recorder's own initialization allocates, and re-entering
//! `get_or_init` from inside the allocator would deadlock. The env gate
//! (`EASYTIME_PROF_ALLOC`) is therefore read when the recorder initializes
//! on the first ordinary entry point, not inside the hook.

use crate::event::{EventRecord, Level};
use crate::metrics::Histogram;
use crate::sink::TraceData;
use crate::span::{ActiveSpan, AttrValue, SpanGuard, SpanRecord};
use easytime_clock::Clock;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Everything one thread records before the merge at drain time.
#[derive(Debug, Default)]
struct ThreadSink {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: BTreeMap<String, u64>,
    /// Gauge values tagged with the global sequence number of the write,
    /// so the merge can apply last-write-wins across threads.
    gauges: BTreeMap<String, (u64, f64)>,
    histograms: BTreeMap<String, Histogram>,
    /// Ids of this thread's currently open spans, innermost last.
    stack: Vec<u64>,
}

struct Recorder {
    enabled: AtomicBool,
    /// Bumped by [`install_clock`] / [`reset`] to invalidate thread-locals.
    epoch: AtomicU64,
    clock: Mutex<Clock>,
    seq: AtomicU64,
    next_span_id: AtomicU64,
    sinks: Mutex<Vec<Arc<Mutex<ThreadSink>>>>,
    manifest: Mutex<BTreeMap<String, AttrValue>>,
}

fn env_truthy(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

impl Recorder {
    fn from_env() -> Recorder {
        if env_truthy("EASYTIME_PROF_ALLOC") {
            PROF_ALLOC.store(true, Ordering::Relaxed);
        }
        Recorder {
            enabled: AtomicBool::new(env_truthy("EASYTIME_TRACE")),
            epoch: AtomicU64::new(0),
            clock: Mutex::new(Clock::system()),
            seq: AtomicU64::new(0),
            next_span_id: AtomicU64::new(1),
            sinks: Mutex::new(Vec::new()),
            manifest: Mutex::new(BTreeMap::new()),
        }
    }
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

/// The allocation-profiling gate. Process-global and outside the
/// [`Recorder`] on purpose: [`count_alloc`] runs inside the global
/// allocator and must not trigger (or wait on) recorder initialization.
static PROF_ALLOC: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// (allocation count, allocated bytes) observed on this thread since
    /// it started, maintained by [`count_alloc`].
    static ALLOC_TALLY: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(Recorder::from_env)
}

/// Poison-recovering lock: a panicked recorder thread must not disable
/// observability for everyone else.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread cache of the registered sink and the clock snapshot.
struct Local {
    epoch: u64,
    clock: Clock,
    sink: Arc<Mutex<ThreadSink>>,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's sink and clock, (re)registering if the
/// cache is missing or stale.
fn with_local<R>(r: &'static Recorder, f: impl FnOnce(&Clock, &Mutex<ThreadSink>) -> R) -> R {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let epoch = r.epoch.load(Ordering::Acquire);
        let stale = match slot.as_ref() {
            Some(local) => local.epoch != epoch,
            None => true,
        };
        if stale {
            let sink = Arc::new(Mutex::new(ThreadSink::default()));
            lock(&r.sinks).push(Arc::clone(&sink));
            *slot = Some(Local { epoch, clock: lock(&r.clock).clone(), sink });
        }
        match slot.as_ref() {
            Some(local) => f(&local.clock, &local.sink),
            // Unreachable: the slot was just filled above.
            None => f(&Clock::system(), &Mutex::new(ThreadSink::default())),
        }
    })
}

pub(crate) fn enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

pub(crate) fn set_enabled(on: bool) {
    recorder().enabled.store(on, Ordering::Relaxed);
}

pub(crate) fn prof_alloc_enabled() -> bool {
    PROF_ALLOC.load(Ordering::Relaxed)
}

pub(crate) fn set_prof_alloc(on: bool) {
    PROF_ALLOC.store(on, Ordering::Relaxed);
}

pub(crate) fn count_alloc(bytes: usize) {
    if !PROF_ALLOC.load(Ordering::Relaxed) {
        return;
    }
    // try_with: the hook can fire during TLS teardown, where .with panics.
    let _ = ALLOC_TALLY.try_with(|tally| {
        let (n, b) = tally.get();
        tally.set((n.wrapping_add(1), b.wrapping_add(bytes as u64)));
    });
}

/// This thread's (alloc count, alloc bytes) tally, or zeros when
/// allocation profiling is off.
fn alloc_tally() -> (u64, u64) {
    if !PROF_ALLOC.load(Ordering::Relaxed) {
        return (0, 0);
    }
    ALLOC_TALLY.try_with(Cell::get).unwrap_or((0, 0))
}

pub(crate) fn install_clock(clock: Clock) {
    let r = recorder();
    *lock(&r.clock) = clock;
    r.epoch.fetch_add(1, Ordering::AcqRel);
}

pub(crate) fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let r = recorder();
    let id = r.next_span_id.fetch_add(1, Ordering::Relaxed);
    let seq = r.seq.fetch_add(1, Ordering::Relaxed);
    with_local(r, |clock, sink| {
        let start_ns = clock.now_nanos();
        let mut sink = lock(sink);
        let parent = sink.stack.last().copied().unwrap_or(0);
        sink.stack.push(id);
        let name = name.to_string();
        // Snapshot the tally *after* the span's own bookkeeping allocs
        // (name copy, sink registration) so they don't pollute the delta.
        let (allocs_at_open, alloc_bytes_at_open) = alloc_tally();
        SpanGuard {
            active: Some(ActiveSpan {
                id,
                parent,
                seq,
                name,
                start_ns,
                allocs_at_open,
                alloc_bytes_at_open,
                attrs: Vec::new(),
            }),
        }
    })
}

pub(crate) fn finish_span(active: ActiveSpan) {
    // Read the tally before any of finish's own bookkeeping allocates.
    // saturating_sub: a guard dropped on a different thread than it was
    // opened on sees an unrelated tally; the delta degrades to zero
    // instead of a garbage count.
    let (allocs_now, alloc_bytes_now) = alloc_tally();
    let allocs = allocs_now.saturating_sub(active.allocs_at_open);
    let alloc_bytes = alloc_bytes_now.saturating_sub(active.alloc_bytes_at_open);
    let r = recorder();
    with_local(r, |clock, sink| {
        let end_ns = clock.now_nanos();
        let mut sink = lock(sink);
        // Pop our id; tolerate out-of-order drops and epoch resets.
        if let Some(pos) = sink.stack.iter().rposition(|&id| id == active.id) {
            let _ = sink.stack.remove(pos);
        }
        let dur_ns = end_ns.saturating_sub(active.start_ns);
        sink.spans.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            seq: active.seq,
            name: active.name,
            start_ns: active.start_ns,
            dur_ns,
            allocs,
            alloc_bytes,
            attrs: active.attrs,
        });
    });
}

pub(crate) fn add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(recorder(), |_clock, sink| {
        let mut sink = lock(sink);
        *sink.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

pub(crate) fn add_labeled(name: &str, label: &str, delta: u64) {
    if !enabled() {
        return;
    }
    add(&format!("{name}.{label}"), delta);
}

pub(crate) fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let r = recorder();
    let seq = r.seq.fetch_add(1, Ordering::Relaxed);
    with_local(r, |_clock, sink| {
        let mut sink = lock(sink);
        let _ = sink.gauges.insert(name.to_string(), (seq, value));
    });
}

pub(crate) fn observe(name: &str, bounds: &[f64], value: f64) {
    if !enabled() {
        return;
    }
    with_local(recorder(), |_clock, sink| {
        let mut sink = lock(sink);
        sink.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    });
}

pub(crate) fn event(level: Level, target: &str, message: &str) {
    if !enabled() {
        return;
    }
    let r = recorder();
    let seq = r.seq.fetch_add(1, Ordering::Relaxed);
    with_local(r, |clock, sink| {
        let t_ns = clock.now_nanos();
        let mut sink = lock(sink);
        let span = sink.stack.last().copied().unwrap_or(0);
        sink.events.push(EventRecord {
            seq,
            t_ns,
            span,
            level,
            target: target.to_string(),
            message: message.to_string(),
        });
    });
}

pub(crate) fn manifest_set(key: &str, value: AttrValue) {
    let r = recorder();
    let _ = lock(&r.manifest).insert(key.to_string(), value);
}

pub(crate) fn drain() -> TraceData {
    let r = recorder();
    let mut data = TraceData::default();
    // Block-scoped so the registry guard drops before the merge below —
    // the heavy per-sink work only ever holds one sink lock at a time.
    let sinks: Vec<Arc<Mutex<ThreadSink>>> = { lock(&r.sinks).clone() };
    // Gauges carry their write seq until the cross-thread merge resolves
    // last-write-wins.
    let mut gauge_seqs: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for sink in &sinks {
        let mut sink = lock(sink);
        data.spans.append(&mut sink.spans);
        data.events.append(&mut sink.events);
        for (name, count) in std::mem::take(&mut sink.counters) {
            *data.counters.entry(name).or_insert(0) += count;
        }
        for (name, (seq, value)) in std::mem::take(&mut sink.gauges) {
            match gauge_seqs.get(&name) {
                Some((existing, _)) if *existing >= seq => {}
                _ => {
                    let _ = gauge_seqs.insert(name, (seq, value));
                }
            }
        }
        for (name, hist) in std::mem::take(&mut sink.histograms) {
            match data.histograms.get_mut(&name) {
                Some(existing) => existing.merge(&hist),
                None => {
                    let _ = data.histograms.insert(name, hist);
                }
            }
        }
    }
    data.gauges = gauge_seqs.into_iter().map(|(name, (_, value))| (name, value)).collect();
    data.spans.sort_by_key(|s| s.seq);
    data.events.sort_by_key(|e| e.seq);
    // Auto-record every span's duration into a per-name log2 histogram.
    // Built here from the merged span list — rather than on every span
    // drop — so span finish stays cheap and never allocates under the
    // sink lock; the result is identical because the histogram is a pure
    // function of the (name, dur_ns) multiset.
    for s in &data.spans {
        match data.durations.get_mut(&s.name) {
            Some(h) => h.record(s.dur_ns as f64),
            None => {
                let mut h = Histogram::log2();
                h.record(s.dur_ns as f64);
                let _ = data.durations.insert(s.name.clone(), h);
            }
        }
    }
    data.manifest = std::mem::take(&mut *lock(&r.manifest));
    data
}

pub(crate) fn reset() {
    let r = recorder();
    let _ = drain();
    lock(&r.sinks).clear();
    lock(&r.manifest).clear();
    r.seq.store(0, Ordering::Relaxed);
    r.next_span_id.store(1, Ordering::Relaxed);
    r.epoch.fetch_add(1, Ordering::AcqRel);
}
