//! Fixed-bucket histograms.
//!
//! Bucket assignment follows the workspace R6 NaN policy: a sample must
//! never silently vanish, so NaN and ±inf samples land in the overflow
//! bucket (alongside finite samples above the last bound) instead of being
//! dropped. `count` therefore always equals the number of `record` calls.

/// Default bucket upper bounds for latency histograms, in milliseconds:
/// 1µs … 10s in decade steps.
pub(crate) const DEFAULT_LATENCY_BOUNDS_MS: &[f64] =
    &[0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// A fixed-bucket histogram with an explicit overflow bucket.
///
/// Bucket `i` counts samples `v` with `v <= bounds[i]` (and
/// `v > bounds[i-1]` for `i > 0`). Samples above the last bound, NaN, and
/// ±inf are counted in [`Histogram::overflow`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_finite: f64,
}

impl Histogram {
    /// A histogram over ascending upper `bounds`. Bounds are sorted and
    /// non-finite entries removed, so construction cannot produce a
    /// malformed bucket layout.
    pub fn new(bounds: &[f64]) -> Histogram {
        let mut clean: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        clean.sort_by(f64::total_cmp);
        clean.dedup_by(|a, b| a.total_cmp(b).is_eq());
        let n = clean.len();
        Histogram { bounds: clean, counts: vec![0; n], overflow: 0, total: 0, sum_finite: 0.0 }
    }

    /// Index of the bucket `v` falls into, or `None` for the overflow
    /// bucket (above the last bound, NaN, or ±inf).
    pub(crate) fn bucket_index(&self, v: f64) -> Option<usize> {
        if !v.is_finite() {
            return None;
        }
        self.bounds.iter().position(|&b| v <= b)
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v.is_finite() {
            self.sum_finite += v;
        }
        match self.bucket_index(v) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Folds another histogram into this one. When the bucket layouts
    /// match, counts merge elementwise; otherwise the other histogram's
    /// bucketed samples are preserved in this one's overflow bucket (the
    /// totals stay exact, only the placement degrades).
    pub(crate) fn merge(&mut self, other: &Histogram) {
        self.total += other.total;
        self.sum_finite += other.sum_finite;
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.overflow += other.overflow;
        } else {
            let bucketed: u64 = other.counts.iter().sum();
            self.overflow += bucketed + other.overflow;
        }
    }

    /// Bucket upper bounds, ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts, aligned with [`Histogram::bounds`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples above the last bound plus all non-finite samples.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded samples (bucketed + overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of the finite samples (non-finite samples are counted but not
    /// summed).
    pub(crate) fn sum_finite(&self) -> f64 {
        self.sum_finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_samples_land_in_the_lower_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(1.0); // exactly on a bound → that bucket
        h.record(1.0000001);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn samples_above_last_bound_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(10.5);
        h.record(1e12);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn non_finite_samples_route_to_overflow_not_dropped() {
        // R6 policy: NaN must never silently vanish.
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(0.5);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts(), &[1, 0]);
        // Only the finite sample contributes to the sum.
        assert!((h.sum_finite() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_zero_samples_fall_in_the_first_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.counts(), &[2, 0]);
    }

    #[test]
    fn bucket_index_matches_record() {
        let h = Histogram::new(&[0.5, 5.0]);
        assert_eq!(h.bucket_index(0.1), Some(0));
        assert_eq!(h.bucket_index(0.5), Some(0));
        assert_eq!(h.bucket_index(3.0), Some(1));
        assert_eq!(h.bucket_index(7.0), None);
        assert_eq!(h.bucket_index(f64::NAN), None);
        assert_eq!(h.bucket_index(f64::INFINITY), None);
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let h = Histogram::new(&[10.0, 1.0, f64::NAN, 1.0]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
    }

    #[test]
    fn merge_with_same_layout_is_elementwise() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        a.record(0.5);
        b.record(5.0);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn merge_with_different_layout_preserves_totals() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[2.0]);
        a.record(0.5);
        b.record(1.5);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts().iter().sum::<u64>() + a.overflow(), 2);
    }
}
