//! Fixed-bucket histograms with deterministic quantile estimates.
//!
//! Bucket assignment follows the workspace R6 NaN policy: a sample must
//! never silently vanish, so NaN and ±inf samples are counted — but in a
//! dedicated `invalid` counter, *separate* from the `overflow` bucket that
//! holds finite samples above the last bound. `total` therefore always
//! equals the number of `record` calls, and quantiles over merged
//! histograms can distinguish "slow" (overflow) from "invalid" (NaN/±inf).

/// Default bucket upper bounds for latency histograms, in milliseconds:
/// 1µs … 10s in decade steps.
pub(crate) const DEFAULT_LATENCY_BOUNDS_MS: &[f64] =
    &[0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// Number of buckets in the [`Histogram::log2`] layout: powers of two from
/// 2^0 ns up to 2^63 ns (≈292 years), covering nanoseconds → minutes with
/// one bucket per doubling.
// lint: allow(dead-pub) — the documented layout constant of the log2 duration histogram; consumers size merge buffers against it
pub const LOG2_BUCKETS: usize = 64;

/// A fixed-bucket histogram with explicit overflow and invalid counters.
///
/// Bucket `i` counts samples `v` with `v <= bounds[i]` (and
/// `v > bounds[i-1]` for `i > 0`). Finite samples above the last bound are
/// counted in [`Histogram::overflow`]; NaN and ±inf are counted in
/// [`Histogram::invalid`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    invalid: u64,
    total: u64,
    sum_finite: f64,
}

impl Histogram {
    /// A histogram over ascending upper `bounds`. Bounds are sorted and
    /// non-finite entries removed, so construction cannot produce a
    /// malformed bucket layout.
    pub fn new(bounds: &[f64]) -> Histogram {
        let mut clean: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        clean.sort_by(f64::total_cmp);
        clean.dedup_by(|a, b| a.total_cmp(b).is_eq());
        let n = clean.len();
        Histogram { bounds: clean, counts: vec![0; n], overflow: 0, invalid: 0, total: 0, sum_finite: 0.0 }
    }

    /// The log2 duration layout: [`LOG2_BUCKETS`] buckets whose upper
    /// bounds are exact powers of two in nanoseconds (`2^0 … 2^63`). This
    /// is the layout span durations are auto-recorded into, and the one the
    /// serving engine's latency quantiles will reuse: every histogram built
    /// here has an identical layout, so cross-thread merges are always
    /// elementwise and quantiles are exact regardless of merge order.
    pub fn log2() -> Histogram {
        // Powers of two are exact in f64 up to well beyond 2^63.
        let bounds: Vec<f64> = (0..LOG2_BUCKETS).map(|i| {
            // i < 64, so the cast to i32 is lossless.
            2f64.powi(i as i32)
        }).collect();
        let n = bounds.len();
        Histogram { bounds, counts: vec![0; n], overflow: 0, invalid: 0, total: 0, sum_finite: 0.0 }
    }

    /// Index of the bucket `v` falls into, or `None` when `v` belongs in
    /// the overflow bucket (finite, above the last bound) or the invalid
    /// counter (NaN, ±inf).
    pub(crate) fn bucket_index(&self, v: f64) -> Option<usize> {
        if !v.is_finite() {
            return None;
        }
        self.bounds.iter().position(|&b| v <= b)
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v.is_finite() {
            self.sum_finite += v;
            match self.bucket_index(v) {
                Some(i) => self.counts[i] += 1,
                None => self.overflow += 1,
            }
        } else {
            self.invalid += 1;
        }
    }

    /// Folds another histogram into this one. When the bucket layouts
    /// match, counts merge elementwise; otherwise the other histogram's
    /// bucketed samples are preserved in this one's overflow bucket (the
    /// totals stay exact, only the placement degrades). Invalid counts
    /// always merge into `invalid`. Merging is commutative and associative
    /// on matching layouts, so quantiles of the merged histogram do not
    /// depend on the order sinks were merged in.
    pub fn merge(&mut self, other: &Histogram) {
        self.total += other.total;
        self.sum_finite += other.sum_finite;
        self.invalid += other.invalid;
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.overflow += other.overflow;
        } else {
            let bucketed: u64 = other.counts.iter().sum();
            self.overflow += bucketed + other.overflow;
        }
    }

    /// Deterministic upper-bound quantile estimate.
    ///
    /// Convention: the rank is `ceil(q * finite)` clamped to
    /// `[1, finite]`, where `finite = total - invalid` is the number of
    /// finite samples; the estimate is the upper bound of the bucket
    /// containing that rank. A rank that lands in the overflow bucket
    /// returns `+inf` (rendered as JSON `null`), and a histogram with no
    /// finite samples returns NaN. Because the estimate is a pure function
    /// of the summed bucket counts, it is exact under bucket-wise merge
    /// regardless of thread-sink merge order.
    pub fn quantile(&self, q: f64) -> f64 {
        let finite = self.total - self.invalid;
        if finite == 0 {
            return f64::NAN;
        }
        // ceil(q * finite), clamped to [1, finite]; q is a small constant
        // like 0.99 so the f64 product is exact enough at any real count.
        let rank = (q * finite as f64).ceil().max(1.0).min(finite as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i];
            }
        }
        f64::INFINITY
    }

    /// Bucket upper bounds, ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts, aligned with [`Histogram::bounds`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Finite samples above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-finite samples (NaN, ±inf) — counted, never bucketed.
    // lint: allow(dead-pub) — accessor paired with `overflow`; the metrics.json renderer and external schema consumers read it
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// Total number of recorded samples (bucketed + overflow + invalid).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of the finite samples (non-finite samples are counted but not
    /// summed).
    pub(crate) fn sum_finite(&self) -> f64 {
        self.sum_finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_samples_land_in_the_lower_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(1.0); // exactly on a bound → that bucket
        h.record(1.0000001);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn samples_above_last_bound_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(10.5);
        h.record(1e12);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.invalid(), 0);
    }

    #[test]
    fn non_finite_samples_are_counted_as_invalid_not_overflow() {
        // R6 policy: NaN must never silently vanish — but it must also not
        // masquerade as a slow sample.
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(0.5);
        h.record(11.0);
        assert_eq!(h.invalid(), 3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts(), &[1, 0]);
        // Only the finite samples contribute to the sum.
        assert!((h.sum_finite() - 11.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_zero_samples_fall_in_the_first_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.counts(), &[2, 0]);
    }

    #[test]
    fn bucket_index_matches_record() {
        let h = Histogram::new(&[0.5, 5.0]);
        assert_eq!(h.bucket_index(0.1), Some(0));
        assert_eq!(h.bucket_index(0.5), Some(0));
        assert_eq!(h.bucket_index(3.0), Some(1));
        assert_eq!(h.bucket_index(7.0), None);
        assert_eq!(h.bucket_index(f64::NAN), None);
        assert_eq!(h.bucket_index(f64::INFINITY), None);
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let h = Histogram::new(&[10.0, 1.0, f64::NAN, 1.0]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
    }

    #[test]
    fn merge_with_same_layout_is_elementwise() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        a.record(0.5);
        b.record(5.0);
        b.record(f64::NAN);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.invalid(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn merge_with_different_layout_preserves_totals() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.invalid(), 1);
        assert_eq!(a.counts().iter().sum::<u64>() + a.overflow(), 2);
    }

    #[test]
    fn log2_layout_covers_ns_to_minutes() {
        let h = Histogram::log2();
        assert_eq!(h.bounds().len(), LOG2_BUCKETS);
        assert_eq!(h.bounds()[0], 1.0);
        assert_eq!(h.bounds()[1], 2.0);
        // 2^36 ns ≈ 68.7 s: minute-scale durations stay bucketed.
        assert_eq!(h.bounds()[36], 68_719_476_736.0);
        assert_eq!(h.bounds()[63], 2f64.powi(63));
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let mut h = Histogram::log2();
        // 5 ns → bucket bound 8; 7 ns → 8; 25 ns → 32.
        h.record(5.0);
        h.record(7.0);
        h.record(25.0);
        assert_eq!(h.quantile(0.5), 8.0);
        assert_eq!(h.quantile(0.9), 32.0);
        assert_eq!(h.quantile(0.99), 32.0);
        // Lowest rank clamps to 1.
        assert_eq!(h.quantile(0.0001), 8.0);
    }

    #[test]
    fn quantile_ignores_invalid_and_reports_overflow_as_inf() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(f64::NAN); // invalid: excluded from ranks
        h.record(1e9); // overflow: the slow tail
        assert_eq!(h.quantile(0.5), 1.0);
        assert!(h.quantile(0.99).is_infinite());
        let empty = Histogram::log2();
        assert!(empty.quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_is_exact_under_merge() {
        let samples = [3.0, 9.0, 17.0, 100.0, 1.5, 6.0, 40.0, 2.0];
        let mut whole = Histogram::log2();
        for &s in &samples {
            whole.record(s);
        }
        // Split the same samples across three histograms and merge in a
        // different order than they were recorded.
        let mut parts = [Histogram::log2(), Histogram::log2(), Histogram::log2()];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].record(s);
        }
        let mut merged = Histogram::log2();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(whole.quantile(q), merged.quantile(q));
        }
    }
}
