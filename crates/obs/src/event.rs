//! Structured log events — the replacement for ad-hoc `eprintln!`.

/// Event severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics.
    Debug,
    /// Normal progress information.
    Info,
    /// Something degraded but handled (a dropped ensemble member, a model
    /// failure captured in a record).
    Warn,
    /// An operation failed outright.
    Error,
}

impl Level {
    /// Lower-case name used in JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A recorded event as it appears in `trace.jsonl`.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through TraceData's pub fields, which R17's item-signature scan does not cover
pub struct EventRecord {
    /// Global sequence number; trace order interleaves events with span
    /// starts.
    pub seq: u64,
    /// Timestamp in nanoseconds since the recorder clock's origin.
    pub t_ns: u64,
    /// Id of the innermost open span on the emitting thread, or 0.
    pub span: u64,
    /// Severity.
    pub level: Level,
    /// Component that emitted the event (`eval.pipeline`, `automl.ensemble`).
    pub target: String,
    /// Human-readable message.
    pub message: String,
}
