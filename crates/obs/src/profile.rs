//! Self-time attribution: collapsed flame profiles and per-stage summaries.
//!
//! Everything here is a pure function of a drained [`TraceData`], computed
//! at render time from the span tree:
//!
//! * **Self time** of a span is its duration minus the summed durations of
//!   its direct children (saturating). Because children are sequential
//!   RAII scopes on the same thread, the subtraction is exact and the
//!   self-times of a trace partition its root durations:
//!   `Σ self_ns == Σ root dur_ns`.
//! * **Flame stacks** are `;`-joined span-name paths from the root down
//!   (`root;child;leaf`), keyed deterministically in byte order. A span
//!   whose parent is unknown (still open at drain, or from a previous
//!   epoch) is treated as a root.
//! * **Allocation attribution** mirrors self time: a stage's `allocs` are
//!   the span's recorded (inclusive) allocation delta minus its direct
//!   children's, so nested spans never double-count.
//!
//! The rendered `PROFILE.json` deliberately excludes the run manifest:
//! the manifest records thread counts and other run-shape facts, and the
//! profile must stay byte-identical across 1/3/8-thread runs of the same
//! workload.

use crate::json::{push_f64, push_str};
use crate::sink::TraceData;
use std::collections::BTreeMap;

/// Version of the `PROFILE.json` schema; bump when keys change.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Aggregate of all spans sharing a name, with attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed (inclusive) duration in nanoseconds.
    pub total_ns: u64,
    /// Summed self time: total minus direct-child time, per span.
    pub self_ns: u64,
    /// Shortest span in nanoseconds.
    pub min_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
    /// Upper-bound duration quantiles from the stage's log2 histogram
    /// (see [`crate::Histogram::quantile`]); NaN when the stage has no
    /// samples.
    pub p50_ns: f64,
    /// 90th percentile upper bound.
    pub p90_ns: f64,
    /// 95th percentile upper bound.
    pub p95_ns: f64,
    /// 99th percentile upper bound.
    pub p99_ns: f64,
    /// Self heap allocations (inclusive minus direct children).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// A computed profile: per-stage attribution plus collapsed flame stacks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Per-stage summaries keyed by span name.
    pub stages: BTreeMap<String, StageProfile>,
    /// Collapsed flame stacks: `root;child;leaf` → summed self time (ns).
    pub flame: BTreeMap<String, u64>,
    /// Summed duration of root spans (no parent, or parent unknown).
    pub total_ns: u64,
    /// Summed self time over all spans; equals `total_ns` on a clean
    /// trace (children are nested RAII scopes, so nothing saturates).
    pub self_total_ns: u64,
}

impl Profile {
    /// Computes attribution from a drained trace. Pure: the same trace
    /// always produces the same profile.
    pub fn from_trace(data: &TraceData) -> Profile {
        // Direct-child duration and allocation sums, keyed by parent id.
        let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
        let mut child_allocs: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let known: BTreeMap<u64, &crate::span::SpanRecord> =
            data.spans.iter().map(|s| (s.id, s)).collect();
        for s in &data.spans {
            if s.parent != 0 && known.contains_key(&s.parent) {
                *child_dur.entry(s.parent).or_insert(0) += s.dur_ns;
                let slot = child_allocs.entry(s.parent).or_insert((0, 0));
                slot.0 += s.allocs;
                slot.1 += s.alloc_bytes;
            }
        }

        let mut profile = Profile::default();
        for s in &data.spans {
            let kids = child_dur.get(&s.id).copied().unwrap_or(0);
            let self_ns = s.dur_ns.saturating_sub(kids);
            let (kid_allocs, kid_bytes) = child_allocs.get(&s.id).copied().unwrap_or((0, 0));
            let self_allocs = s.allocs.saturating_sub(kid_allocs);
            let self_bytes = s.alloc_bytes.saturating_sub(kid_bytes);
            let is_root = s.parent == 0 || !known.contains_key(&s.parent);
            if is_root {
                profile.total_ns += s.dur_ns;
            }
            profile.self_total_ns += self_ns;

            let entry = profile.stages.entry(s.name.clone()).or_insert(StageProfile {
                count: 0,
                total_ns: 0,
                self_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
                p50_ns: f64::NAN,
                p90_ns: f64::NAN,
                p95_ns: f64::NAN,
                p99_ns: f64::NAN,
                allocs: 0,
                alloc_bytes: 0,
            });
            entry.count += 1;
            entry.total_ns += s.dur_ns;
            entry.self_ns += self_ns;
            entry.min_ns = entry.min_ns.min(s.dur_ns);
            entry.max_ns = entry.max_ns.max(s.dur_ns);
            entry.allocs += self_allocs;
            entry.alloc_bytes += self_bytes;

            *profile.flame.entry(stack_of(&known, s)).or_insert(0) += self_ns;
        }

        // Quantiles come from the merged per-name duration histograms —
        // exact under bucket-wise merge, so independent of thread count.
        for (name, stage) in &mut profile.stages {
            if let Some(h) = data.durations.get(name) {
                stage.p50_ns = h.quantile(0.50);
                stage.p90_ns = h.quantile(0.90);
                stage.p95_ns = h.quantile(0.95);
                stage.p99_ns = h.quantile(0.99);
            }
        }
        profile
    }
}

/// The `;`-joined name path from the root to `s`. Parent ids strictly
/// precede child ids (the id counter is monotonic and the parent is read
/// from the open-span stack), so the walk always terminates.
fn stack_of(known: &BTreeMap<u64, &crate::span::SpanRecord>, s: &crate::span::SpanRecord) -> String {
    let mut names: Vec<&str> = vec![s.name.as_str()];
    let mut parent = s.parent;
    while parent != 0 {
        match known.get(&parent) {
            Some(p) => {
                names.push(p.name.as_str());
                parent = p.parent;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(";")
}

/// Renders the collapsed flame profile: one `stack self_ns` line per
/// stack, byte-sorted — the format flamegraph tooling consumes.
pub fn render_profile_txt(profile: &Profile) -> String {
    let mut out = String::new();
    for (stack, self_ns) in &profile.flame {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&format!("{self_ns}"));
        out.push('\n');
    }
    out
}

/// Renders `PROFILE.json` (2-space indent, sorted keys, schema version
/// pinned to [`PROFILE_SCHEMA_VERSION`]).
pub fn render_profile_json(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {PROFILE_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"total_ns\": {},\n", profile.total_ns));
    out.push_str(&format!("  \"self_total_ns\": {},\n", profile.self_total_ns));
    out.push_str("  \"stages\": {");
    for (i, (name, st)) in profile.stages.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, name);
        out.push_str(&format!(
            ": {{\"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, ",
            st.count, st.total_ns, st.self_ns, st.min_ns, st.max_ns
        ));
        out.push_str("\"p50_ns\": ");
        push_f64(&mut out, st.p50_ns);
        out.push_str(", \"p90_ns\": ");
        push_f64(&mut out, st.p90_ns);
        out.push_str(", \"p95_ns\": ");
        push_f64(&mut out, st.p95_ns);
        out.push_str(", \"p99_ns\": ");
        push_f64(&mut out, st.p99_ns);
        out.push_str(&format!(
            ", \"allocs\": {}, \"alloc_bytes\": {}, \"allocs_per_span\": ",
            st.allocs, st.alloc_bytes
        ));
        // Self-allocs averaged over the stage's spans; count is ≥ 1 for
        // any stage that exists.
        push_f64(&mut out, st.allocs as f64 / st.count as f64);
        out.push('}');
    }
    if !profile.stages.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str("  \"flame\": {");
    for (i, (stack, self_ns)) in profile.flame.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, stack);
        out.push_str(&format!(": {self_ns}"));
    }
    if !profile.flame.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn span(id: u64, parent: u64, seq: u64, name: &str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            seq,
            name: name.to_string(),
            start_ns: 0,
            dur_ns,
            allocs: 0,
            alloc_bytes: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_partitions_the_root() {
        let mut data = TraceData::default();
        data.spans.push(span(1, 0, 0, "root", 100));
        data.spans.push(span(2, 1, 1, "a", 30));
        data.spans.push(span(3, 1, 2, "b", 50));
        data.spans.push(span(4, 3, 3, "b.inner", 20));
        let p = Profile::from_trace(&data);
        assert_eq!(p.total_ns, 100);
        assert_eq!(p.self_total_ns, 100);
        assert_eq!(p.stages["root"].self_ns, 20);
        assert_eq!(p.stages["a"].self_ns, 30);
        assert_eq!(p.stages["b"].self_ns, 30);
        assert_eq!(p.stages["b.inner"].self_ns, 20);
    }

    #[test]
    fn flame_stacks_join_names_root_down() {
        let mut data = TraceData::default();
        data.spans.push(span(1, 0, 0, "root", 10));
        data.spans.push(span(2, 1, 1, "leaf", 4));
        let p = Profile::from_trace(&data);
        let txt = render_profile_txt(&p);
        assert_eq!(txt, "root 6\nroot;leaf 4\n");
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let mut data = TraceData::default();
        // Parent id 99 never finished — treat the child as a root.
        data.spans.push(span(2, 99, 0, "orphan", 7));
        let p = Profile::from_trace(&data);
        assert_eq!(p.total_ns, 7);
        assert!(p.flame.contains_key("orphan"));
    }

    #[test]
    fn alloc_attribution_subtracts_children() {
        let mut data = TraceData::default();
        let mut root = span(1, 0, 0, "root", 100);
        root.allocs = 10;
        root.alloc_bytes = 1000;
        let mut kid = span(2, 1, 1, "kid", 40);
        kid.allocs = 6;
        kid.alloc_bytes = 600;
        data.spans.push(root);
        data.spans.push(kid);
        let p = Profile::from_trace(&data);
        assert_eq!(p.stages["root"].allocs, 4);
        assert_eq!(p.stages["root"].alloc_bytes, 400);
        assert_eq!(p.stages["kid"].allocs, 6);
    }

    #[test]
    fn profile_json_carries_the_schema_version() {
        let p = Profile::from_trace(&TraceData::default());
        let json = render_profile_json(&p);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"total_ns\": 0"));
    }
}
