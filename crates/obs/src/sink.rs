//! Sinks: `trace.jsonl` (one JSON object per span/event, in start order)
//! and `metrics.json` (aggregated summary + run manifest).
//!
//! Both renderers are pure functions of a [`TraceData`], so the same data
//! always produces the same bytes — the determinism tests rely on this.

use crate::event::EventRecord;
use crate::json::{push_attr, push_f64, push_str};
use crate::metrics::Histogram;
use crate::span::{AttrValue, SpanRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Version of the `metrics.json` schema; CI fails when the emitted file
/// doesn't carry this exact value, making schema drift loud.
/// v2: histogram objects gained an `"invalid"` counter (NaN/±inf split
/// out of `"overflow"`).
pub(crate) const METRICS_SCHEMA_VERSION: u64 = 2;

/// Everything recorded between two drains, ready for rendering.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceData {
    /// Finished spans, sorted by start sequence.
    pub spans: Vec<SpanRecord>,
    /// Events, sorted by sequence.
    pub events: Vec<EventRecord>,
    /// Monotonic counters, merged across threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauges after cross-thread last-write-wins resolution.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, merged across threads.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span-name log2 duration histograms, built automatically at
    /// drain from every finished span — no manual `observe` calls.
    /// Rendered as quantiles in `PROFILE.json` rather than dumped into
    /// `metrics.json` (64 buckets per name would swamp it).
    pub durations: BTreeMap<String, Histogram>,
    /// Run manifest entries.
    pub manifest: BTreeMap<String, AttrValue>,
}

/// Aggregate of all spans sharing a name — the per-stage summary in
/// `metrics.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Shortest span in nanoseconds.
    pub min_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
}

impl TraceData {
    /// Per-stage summaries keyed by span name.
    pub fn stages(&self) -> BTreeMap<&str, StageSummary> {
        let mut out: BTreeMap<&str, StageSummary> = BTreeMap::new();
        for s in &self.spans {
            let entry = out.entry(s.name.as_str()).or_insert(StageSummary {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            entry.count += 1;
            entry.total_ns += s.dur_ns;
            entry.min_ns = entry.min_ns.min(s.dur_ns);
            entry.max_ns = entry.max_ns.max(s.dur_ns);
        }
        out
    }

    /// Fraction of `root`'s duration covered by its direct children —
    /// the "per-stage spans cover ≥ 95% of wall time" acceptance check.
    /// Returns 1.0 for a zero-length root (nothing left uncovered).
    pub fn child_coverage(&self, root_id: u64) -> f64 {
        let Some(root) = self.spans.iter().find(|s| s.id == root_id) else {
            return 0.0;
        };
        if root.dur_ns == 0 {
            return 1.0;
        }
        let covered: u64 =
            self.spans.iter().filter(|s| s.parent == root_id).map(|s| s.dur_ns).sum();
        // Ratio of like-scaled nanosecond totals; u64→f64 rounding is
        // immaterial at this precision.
        covered.min(root.dur_ns) as f64 / root.dur_ns as f64
    }
}

fn push_attrs_object(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    let sorted: BTreeMap<&str, &AttrValue> =
        attrs.iter().map(|(k, v)| (*k, v)).collect();
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, k);
        out.push(':');
        push_attr(out, v);
    }
    out.push('}');
}

/// Renders the trace as JSON Lines: one object per span/event, sorted by
/// start sequence so nesting reads top-down.
pub fn render_trace_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    let mut spans = data.spans.iter().peekable();
    let mut events = data.events.iter().peekable();
    loop {
        let next_span_seq = spans.peek().map(|s| s.seq);
        let next_event_seq = events.peek().map(|e| e.seq);
        match (next_span_seq, next_event_seq) {
            (None, None) => break,
            (Some(ss), es) if es.map_or(true, |es| ss <= es) => {
                if let Some(s) = spans.next() {
                    push_span_line(&mut out, s);
                }
            }
            _ => {
                if let Some(e) = events.next() {
                    push_event_line(&mut out, e);
                }
            }
        }
    }
    out
}

fn push_span_line(out: &mut String, s: &SpanRecord) {
    out.push_str("{\"type\":\"span\",\"seq\":");
    out.push_str(&format!("{}", s.seq));
    out.push_str(",\"id\":");
    out.push_str(&format!("{}", s.id));
    out.push_str(",\"parent\":");
    out.push_str(&format!("{}", s.parent));
    out.push_str(",\"name\":");
    push_str(out, &s.name);
    out.push_str(",\"start_ns\":");
    out.push_str(&format!("{}", s.start_ns));
    out.push_str(",\"dur_ns\":");
    out.push_str(&format!("{}", s.dur_ns));
    // Allocation fields only appear when the counting hook recorded
    // something, keeping plain traces byte-compatible with schema v1.
    if s.allocs > 0 || s.alloc_bytes > 0 {
        out.push_str(&format!(",\"allocs\":{},\"alloc_bytes\":{}", s.allocs, s.alloc_bytes));
    }
    if !s.attrs.is_empty() {
        out.push_str(",\"attrs\":");
        push_attrs_object(out, &s.attrs);
    }
    out.push_str("}\n");
}

fn push_event_line(out: &mut String, e: &EventRecord) {
    out.push_str("{\"type\":\"event\",\"seq\":");
    out.push_str(&format!("{}", e.seq));
    out.push_str(",\"t_ns\":");
    out.push_str(&format!("{}", e.t_ns));
    out.push_str(",\"span\":");
    out.push_str(&format!("{}", e.span));
    out.push_str(",\"level\":");
    push_str(out, e.level.as_str());
    out.push_str(",\"target\":");
    push_str(out, &e.target);
    out.push_str(",\"message\":");
    push_str(out, &e.message);
    out.push_str("}\n");
}

/// Renders the aggregated `metrics.json` document (2-space indent, keys in
/// sorted order, schema version pinned to [`METRICS_SCHEMA_VERSION`]).
pub fn render_metrics_json(data: &TraceData) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {METRICS_SCHEMA_VERSION},\n"));

    out.push_str("  \"manifest\": {");
    for (i, (k, v)) in data.manifest.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, k);
        out.push_str(": ");
        push_attr(&mut out, v);
    }
    if !data.manifest.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"stages\": {");
    let stages = data.stages();
    for (i, (name, st)) in stages.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, name);
        out.push_str(&format!(
            ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            st.count, st.total_ns, st.min_ns, st.max_ns
        ));
    }
    if !stages.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"counters\": {");
    for (i, (name, count)) in data.counters.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, name);
        out.push_str(&format!(": {count}"));
    }
    if !data.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in data.gauges.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, name);
        out.push_str(": ");
        push_f64(&mut out, *value);
    }
    if !data.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in data.histograms.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, name);
        out.push_str(": {\"bounds\": [");
        for (j, b) in h.bounds().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_f64(&mut out, *b);
        }
        out.push_str("], \"counts\": [");
        for (j, c) in h.counts().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{c}"));
        }
        out.push_str(&format!(
            "], \"overflow\": {}, \"invalid\": {}, \"total\": {}, \"sum_finite\": ",
            h.overflow(),
            h.invalid(),
            h.total()
        ));
        push_f64(&mut out, h.sum_finite());
        out.push('}');
    }
    if !data.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"events\": {");
    let mut by_level: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &data.events {
        *by_level.entry(e.level.as_str()).or_insert(0) += 1;
    }
    for (i, (level, count)) in by_level.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        push_str(&mut out, level);
        out.push_str(&format!(": {count}"));
    }
    if !by_level.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n");

    out.push_str("}\n");
    out
}

/// Paths of the files a flush wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushPaths {
    /// The span/event trace (`trace.jsonl`).
    pub trace: PathBuf,
    /// The aggregated metrics + manifest (`metrics.json`).
    pub metrics: PathBuf,
    /// Per-stage attribution + quantiles (`PROFILE.json`).
    pub profile: PathBuf,
    /// Collapsed flame stacks (`profile.txt`).
    pub flame: PathBuf,
}

/// Writes `trace.jsonl`, `metrics.json`, `PROFILE.json`, and `profile.txt`
/// for `data` under `dir`, creating the directory if needed.
pub fn write_files(dir: &Path, data: &TraceData) -> std::io::Result<FlushPaths> {
    std::fs::create_dir_all(dir)?;
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");
    let profile = dir.join("PROFILE.json");
    let flame = dir.join("profile.txt");
    std::fs::write(&trace, render_trace_jsonl(data))?;
    std::fs::write(&metrics, render_metrics_json(data))?;
    let computed = crate::profile::Profile::from_trace(data);
    std::fs::write(&profile, crate::profile::render_profile_json(&computed))?;
    std::fs::write(&flame, crate::profile::render_profile_txt(&computed))?;
    Ok(FlushPaths { trace, metrics, profile, flame })
}
