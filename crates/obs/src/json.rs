//! Minimal deterministic JSON *writer*.
//!
//! `easytime-obs` sits below `easytime` in the dependency graph, so it
//! cannot reuse the facade's full `Json` value type; sinks only ever
//! serialize, so a few append-to-`String` helpers are all that's needed.
//! Output is deterministic by construction: map keys come from `BTreeMap`
//! iteration and floats use Rust's shortest-roundtrip formatting.

use crate::span::AttrValue;

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number, or `null` for non-finite values (JSON has
/// no NaN/inf; `null` keeps the slot visible rather than dropping it).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends an [`AttrValue`] as a JSON value.
pub(crate) fn push_attr(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Str(s) => push_str(out, s),
        AttrValue::Int(i) => out.push_str(&format!("{i}")),
        AttrValue::UInt(u) => out.push_str(&format!("{u}")),
        AttrValue::Float(f) => push_f64(out, *f),
        AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        AttrValue::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str(out, item);
            }
            out.push(']');
        }
    }
}

/// 64-bit FNV-1a hash of `bytes`, as 16 lower-case hex digits — the
/// workspace's config-hash format for run manifests.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, 2.5);
        assert_eq!(out, "null 2.5");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"easytime"), fnv1a_hex(b"easytime"));
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }
}
