//! Observability for the EasyTime workspace: hierarchical spans, metrics,
//! structured events, and machine-readable run manifests.
//!
//! The paper's reporting layer promises "logging + visualization" for every
//! evaluation run; this crate is the substrate that makes those numbers
//! trustworthy. Every stage of the pipeline — data prep, model fit,
//! forecasting, metric computation, SQL execution — reports through one
//! schema, so `results/trace.jsonl` and `results/metrics.json` are the
//! single source of truth for timings and counts.
//!
//! ## Design
//!
//! * **Spans** are RAII guards ([`SpanGuard`]) built on
//!   [`easytime_clock::Stopwatch`] semantics: creating one records a start
//!   time and a parent/child relationship (per-thread span stack); dropping
//!   it records the duration. Records land in *per-thread* collectors that
//!   are merged at flush, so the `std::thread::scope` fan-out in
//!   `evaluate_corpus` never contends on a global lock.
//! * **Metrics** are monotonic counters, last-write-wins gauges, and
//!   fixed-bucket [`Histogram`]s. Non-finite samples (NaN, ±inf) are
//!   counted in a dedicated `invalid` counter — never dropped (the
//!   workspace's R6 NaN policy) and never conflated with the overflow
//!   bucket's slow-but-finite samples.
//! * **Profiling**: every span drop auto-records its duration into a
//!   per-name [`Histogram::log2`] histogram, and [`Profile::from_trace`]
//!   computes self-time attribution (total minus direct-child time),
//!   collapsed flame stacks, p50/p90/p95/p99 upper-bound quantiles, and —
//!   when a counting allocator reports through [`count_alloc`] with
//!   `EASYTIME_PROF_ALLOC=1` — per-stage allocation counts. Rendered as
//!   `results/PROFILE.json` + `results/profile.txt` by [`write_files`].
//! * **Events** are structured log lines (level, target, message) that
//!   replace ad-hoc `eprintln!` diagnostics; lint rule R11 bans the latter
//!   in library code.
//! * **Determinism** (policy R8): all timestamps flow through
//!   [`easytime_clock::Clock`], never a direct `Instant::now()`. Tests
//!   install a [`easytime_clock::ManualClock`] via [`install_clock`] and get
//!   bit-identical output across runs; sinks emit in sorted order.
//!
//! ## Overhead gating
//!
//! Tracing is off unless the `EASYTIME_TRACE` environment variable is set
//! to a value other than `0`/`false` (or [`set_enabled`] is called). When
//! disabled, every entry point returns immediately without allocating —
//! [`span`] hands back an inert guard and counters are skipped — so
//! instrumented hot loops pay a single atomic load.
//!
//! ```
//! easytime_obs::set_enabled(true);
//! {
//!     let mut sp = easytime_obs::span("demo.stage");
//!     sp.attr("items", 3_u64);
//!     easytime_obs::add("demo.widgets", 3);
//! }
//! let data = easytime_obs::drain();
//! assert_eq!(data.spans.len(), 1);
//! easytime_obs::set_enabled(false);
//! ```

mod event;
mod json;
mod metrics;
mod profile;
mod recorder;
mod sink;
mod span;

pub use event::{EventRecord, Level};
pub use json::fnv1a_hex;
pub use metrics::{Histogram, LOG2_BUCKETS};
pub use profile::{
    render_profile_json, render_profile_txt, Profile, StageProfile, PROFILE_SCHEMA_VERSION,
};
pub use sink::{render_metrics_json, render_trace_jsonl, write_files, FlushPaths, TraceData};
pub use span::{AttrValue, SpanGuard, SpanRecord};

use easytime_clock::Clock;
use std::path::Path;

// lint: hot(per-window tracing gate; one OnceLock read plus one relaxed atomic load, pinned by obs/tests/no_alloc.rs)
/// True when tracing is currently enabled.
///
/// This is the no-op fast path's only cost: one `OnceLock` read and one
/// relaxed atomic load.
pub fn enabled() -> bool {
    recorder::enabled()
}

/// Turns tracing on or off programmatically, overriding `EASYTIME_TRACE`.
pub fn set_enabled(on: bool) {
    recorder::set_enabled(on);
}

// lint: hot(allocator-hook gate; a single process-global relaxed atomic load on the disabled path, pinned by obs/tests/no_alloc.rs)
/// True when per-span allocation accounting is on (`EASYTIME_PROF_ALLOC`
/// or [`set_prof_alloc`]). The off-path cost of the whole accounting
/// feature is this one relaxed atomic load inside [`count_alloc`].
pub fn prof_alloc_enabled() -> bool {
    recorder::prof_alloc_enabled()
}

/// Turns per-span allocation accounting on or off programmatically,
/// overriding `EASYTIME_PROF_ALLOC`. Only meaningful in a binary that
/// installs a counting global allocator reporting through
/// [`count_alloc`] (see the `exp_profile` bench bin).
pub fn set_prof_alloc(on: bool) {
    recorder::set_prof_alloc(on);
}

// lint: hot(global-allocator hook; off-path is one relaxed atomic load, on-path one thread-local Cell bump — never allocates and never touches the recorder singleton, pinned by obs/tests/no_alloc.rs)
/// Reports one heap allocation of `bytes` to the profiling tally. Called
/// by a counting `GlobalAlloc` wrapper; a no-op unless
/// [`prof_alloc_enabled`]. Safe to call from inside the allocator: it
/// never allocates and never initializes the recorder.
pub fn count_alloc(bytes: usize) {
    recorder::count_alloc(bytes);
}

/// Installs the clock all subsequent records read their timestamps from.
///
/// Tests pass `ManualClock::clock()` here to make span durations exact;
/// production code never needs to call this (the default is the system
/// monotonic clock).
pub fn install_clock(clock: Clock) {
    recorder::install_clock(clock);
}

// lint: hot(per-window span open; inert and allocation-free when tracing is off, pinned by obs/tests/no_alloc.rs)
/// Opens a span named `name`, parented to the innermost open span on this
/// thread. The span closes (and its duration is recorded) when the
/// returned guard drops. Inert and allocation-free when tracing is off.
pub fn span(name: &str) -> SpanGuard {
    recorder::span(name)
}

// lint: hot(per-window counter increment; allocation-free with tracing off, pinned by obs/tests/no_alloc.rs)
/// Increments the monotonic counter `name` by `delta`.
pub fn add(name: &str, delta: u64) {
    recorder::add(name, delta);
}

// lint: hot(per-window labeled counter increment; allocation-free with tracing off, pinned by obs/tests/no_alloc.rs)
/// Increments the counter `name.label` by `delta` — the labeled form used
/// for per-model fit/predict counts (`models.fit.naive`, …).
pub fn add_labeled(name: &str, label: &str, delta: u64) {
    recorder::add_labeled(name, label, delta);
}

/// Sets gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: f64) {
    recorder::gauge(name, value);
}

// lint: hot(per-window histogram sample; allocation-free with tracing off, pinned by obs/tests/no_alloc.rs)
/// Records `value` into histogram `name` using
/// [`DEFAULT_LATENCY_BOUNDS_MS`].
pub fn observe(name: &str, value: f64) {
    recorder::observe(name, metrics::DEFAULT_LATENCY_BOUNDS_MS, value);
}

/// Records `value` into histogram `name` with explicit bucket upper
/// `bounds` (ascending). The bounds passed on the histogram's first sample
/// win; later calls with different bounds still record into the existing
/// buckets.
// lint: allow(dead-pub) — histogram entry point with caller-chosen bounds; the R11-sanctioned surface
pub fn observe_with(name: &str, bounds: &[f64], value: f64) {
    recorder::observe(name, bounds, value);
}

/// Records a structured event at `level`, attached to the innermost open
/// span on this thread.
// lint: allow(dead-pub) — the structured-diagnostics entry point R11 routes library output through
pub fn event(level: Level, target: &str, message: &str) {
    recorder::event(level, target, message);
}

// lint: hot(diagnostic event emit reachable from the window loop; allocation-free with tracing off, pinned by obs/tests/no_alloc.rs)
/// [`event`] at [`Level::Warn`] — the replacement for diagnostic
/// `eprintln!` in library code.
pub fn warn(target: &str, message: &str) {
    recorder::event(Level::Warn, target, message);
}

/// [`event`] at [`Level::Info`].
pub fn info(target: &str, message: &str) {
    recorder::event(Level::Info, target, message);
}

/// Sets a run-manifest entry (config hash, seed, dataset count, …).
/// Manifest entries appear under `"manifest"` in `metrics.json`.
pub fn manifest_set(key: &str, value: impl Into<AttrValue>) {
    if enabled() {
        recorder::manifest_set(key, value.into());
    }
}

/// Sets a run-manifest entry holding a list of strings (dataset ids,
/// method names, …).
pub fn manifest_set_list(key: &str, values: &[String]) {
    if enabled() {
        recorder::manifest_set(key, AttrValue::List(values.to_vec()));
    }
}

/// Takes everything recorded so far — spans, events, metrics, manifest —
/// leaving the recorder empty but registered threads intact. Spans and
/// events come back sorted by sequence number (start order).
pub fn drain() -> TraceData {
    recorder::drain()
}

/// Clears all recorded data *and* resets sequence/span-id counters and the
/// manifest, so a subsequent identical workload produces byte-identical
/// output. Intended for tests.
pub fn reset() {
    recorder::reset();
}

/// Drains and writes `trace.jsonl` + `metrics.json` under `dir`
/// (creating it if needed).
pub fn flush(dir: &Path) -> std::io::Result<FlushPaths> {
    let data = drain();
    sink::write_files(dir, &data)
}

/// [`flush`], but a silent no-op when tracing is disabled.
pub fn flush_if_enabled(dir: &Path) -> std::io::Result<Option<FlushPaths>> {
    if enabled() {
        flush(dir).map(Some)
    } else {
        Ok(None)
    }
}
