//! Span guards, span records, and attribute values.

use crate::recorder;

/// A typed attribute value attached to spans and manifest entries.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string value.
    Str(String),
    /// A signed integer value.
    Int(i64),
    /// An unsigned integer value (counts, sizes).
    UInt(u64),
    /// A floating-point value; non-finite values serialize as JSON `null`.
    Float(f64),
    /// A boolean value.
    Bool(bool),
    /// A list of strings (dataset ids, method names).
    List(Vec<String>),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::UInt(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::UInt(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

/// A finished span as it appears in `trace.jsonl`.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through TraceData's pub fields, which R17's item-signature scan does not cover
pub struct SpanRecord {
    /// Unique span id (1-based; 0 is reserved for "no parent").
    pub id: u64,
    /// Id of the enclosing span at creation time, or 0 for a root span.
    pub parent: u64,
    /// Global sequence number assigned when the span *started*; sinks sort
    /// by this, so trace order is span start order.
    pub seq: u64,
    /// Span name (`eval.window`, `qa.nl2sql`, …).
    pub name: String,
    /// Start time in nanoseconds since the recorder clock's origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Heap allocations performed while this span was the innermost open
    /// span's *subtree* on its thread (children included; subtract child
    /// counts for self-allocs). Zero unless `EASYTIME_PROF_ALLOC` is on and
    /// a counting allocator is installed (see `exp_profile`).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Attributes set through [`SpanGuard::attr`], in insertion order.
    /// Keys are `'static` so setting an attribute never allocates for the
    /// key — only the value conversion may.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Internal state of a live span.
#[derive(Debug)]
pub(crate) struct ActiveSpan {
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) seq: u64,
    pub(crate) name: String,
    pub(crate) start_ns: u64,
    /// Thread-local allocation tally snapshots taken at open; the deltas
    /// at drop become [`SpanRecord::allocs`] / [`SpanRecord::alloc_bytes`].
    pub(crate) allocs_at_open: u64,
    pub(crate) alloc_bytes_at_open: u64,
    pub(crate) attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for an open span: records the span's duration when dropped.
///
/// When tracing is disabled the guard is inert — carrying it around costs
/// nothing and [`SpanGuard::attr`] never evaluates its conversion.
#[derive(Debug)]
pub struct SpanGuard {
    pub(crate) active: Option<ActiveSpan>,
}

impl SpanGuard {
    // lint: hot(per-window span attribute; the static key never allocates and the value conversion only runs when the span records, pinned by obs/tests/no_alloc.rs)
    /// Attaches an attribute to the span. The value conversion only runs
    /// when the span is actually recording; the `'static` key is stored
    /// without copying.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.into()));
        }
    }

    // lint: hot(per-window typed span attribute; no AttrValue conversion and no allocation on either path, pinned by obs/tests/no_alloc.rs)
    /// Typed fast path for the most common attribute shape: an unsigned
    /// count. Skips the `Into<AttrValue>` machinery entirely, so the call
    /// is statically allocation-free on both the recording and inert
    /// paths (amortized `Vec` growth aside).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, AttrValue::UInt(value)));
        }
    }

    /// True when this guard is recording (tracing was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// The span's id, or `None` when the guard is inert. Lets callers
    /// correlate a root span with [`crate::TraceData::child_coverage`].
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            recorder::finish_span(active);
        }
    }
}
