//! Determinism of the observability layer under a [`ManualClock`].
//!
//! The recorder is process-global, so every test here serializes on one
//! mutex, resets the recorder, and installs a fresh manual clock before
//! recording anything.

use easytime_clock::ManualClock;
use easytime_obs::{render_metrics_json, render_trace_jsonl, TraceData};
use std::sync::Mutex;

/// Serializes tests that touch the global recorder.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn with_recorder<R>(f: impl FnOnce(&ManualClock) -> R) -> R {
    let _guard = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    easytime_obs::set_enabled(true);
    easytime_obs::reset();
    let mc = ManualClock::new();
    easytime_obs::install_clock(mc.clock());
    let out = f(&mc);
    easytime_obs::set_enabled(false);
    easytime_obs::reset();
    out
}

#[test]
fn span_nesting_and_ordering_are_exact_under_manual_clock() {
    let data = with_recorder(|mc| {
        let mut outer = easytime_obs::span("outer");
        outer.attr("k", 2_u64);
        mc.advance_nanos(10);
        {
            let _inner_a = easytime_obs::span("inner.a");
            mc.advance_nanos(5);
        }
        {
            let _inner_b = easytime_obs::span("inner.b");
            mc.advance_nanos(7);
        }
        mc.advance_nanos(3);
        drop(outer);
        easytime_obs::drain()
    });

    assert_eq!(data.spans.len(), 3);
    // Trace order is start order: outer first, then the two children.
    assert_eq!(data.spans[0].name, "outer");
    assert_eq!(data.spans[1].name, "inner.a");
    assert_eq!(data.spans[2].name, "inner.b");

    let outer = &data.spans[0];
    assert_eq!(outer.parent, 0, "outer is a root span");
    assert_eq!(outer.start_ns, 0);
    assert_eq!(outer.dur_ns, 25);
    for child in &data.spans[1..] {
        assert_eq!(child.parent, outer.id, "{} nests under outer", child.name);
    }
    assert_eq!(data.spans[1].start_ns, 10);
    assert_eq!(data.spans[1].dur_ns, 5);
    assert_eq!(data.spans[2].start_ns, 15);
    assert_eq!(data.spans[2].dur_ns, 7);

    // Children exactly account for 12 of outer's 25ns.
    let covered = data.child_coverage(outer.id);
    assert!((covered - 12.0 / 25.0).abs() < 1e-12, "coverage {covered}");
}

#[test]
fn sibling_spans_after_a_drop_reparent_correctly() {
    let data = with_recorder(|mc| {
        {
            let _a = easytime_obs::span("a");
            mc.advance_nanos(1);
        }
        // `a` has dropped: `b` must be a new root, not a's child.
        let _b = easytime_obs::span("b");
        {
            let _c = easytime_obs::span("c");
            mc.advance_nanos(1);
        }
        drop(_b);
        easytime_obs::drain()
    });
    let by_name = |n: &str| data.spans.iter().find(|s| s.name == n).expect("span recorded");
    assert_eq!(by_name("a").parent, 0);
    assert_eq!(by_name("b").parent, 0);
    assert_eq!(by_name("c").parent, by_name("b").id);
}

#[test]
fn worker_thread_spans_merge_into_one_trace() {
    let data = with_recorder(|_mc| {
        let _root = easytime_obs::span("corpus");
        std::thread::scope(|scope| {
            for i in 0..4 {
                let _ = scope.spawn(move || {
                    let mut sp = easytime_obs::span("job");
                    sp.attr("worker", i as u64);
                    easytime_obs::add("jobs.done", 1);
                });
            }
        });
        drop(_root);
        easytime_obs::drain()
    });
    assert_eq!(data.spans.iter().filter(|s| s.name == "job").count(), 4);
    assert_eq!(data.counters.get("jobs.done"), Some(&4));
    // Spans on worker threads have no parent: the span stack is
    // per-thread, and the corpus root lives on the main thread.
    for s in data.spans.iter().filter(|s| s.name == "job") {
        assert_eq!(s.parent, 0);
    }
    // Sorted by seq regardless of which thread finished first.
    assert!(data.spans.windows(2).all(|w| w[0].seq < w[1].seq));
}

/// One fixed single-threaded workload exercising every record type.
fn workload(mc: &ManualClock) -> TraceData {
    easytime_obs::manifest_set("seed", 42_u64);
    easytime_obs::manifest_set("config_hash", easytime_obs::fnv1a_hex(b"cfg"));
    easytime_obs::manifest_set_list("dataset_ids", &["d1".to_string(), "d2".to_string()]);
    let mut corpus = easytime_obs::span("eval.corpus");
    corpus.attr("jobs", 2_u64);
    for origin in [96_u64, 120] {
        let mut w = easytime_obs::span("eval.window");
        w.attr("origin", origin);
        mc.advance_nanos(250);
        easytime_obs::add_labeled("models.fit", "naive", 1);
        easytime_obs::observe("window.ms", 0.25);
    }
    easytime_obs::gauge("rss.final", 123.5);
    easytime_obs::warn("eval.pipeline", "d2/theta failed: too short");
    mc.advance_nanos(100);
    drop(corpus);
    easytime_obs::drain()
}

#[test]
fn identical_runs_render_byte_identical_output() {
    let (metrics_a, trace_a) = with_recorder(|mc| {
        let d = workload(mc);
        (render_metrics_json(&d), render_trace_jsonl(&d))
    });
    let (metrics_b, trace_b) = with_recorder(|mc| {
        let d = workload(mc);
        (render_metrics_json(&d), render_trace_jsonl(&d))
    });
    assert_eq!(metrics_a, metrics_b, "metrics.json must be byte-identical");
    assert_eq!(trace_a, trace_b, "trace.jsonl must be byte-identical");
    // Sanity: the render actually contains the workload's structure.
    assert!(metrics_a.contains("\"schema_version\": 2"));
    assert!(metrics_a.contains("\"eval.window\""));
    assert!(metrics_a.contains("\"models.fit.naive\": 2"));
    assert!(metrics_a.contains("\"seed\""));
    assert!(trace_a.contains("\"name\":\"eval.corpus\""));
    assert!(trace_a.contains("\"level\":\"warn\""));
}

/// A fixed 12-job workload whose *recorded structure* is independent of
/// how many threads execute it: jobs are claimed from an atomic counter,
/// every job opens the same span pair, and the manual clock never
/// advances, so durations are zero on every thread.
fn threaded_workload(threads: usize) -> easytime_obs::Profile {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let root = easytime_obs::span("corpus");
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let _ = scope.spawn(move || {
                while next.fetch_add(1, Ordering::Relaxed) < 12 {
                    let mut job = easytime_obs::span("job");
                    job.attr_u64("items", 3);
                    let _step = easytime_obs::span("job.step");
                }
            });
        }
    });
    drop(root);
    easytime_obs::Profile::from_trace(&easytime_obs::drain())
}

#[test]
fn profile_output_is_byte_identical_across_thread_counts() {
    let mut rendered: Vec<(String, String)> = Vec::new();
    for threads in [1, 3, 8] {
        let profile = with_recorder(|_mc| threaded_workload(threads));
        assert_eq!(profile.stages["job"].count, 12);
        assert_eq!(profile.stages["job.step"].count, 12);
        rendered.push((
            easytime_obs::render_profile_json(&profile),
            easytime_obs::render_profile_txt(&profile),
        ));
    }
    for (json, txt) in &rendered[1..] {
        assert_eq!(json, &rendered[0].0, "PROFILE.json must not depend on thread count");
        assert_eq!(txt, &rendered[0].1, "profile.txt must not depend on thread count");
    }
    // Worker spans are roots (the span stack is per-thread), so the flame
    // has both the corpus root and the job;job.step stacks.
    assert!(rendered[0].1.contains("corpus 0\n"));
    assert!(rendered[0].1.contains("job;job.step 0\n"));
}

#[test]
fn self_time_attribution_is_exact_under_manual_clock() {
    let profile = with_recorder(|mc| {
        let outer = easytime_obs::span("outer");
        mc.advance_nanos(10);
        {
            let _a = easytime_obs::span("inner.a");
            mc.advance_nanos(5);
        }
        {
            let _b = easytime_obs::span("inner.b");
            mc.advance_nanos(7);
        }
        mc.advance_nanos(3);
        drop(outer);
        easytime_obs::Profile::from_trace(&easytime_obs::drain())
    });
    assert_eq!(profile.total_ns, 25);
    assert_eq!(profile.self_total_ns, 25, "self times partition the root");
    assert_eq!(profile.stages["outer"].self_ns, 13);
    assert_eq!(profile.stages["inner.a"].self_ns, 5);
    assert_eq!(profile.stages["inner.b"].self_ns, 7);
    let txt = easytime_obs::render_profile_txt(&profile);
    assert_eq!(txt, "outer 13\nouter;inner.a 5\nouter;inner.b 7\n");
    // Durations were auto-recorded into log2 histograms: 5 → bound 8,
    // 7 → 8, 25 → 32.
    assert_eq!(profile.stages["inner.a"].p50_ns, 8.0);
    assert_eq!(profile.stages["inner.b"].p99_ns, 8.0);
    assert_eq!(profile.stages["outer"].p50_ns, 32.0);
}

#[test]
fn quantiles_are_exact_under_shuffled_merge_orders() {
    use easytime_obs::Histogram;
    use easytime_rng::Xoshiro256pp;

    // 24 per-thread histograms with assorted finite, overflow, and
    // invalid samples.
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let parts: Vec<Histogram> = (0..24)
        .map(|i| {
            let mut h = Histogram::log2();
            for _ in 0..(5 + i % 7) {
                h.record(rng.gen_range_f64(1.0, 1e9));
            }
            if i % 5 == 0 {
                h.record(f64::NAN);
            }
            if i % 6 == 0 {
                h.record(1e30); // beyond 2^63: overflow
            }
            h
        })
        .collect();

    let merged_in = |order: &[usize]| {
        let mut whole = Histogram::log2();
        for &i in order {
            whole.merge(&parts[i]);
        }
        (whole.quantile(0.5), whole.quantile(0.9), whole.quantile(0.95), whole.quantile(0.99))
    };
    let mut order: Vec<usize> = (0..parts.len()).collect();
    let reference = merged_in(&order);
    for _ in 0..12 {
        rng.shuffle(&mut order);
        assert_eq!(merged_in(&order), reference, "quantiles must not depend on merge order");
    }
}

#[test]
fn drain_leaves_the_recorder_empty() {
    let (first, second) = with_recorder(|mc| {
        {
            let _sp = easytime_obs::span("once");
            mc.advance_nanos(1);
        }
        let first = easytime_obs::drain();
        let second = easytime_obs::drain();
        (first, second)
    });
    assert_eq!(first.spans.len(), 1);
    assert!(second.spans.is_empty());
    assert!(second.counters.is_empty());
    assert!(second.manifest.is_empty());
}
