//! Proof that the warm-start rolling engine reaches an allocation-free
//! steady state.
//!
//! A counting global allocator wraps the system allocator and a real
//! `evaluate` run under `RefitPolicy::WarmStart` is measured twice on the
//! same series — once capped at 50 windows, once at 500. Everything that
//! allocates is either per-*run* (record strings, window plan, score map)
//! or confined to the first few windows while the `WindowWorkspace`
//! buffers grow to capacity; after that, each additional window must cost
//! zero allocations. Equal counts for 50 vs 500 windows prove it: 450
//! extra steady-state windows, not one extra allocation.
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this test binary opts back in locally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use easytime_data::{Frequency, TimeSeries};
use easytime_eval::{EvalConfig, MetricRegistry, RefitPolicy, Strategy, ValidatedEvalConfig};
use easytime_models::ModelSpec;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn config(max_windows: usize, registry: &MetricRegistry) -> ValidatedEvalConfig {
    EvalConfig {
        strategy: Strategy::Rolling { horizon: 4, stride: 4, max_windows: Some(max_windows) },
        refit: RefitPolicy::WarmStart,
        ..EvalConfig::default()
    }
    .into_validated(registry)
    .expect("config is valid")
}

/// Allocation count of one `evaluate` run, minimized over several
/// repeats: the evaluation's own count is deterministic, while harness
/// threads sharing the process allocator can only *add* strays, so the
/// minimum converges to the true per-run cost.
fn measured_run(
    series: &TimeSeries,
    config: &ValidatedEvalConfig,
    registry: &MetricRegistry,
) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let record = easytime_eval::evaluate("alloc", series, &ModelSpec::Naive, config, registry)
            .unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert!(record.is_ok(), "evaluation failed: {:?}", record.error);
        min = min.min(after - before);
    }
    min
}

// One test function only: a second concurrently-running test would
// allocate during the measurement window and make the count flaky.
#[test]
fn warm_start_window_loop_reaches_allocation_free_steady_state() {
    easytime_obs::set_enabled(false);

    // 12_000 points → 2_400 test points under the default 7:1:2 split →
    // up to 600 stride-4 windows available, enough for both caps.
    let values: Vec<f64> = (0..12_000)
        .map(|t| {
            let t = t as f64;
            50.0 + 0.01 * t + 6.0 * (t / 24.0).sin()
        })
        .collect();
    let series = TimeSeries::new("alloc", values, Frequency::Hourly).unwrap();
    let registry = MetricRegistry::standard();
    let short = config(50, &registry);
    let long = config(500, &registry);

    // Warm every lazy one-time path (recorder OnceLock, env reads, the
    // allocator's own bookkeeping) before counting.
    let _ = measured_run(&series, &short, &registry);

    let with_50 = measured_run(&series, &short, &registry);
    let with_500 = measured_run(&series, &long, &registry);
    assert_eq!(
        with_50, with_500,
        "450 extra warm windows must not allocate: 50 windows cost {with_50} \
         allocations, 500 windows cost {with_500}"
    );
}
