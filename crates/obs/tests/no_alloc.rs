//! Proof that disabled tracing is free on the hot path.
//!
//! A counting global allocator wraps the system allocator; with
//! `EASYTIME_TRACE` off, the exact per-window instrumentation pattern used
//! by `eval::pipeline::run_windows` must perform zero allocations.
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this test binary opts back in locally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // Also exercise the profiling hook exactly the way exp_profile's
        // allocator does: with EASYTIME_PROF_ALLOC unset it must be one
        // relaxed load and no work.
        easytime_obs::count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// One test function only: a second concurrently-running test would
// allocate during the measurement window and make the count flaky.
#[test]
fn disabled_tracing_does_not_allocate_on_the_per_window_hot_loop() {
    // Force the disabled state and warm every lazy one-time path (the
    // recorder `OnceLock`, env read) before counting.
    easytime_obs::set_enabled(false);
    {
        let mut sp = easytime_obs::span("warmup");
        sp.attr("x", 1_u64);
        easytime_obs::add("warmup", 1);
    }

    // An inert guard records nothing even when attrs are set.
    {
        let mut sp = easytime_obs::span("ghost");
        sp.attr("ignored", 7_u64);
        assert!(!sp.is_recording());
        assert_eq!(sp.id(), None);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for origin in 0..1_000_u64 {
        // The exact shape eval::pipeline stamps on every window.
        let mut wsp = easytime_obs::span("eval.window");
        wsp.attr_u64("origin", origin);
        wsp.attr("len", 24_u64);
        easytime_obs::count_alloc(64);
        assert!(!easytime_obs::prof_alloc_enabled());
        easytime_obs::add("eval.model_failures", 1);
        easytime_obs::add_labeled("models.fit", "naive", 1);
        easytime_obs::observe("window.ms", 0.5);
        if easytime_obs::enabled() {
            easytime_obs::warn("eval.pipeline", "never formatted when disabled");
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled per-window instrumentation must be allocation-free"
    );

    let data = easytime_obs::drain();
    assert!(data.spans.iter().all(|s| s.name != "ghost"));
}
