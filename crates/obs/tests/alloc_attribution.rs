//! Per-span allocation attribution under a counting global allocator.
//!
//! This is the enabled-path counterpart of `no_alloc.rs`: the same
//! allocator wiring `exp_profile` uses, but with [`set_prof_alloc`] on, so
//! span records must carry allocation deltas and the profile must
//! attribute a child's allocations to the child, not the parent.
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this test binary opts back in locally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        easytime_obs::count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        easytime_obs::count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        easytime_obs::count_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// One test function only: the recorder and the profiling gate are
// process-global.
#[test]
fn allocations_are_attributed_to_the_innermost_open_span() {
    easytime_obs::set_enabled(true);
    easytime_obs::reset();
    // Warm the lazy paths (sink registration, duration-histogram entries)
    // before turning the tally on, so deltas below are purely workload.
    {
        let _w = easytime_obs::span("outer");
        let _i = easytime_obs::span("inner");
    }
    let _ = easytime_obs::drain();
    easytime_obs::set_prof_alloc(true);
    assert!(easytime_obs::prof_alloc_enabled());

    {
        let _outer = easytime_obs::span("outer");
        let own: Vec<u64> = Vec::with_capacity(8); // one alloc in outer itself
        {
            let _inner = easytime_obs::span("inner");
            let a: Vec<u64> = Vec::with_capacity(32);
            let b: Vec<u64> = Vec::with_capacity(64);
            drop((a, b)); // two allocs inside inner
        }
        drop(own);
    }
    easytime_obs::set_prof_alloc(false);

    let data = easytime_obs::drain();
    let by_name = |n: &str| data.spans.iter().find(|s| s.name == n).expect("span recorded");
    let outer = by_name("outer");
    let inner = by_name("inner");

    // inner saw exactly its own two Vec allocations.
    assert_eq!(inner.allocs, 2, "inner allocs: {:?}", inner);
    assert_eq!(inner.alloc_bytes, 32 * 8 + 64 * 8);
    // outer's recorded delta is inclusive: its own Vec plus inner's two.
    assert!(outer.allocs >= 3, "outer inclusive allocs: {:?}", outer);

    // The profile subtracts children: outer's *self* allocs exclude
    // inner's.
    let profile = easytime_obs::Profile::from_trace(&data);
    assert_eq!(profile.stages["inner"].allocs, 2);
    assert_eq!(profile.stages["outer"].allocs, outer.allocs - inner.allocs);

    // The rendered trace line carries the alloc fields.
    let trace = easytime_obs::render_trace_jsonl(&data);
    assert!(trace.contains("\"name\":\"inner\""));
    assert!(trace.contains(&format!("\"allocs\":{},\"alloc_bytes\":{}", inner.allocs, inner.alloc_bytes)));

    easytime_obs::set_enabled(false);
    easytime_obs::reset();
}
