//! Error type for the data layer.

use std::fmt;

/// Errors produced while constructing, loading, or transforming datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A series was empty where data was required.
    EmptySeries {
        /// Name of the offending series.
        name: String,
    },
    /// A series contained a non-finite value.
    NonFiniteValue {
        /// Name of the offending series.
        name: String,
        /// Index of the first non-finite value.
        index: usize,
    },
    /// The requested split leaves a partition empty or is out of range.
    InvalidSplit {
        /// Human-readable description.
        reason: String,
    },
    /// Multivariate channels have inconsistent lengths.
    RaggedChannels {
        /// Expected channel length.
        expected: usize,
        /// Observed channel length.
        found: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line where parsing failed.
        line: usize,
        /// Description of the failure.
        reason: String,
    },
    /// The registry has no dataset under the given id.
    UnknownDataset {
        /// The id that failed to resolve.
        id: String,
    },
    /// A scaler was asked to transform before being fitted.
    ScalerNotFitted,
    /// A generator specification was invalid.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptySeries { name } => write!(f, "series '{name}' is empty"),
            DataError::NonFiniteValue { name, index } => {
                write!(f, "series '{name}' has a non-finite value at index {index}")
            }
            DataError::InvalidSplit { reason } => write!(f, "invalid split: {reason}"),
            DataError::RaggedChannels { expected, found } => {
                write!(f, "ragged channels: expected length {expected}, found {found}")
            }
            DataError::Csv { line, reason } => write!(f, "csv parse error at line {line}: {reason}"),
            DataError::UnknownDataset { id } => write!(f, "unknown dataset '{id}'"),
            DataError::ScalerNotFitted => write!(f, "scaler must be fitted before use"),
            DataError::InvalidSpec { reason } => write!(f, "invalid generator spec: {reason}"),
        }
    }
}

impl std::error::Error for DataError {}
