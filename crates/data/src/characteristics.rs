//! Extraction of the six TFB dataset characteristics.
//!
//! The paper (§II-A) lists Seasonality, Trend, Transition, Shifting,
//! Stationarity, and Correlation as the characteristics along which the
//! benchmark corpus is balanced, and the method-recommendation frontend
//! (Figure 4, label 4) displays them for an uploaded series. This module
//! computes all six as scores in `[0, 1]`:
//!
//! * **seasonality** — strength of the seasonal component, following
//!   Wang–Smith–Hyndman: `max(0, 1 − Var(remainder) / Var(seasonal + remainder))`.
//! * **trend** — strength of the trend component:
//!   `max(0, 1 − Var(remainder) / Var(trend + remainder))`.
//! * **transition** — structural-change intensity measured by a normalized
//!   CUSUM statistic on the detrended series.
//! * **shifting** — distribution shift between the first and second half
//!   (standardized mean difference squashed to `[0, 1)`).
//! * **stationarity** — speed of autocorrelation decay: white noise scores
//!   near 1, a random walk near 0 (a lightweight stand-in for ADF/KPSS).
//! * **correlation** — for multivariate data, the mean absolute pairwise
//!   Pearson correlation across channels; 0 for univariate series.

use crate::decompose::decompose_values;
use crate::series::{MultiSeries, TimeSeries};
use easytime_linalg::stats::{acf, correlation, linear_trend, mean, std_dev, variance};

/// The six TFB characteristics, each scored in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Characteristics {
    /// Seasonal strength.
    pub seasonality: f64,
    /// Trend strength.
    pub trend: f64,
    /// Structural-change (regime transition) intensity.
    pub transition: f64,
    /// Distribution shift between series halves.
    pub shifting: f64,
    /// Stationarity score (1 = strongly stationary).
    pub stationarity: f64,
    /// Cross-channel correlation (0 for univariate).
    pub correlation: f64,
    /// Detected (or frequency-implied) seasonal period; 0 when none.
    pub period: usize,
}

impl Characteristics {
    /// Threshold above which a characteristic counts as "strong" for tags
    /// and Q&A filters.
    pub(crate) const STRONG: f64 = 0.6;

    /// True when the series has a strong seasonal component.
    pub(crate) fn has_strong_seasonality(&self) -> bool {
        self.seasonality >= Self::STRONG
    }

    /// True when the series has a strong trend.
    pub(crate) fn has_strong_trend(&self) -> bool {
        self.trend >= Self::STRONG
    }

    /// True when the series is predominantly stationary.
    pub(crate) fn is_stationary(&self) -> bool {
        self.stationarity >= Self::STRONG
    }

    /// Human-readable tags, e.g. `["seasonal", "trending"]`, used by the
    /// reporting layer and Q&A answers.
    pub fn tags(&self) -> Vec<&'static str> {
        let mut tags = Vec::new();
        if self.has_strong_seasonality() {
            tags.push("seasonal");
        }
        if self.has_strong_trend() {
            tags.push("trending");
        }
        if self.transition >= Self::STRONG {
            tags.push("regime-switching");
        }
        if self.shifting >= Self::STRONG {
            tags.push("shifting");
        }
        if self.is_stationary() {
            tags.push("stationary");
        }
        if self.correlation >= Self::STRONG {
            tags.push("cross-correlated");
        }
        tags
    }

    /// Flattens the scores into a feature vector (excluding the period),
    /// used as part of the representation fed to the recommender.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.seasonality,
            self.trend,
            self.transition,
            self.shifting,
            self.stationarity,
            self.correlation,
        ]
    }
}

/// Candidate seasonal periods probed by [`detect_period`].
const CANDIDATE_PERIODS: &[usize] = &[4, 6, 7, 12, 24, 48, 52, 96];

/// Detects the dominant seasonal period of `xs` via autocorrelation peaks.
///
/// Probes the conventional periods (and the frequency hint, if provided)
/// and returns the one with the highest autocorrelation, provided it exceeds
/// 0.25 and at least two full cycles are observed. Returns `None` when no
/// convincing period exists.
pub(crate) fn detect_period(xs: &[f64], hint: Option<usize>) -> Option<usize> {
    let n = xs.len();
    // De-trend first: a strong trend inflates the ACF at every lag.
    let (b, m) = linear_trend(xs);
    let detrended: Vec<f64> = xs.iter().enumerate().map(|(t, &x)| x - b - m * t as f64).collect();

    let max_corr = |p: usize| -> f64 {
        if p < 2 || n < 2 * p + 1 {
            return f64::NEG_INFINITY;
        }
        easytime_linalg::stats::autocorrelation(&detrended, p)
    };

    let mut best: Option<(usize, f64)> = None;
    let mut consider = |p: usize| {
        let c = max_corr(p);
        if c > best.map_or(0.25, |(_, bc)| bc) {
            best = Some((p, c));
        }
    };
    if let Some(h) = hint {
        consider(h);
    }
    for &p in CANDIDATE_PERIODS {
        consider(p);
    }
    best.map(|(p, _)| p)
}

/// Strength helper: `max(0, 1 − Var(remainder) / Var(component + remainder))`.
fn strength(component: &[f64], remainder: &[f64]) -> f64 {
    let combined: Vec<f64> = component.iter().zip(remainder).map(|(c, r)| c + r).collect();
    let vc = variance(&combined);
    if vc < 1e-12 {
        return 0.0;
    }
    (1.0 - variance(remainder) / vc).clamp(0.0, 1.0)
}

/// Stationarity score from autocorrelation decay on the raw series.
fn stationarity_score(xs: &[f64]) -> f64 {
    let max_lag = 10.min(xs.len().saturating_sub(1));
    if max_lag == 0 {
        return 1.0;
    }
    let a = acf(xs, max_lag);
    let avg_abs = a[1..].iter().map(|v| v.abs()).sum::<f64>() / max_lag as f64;
    (1.0 - avg_abs).clamp(0.0, 1.0)
}

/// Shifting score: standardized mean difference between halves, squashed.
fn shifting_score(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return 0.0;
    }
    let (first, second) = xs.split_at(n / 2);
    let pooled = std_dev(xs).max(1e-9);
    let d = (mean(first) - mean(second)).abs() / pooled;
    (d / (1.0 + d)).clamp(0.0, 1.0)
}

/// Transition score: normalized CUSUM range of the detrended series.
fn transition_score(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 8 {
        return 0.0;
    }
    let (b, m) = linear_trend(xs);
    let resid: Vec<f64> = xs.iter().enumerate().map(|(t, &x)| x - b - m * t as f64).collect();
    let s = std_dev(&resid).max(1e-9);
    let mut cum = 0.0;
    let mut max_abs: f64 = 0.0;
    let rm = mean(&resid);
    for &r in &resid {
        cum += r - rm;
        max_abs = max_abs.max(cum.abs());
    }
    // For i.i.d. noise the normalized CUSUM range is O(1); structural breaks
    // drive it up. Map through x/(1+x) after subtracting the noise baseline.
    let stat = (max_abs / (s * (n as f64).sqrt()) - 0.8).max(0.0);
    (stat / (1.0 + stat)).clamp(0.0, 1.0)
}

/// Extracts all six characteristics from a univariate series.
pub fn extract(series: &TimeSeries) -> Characteristics {
    extract_values(series.values(), series.frequency().default_period())
}

/// Extracts characteristics from raw values with an optional period hint.
pub fn extract_values(xs: &[f64], hint: Option<usize>) -> Characteristics {
    let period = detect_period(xs, hint).unwrap_or(0);
    let d = decompose_values(xs, period);
    let seasonality = if d.period >= 2 { strength(&d.seasonal, &d.remainder) } else { 0.0 };
    // Trend strength on the deseasonalized series.
    let deseasonalized: Vec<f64> = xs.iter().zip(&d.seasonal).map(|(x, s)| x - s).collect();
    let (b, m) = linear_trend(&deseasonalized);
    let trend_line: Vec<f64> = (0..xs.len()).map(|t| b + m * t as f64).collect();
    let trend_resid: Vec<f64> =
        deseasonalized.iter().zip(&trend_line).map(|(x, t)| x - t).collect();
    let trend = strength(&trend_line, &trend_resid);

    Characteristics {
        seasonality,
        trend,
        transition: transition_score(xs),
        shifting: shifting_score(xs),
        stationarity: stationarity_score(xs),
        correlation: 0.0,
        period: d.period,
    }
}

/// Extracts characteristics from a multivariate series.
///
/// Per-channel scores are averaged; the correlation characteristic is the
/// mean absolute pairwise Pearson correlation across channels.
pub(crate) fn extract_multi(series: &MultiSeries) -> Characteristics {
    let k = series.num_channels();
    let hint = series.frequency().default_period();
    let mut acc = Characteristics {
        seasonality: 0.0,
        trend: 0.0,
        transition: 0.0,
        shifting: 0.0,
        stationarity: 0.0,
        correlation: 0.0,
        period: 0,
    };
    let mut period_votes: Vec<usize> = Vec::with_capacity(k);
    for i in 0..k {
        let c = extract_values(series.channel(i), hint);
        acc.seasonality += c.seasonality;
        acc.trend += c.trend;
        acc.transition += c.transition;
        acc.shifting += c.shifting;
        acc.stationarity += c.stationarity;
        period_votes.push(c.period);
    }
    let kf = k as f64;
    acc.seasonality /= kf;
    acc.trend /= kf;
    acc.transition /= kf;
    acc.shifting /= kf;
    acc.stationarity /= kf;
    // Majority period vote (0 allowed).
    period_votes.sort_unstable();
    acc.period = period_votes[period_votes.len() / 2];

    if k >= 2 {
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                sum += correlation(series.channel(i), series.channel(j)).abs();
                pairs += 1;
            }
        }
        acc.correlation = sum / pairs as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Frequency;
    use std::f64::consts::PI;

    fn sine(n: usize, period: f64, amp: f64) -> Vec<f64> {
        (0..n).map(|t| amp * (2.0 * PI * t as f64 / period).sin()).collect()
    }

    /// Deterministic pseudo-noise without pulling in `rand` for unit tests.
    fn noise(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|t| scale * ((t as f64 * 12.9898).sin() * 43758.5453).fract()).collect()
    }

    #[test]
    fn detects_seasonal_period() {
        let xs = sine(240, 12.0, 5.0);
        assert_eq!(detect_period(&xs, None), Some(12));
        let hourly = sine(480, 24.0, 3.0);
        assert_eq!(detect_period(&hourly, Some(24)), Some(24));
    }

    #[test]
    fn no_period_for_noise_or_short_series() {
        let xs = noise(100, 1.0);
        assert_eq!(detect_period(&xs, None), None);
        assert_eq!(detect_period(&[1.0, 2.0, 3.0], None), None);
    }

    #[test]
    fn seasonal_series_scores_high_seasonality() {
        let mut xs = sine(240, 12.0, 5.0);
        let nz = noise(240, 0.5);
        for (x, n) in xs.iter_mut().zip(&nz) {
            *x += n;
        }
        let c = extract_values(&xs, None);
        assert!(c.seasonality > 0.8, "seasonality {}", c.seasonality);
        assert!(c.trend < 0.5, "trend {}", c.trend);
        assert_eq!(c.period, 12);
        assert!(c.tags().contains(&"seasonal"));
    }

    #[test]
    fn trending_series_scores_high_trend_low_stationarity() {
        let xs: Vec<f64> = (0..200).map(|t| 0.5 * t as f64).collect();
        let c = extract_values(&xs, None);
        assert!(c.trend > 0.95, "trend {}", c.trend);
        assert!(c.stationarity < 0.3, "stationarity {}", c.stationarity);
        assert!(c.has_strong_trend());
        assert!(!c.is_stationary());
    }

    #[test]
    fn white_noise_is_stationary_without_structure() {
        let xs = noise(400, 1.0);
        let c = extract_values(&xs, None);
        // The hash-based pseudo-noise carries mild autocorrelation, so the
        // score lands above the STRONG threshold rather than near 1.
        assert!(c.stationarity > 0.6, "stationarity {}", c.stationarity);
        assert!(c.seasonality < 0.4, "seasonality {}", c.seasonality);
        assert!(c.trend < 0.3, "trend {}", c.trend);
        assert!(c.shifting < 0.4, "shifting {}", c.shifting);
    }

    #[test]
    fn level_shift_raises_shifting() {
        let mut xs = noise(200, 0.3);
        for x in xs.iter_mut().skip(100) {
            *x += 5.0;
        }
        let c = extract_values(&xs, None);
        assert!(c.shifting > 0.6, "shifting {}", c.shifting);
    }

    #[test]
    fn regime_change_raises_transition() {
        // Slow sinusoidal regime drift (not a linear trend) drives CUSUM up.
        let xs: Vec<f64> = (0..300)
            .map(|t| {
                let base = if (t / 75) % 2 == 0 { 0.0 } else { 4.0 };
                base + noise(1, 0.2)[0] + (t as f64 * 0.7).sin() * 0.3
            })
            .collect();
        let c = extract_values(&xs, None);
        assert!(c.transition > 0.4, "transition {}", c.transition);
    }

    #[test]
    fn correlated_channels_raise_correlation() {
        let base = sine(120, 12.0, 2.0);
        let shifted: Vec<f64> = base.iter().map(|x| 3.0 * x + 1.0).collect();
        let m = MultiSeries::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![base, shifted],
            Frequency::Monthly,
        )
        .unwrap();
        let c = extract_multi(&m);
        assert!(c.correlation > 0.95, "correlation {}", c.correlation);
        assert!(c.tags().contains(&"cross-correlated"));
    }

    #[test]
    fn independent_channels_have_low_correlation() {
        let a = noise(300, 1.0);
        let b: Vec<f64> = noise(300, 1.0).iter().rev().copied().collect();
        let m = MultiSeries::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![a, b],
            Frequency::Daily,
        )
        .unwrap();
        let c = extract_multi(&m);
        assert!(c.correlation < 0.3, "correlation {}", c.correlation);
    }

    #[test]
    fn feature_vector_has_six_entries_in_range() {
        let ts = TimeSeries::new("t", sine(120, 12.0, 1.0), Frequency::Monthly).unwrap();
        let c = extract(&ts);
        let v = c.to_vec();
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }
}
