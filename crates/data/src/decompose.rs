//! Classical time-series decomposition.
//!
//! Provides a moving-average trend extractor and an additive
//! trend/seasonal/remainder decomposition in the spirit of STL (without
//! loess). The decomposition backs the characteristic extractor
//! (trend/seasonality strengths) and the DLinear forecaster's
//! trend/remainder split.

use crate::series::TimeSeries;
use easytime_linalg::stats::mean;

/// Result of an additive decomposition `y = trend + seasonal + remainder`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Smooth trend component, same length as the input.
    pub trend: Vec<f64>,
    /// Seasonal component, repeating with the requested period.
    pub seasonal: Vec<f64>,
    /// Remainder after removing trend and seasonal parts.
    pub remainder: Vec<f64>,
    /// Seasonal period used (0 when no seasonal component was extracted).
    pub period: usize,
}

/// Centered moving average of window `w` with edge padding.
///
/// The first and last `w/2` points are smoothed with a shrinking one-sided
/// window so the output has the same length as the input. `w == 0` or
/// `w == 1` returns the input unchanged.
pub(crate) fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let half = w / 2;
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let lo = t.saturating_sub(half);
        let hi = (t + half + 1).min(n);
        out.push(mean(&xs[lo..hi]));
    }
    out
}

/// Trailing (causal) moving average of window `w`.
///
/// `out[t]` is the mean of `xs[t-w+1..=t]` (shrinking at the left edge).
/// Unlike [`moving_average`] it never looks into the future, so the tail of
/// the output is an unbiased anchor for recursive forecasting (the bias it
/// does introduce — half a window of lag on trends — is *constant* and is
/// absorbed by the remainder component).
pub fn trailing_moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for t in 0..xs.len() {
        sum += xs[t];
        if t >= w {
            sum -= xs[t - w];
        }
        let len = (t + 1).min(w) as f64;
        out.push(sum / len);
    }
    out
}

/// Additive decomposition of `xs` with the given seasonal `period`.
///
/// When `period < 2` or the series is shorter than two periods, the seasonal
/// part is zero and the trend is a moving average with a window of roughly a
/// tenth of the series (at least 3).
pub fn decompose_values(xs: &[f64], period: usize) -> Decomposition {
    let n = xs.len();
    if period < 2 || n < 2 * period {
        let w = (n / 10).max(3);
        let trend = moving_average(xs, w);
        let remainder = xs.iter().zip(&trend).map(|(x, t)| x - t).collect();
        return Decomposition { trend, seasonal: vec![0.0; n], remainder, period: 0 };
    }

    // 1. Trend: centered moving average over one full period (even periods
    //    use the standard 2×MA to stay centered).
    let trend = if period % 2 == 0 {
        moving_average(&moving_average(xs, period), 2)
    } else {
        moving_average(xs, period)
    };

    // 2. Detrend and average by phase to get the seasonal profile.
    let detrended: Vec<f64> = xs.iter().zip(&trend).map(|(x, t)| x - t).collect();
    let mut sums = vec![0.0; period];
    let mut counts = vec![0usize; period];
    for (t, &d) in detrended.iter().enumerate() {
        sums[t % period] += d;
        counts[t % period] += 1;
    }
    let mut profile: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Center the profile so it sums to zero (pure seasonal component).
    let pm = mean(&profile);
    for p in &mut profile {
        *p -= pm;
    }

    let seasonal: Vec<f64> = (0..n).map(|t| profile[t % period]).collect();
    let remainder: Vec<f64> =
        xs.iter().zip(trend.iter().zip(&seasonal)).map(|(x, (t, s))| x - t - s).collect();
    Decomposition { trend, seasonal, remainder, period }
}

/// Convenience wrapper of [`decompose_values`] for a [`TimeSeries`], using
/// the given period or the frequency's default.
pub fn decompose(series: &TimeSeries, period: Option<usize>) -> Decomposition {
    let p = period.or_else(|| series.frequency().default_period()).unwrap_or(0);
    decompose_values(series.values(), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Frequency;
    use std::f64::consts::PI;

    #[test]
    fn moving_average_flattens_noise() {
        let xs: Vec<f64> = (0..100).map(|t| t as f64 + if t % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let sm = moving_average(&xs, 4);
        assert_eq!(sm.len(), xs.len());
        // Interior points should be close to the underlying line.
        for (t, &v) in sm.iter().enumerate().take(95).skip(5) {
            assert!((v - t as f64).abs() < 1.0, "t={t}, got {v}");
        }
        assert_eq!(moving_average(&xs, 1), xs);
        assert_eq!(moving_average(&[], 5), Vec::<f64>::new());
    }

    #[test]
    fn trailing_moving_average_is_causal() {
        let xs: Vec<f64> = (0..50).map(|t| t as f64).collect();
        let sm = trailing_moving_average(&xs, 4);
        assert_eq!(sm.len(), xs.len());
        // Full windows: mean of [t-3..=t] = t - 1.5.
        for (t, &v) in sm.iter().enumerate().skip(4) {
            assert!((v - (t as f64 - 1.5)).abs() < 1e-12);
        }
        // Left edge shrinks: first value is the value itself.
        assert_eq!(sm[0], 0.0);
        assert_eq!(sm[1], 0.5);
        assert_eq!(trailing_moving_average(&xs, 1), xs);
        assert_eq!(trailing_moving_average(&[], 3), Vec::<f64>::new());
    }

    #[test]
    fn decomposition_reconstructs_input() {
        let xs: Vec<f64> = (0..120)
            .map(|t| 0.3 * t as f64 + 5.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        let d = decompose_values(&xs, 12);
        for (t, &x) in xs.iter().enumerate() {
            let rebuilt = d.trend[t] + d.seasonal[t] + d.remainder[t];
            assert!((rebuilt - x).abs() < 1e-9);
        }
        assert_eq!(d.period, 12);
    }

    #[test]
    fn decomposition_recovers_strong_seasonality() {
        let xs: Vec<f64> = (0..240)
            .map(|t| 10.0 + 4.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        let d = decompose_values(&xs, 12);
        // Seasonal variance should dominate the remainder variance.
        let vs = easytime_linalg::stats::variance(&d.seasonal);
        let vr = easytime_linalg::stats::variance(&d.remainder);
        assert!(vs > 5.0, "seasonal variance too small: {vs}");
        assert!(vr < 0.2 * vs, "remainder should be small: {vr} vs {vs}");
        // Seasonal profile repeats exactly.
        for t in 12..240 {
            assert!((d.seasonal[t] - d.seasonal[t - 12]).abs() < 1e-9);
        }
    }

    #[test]
    fn short_or_aperiodic_series_gets_zero_seasonal() {
        let xs: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let d = decompose_values(&xs, 12);
        assert_eq!(d.period, 0);
        assert!(d.seasonal.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn decompose_uses_frequency_default_period() {
        let xs: Vec<f64> =
            (0..96).map(|t| (2.0 * PI * t as f64 / 24.0).sin() * 3.0 + 1.0).collect();
        let ts = TimeSeries::new("hourly", xs, Frequency::Hourly).unwrap();
        let d = decompose(&ts, None);
        assert_eq!(d.period, 24);
        let d2 = decompose(&ts, Some(8));
        assert_eq!(d2.period, 8);
    }

    #[test]
    fn seasonal_profile_is_centered() {
        let xs: Vec<f64> = (0..60).map(|t| (t % 6) as f64).collect();
        let d = decompose_values(&xs, 6);
        let profile_mean = mean(&d.seasonal[..6]);
        assert!(profile_mean.abs() < 1e-9);
    }
}
