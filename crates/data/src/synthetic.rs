//! Synthetic benchmark corpus generation.
//!
//! Substitutes the paper's 8,068 real univariate and 25 multivariate datasets
//! (paper §II-A) with a seeded generator bank. Every series is composed from
//! explicit components — trend, seasonality, noise, level shifts, and regime
//! transitions — so the corpus provably covers all six TFB characteristics,
//! and every generated value is reproducible from `(spec, seed)`.
//!
//! Domain presets ([`domain_spec`]) encode the stylized dynamics of the ten
//! TFB domains (e.g. hourly double-seasonal electricity load, heavy-tailed
//! random-walk stock prices, trending economic indicators), which is what
//! makes "no single best method" reproducible: different generators favour
//! different forecasters.

use crate::dataset::{Dataset, Domain};
use crate::error::DataError;
use crate::series::{Frequency, MultiSeries, TimeSeries};
use easytime_rng::StdRng;
use std::f64::consts::PI;

/// Trend component of a synthetic series.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum TrendSpec {
    /// No trend.
    None,
    /// Linear trend with the given per-step slope.
    Linear {
        /// Increment per time step.
        slope: f64,
    },
    /// Exponential growth/decay: `level * (1 + rate)^t` deviation.
    Exponential {
        /// Per-step growth rate (e.g. 0.002).
        rate: f64,
    },
    /// Piecewise linear: slope flips sign every `segment` steps.
    Piecewise {
        /// Magnitude of the alternating slope.
        slope: f64,
        /// Steps per segment.
        segment: usize,
    },
}

/// Seasonal component of a synthetic series.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum SeasonSpec {
    /// No seasonality.
    None,
    /// A single sinusoid.
    Sine {
        /// Seasonal period in steps.
        period: usize,
        /// Peak amplitude.
        amplitude: f64,
    },
    /// Sum of harmonics of a base period (sharper, more realistic shapes).
    Harmonics {
        /// Base period in steps.
        period: usize,
        /// Amplitude of each harmonic `k = 1, 2, …`.
        amplitudes: Vec<f64>,
    },
    /// Two interacting periods (e.g. daily + weekly traffic patterns).
    Double {
        /// Shorter period.
        period1: usize,
        /// Amplitude of the shorter cycle.
        amp1: f64,
        /// Longer period.
        period2: usize,
        /// Amplitude of the longer cycle.
        amp2: f64,
    },
}

/// Noise component of a synthetic series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSpec {
    /// Independent Gaussian noise.
    Gaussian {
        /// Standard deviation.
        sigma: f64,
    },
    /// AR(1) noise `e[t] = phi * e[t-1] + w[t]`.
    Ar1 {
        /// Autoregressive coefficient in `(-1, 1)`.
        phi: f64,
        /// Innovation standard deviation.
        sigma: f64,
    },
    /// Heavy-tailed (Student-t-like) noise.
    HeavyTail {
        /// Scale parameter.
        sigma: f64,
        /// Degrees of freedom (≥ 3 for finite variance).
        df: u32,
    },
    /// Random walk: cumulative Gaussian innovations (non-stationary).
    RandomWalk {
        /// Innovation standard deviation.
        sigma: f64,
    },
}

/// A single abrupt level shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelShift {
    /// Position as a fraction of the series length, in `(0, 1)`.
    pub at: f64,
    /// Magnitude added from that point onward.
    pub magnitude: f64,
}

/// Regime transitions: the mean alternates between two states.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct RegimeSpec {
    /// Steps spent in each regime.
    pub dwell: usize,
    /// Mean offset of the alternate regime.
    pub magnitude: f64,
}

/// Full specification of one synthetic series.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Base level around which components are added.
    pub level: f64,
    /// Number of observations to generate.
    pub length: usize,
    /// Sampling frequency recorded on the output series.
    pub frequency: Frequency,
    /// Trend component.
    pub trend: TrendSpec,
    /// Seasonal component.
    pub season: SeasonSpec,
    /// Noise component.
    pub noise: NoiseSpec,
    /// Abrupt level shifts.
    pub shifts: Vec<LevelShift>,
    /// Optional regime transitions.
    pub regimes: Option<RegimeSpec>,
}

impl SyntheticSpec {
    /// A plain baseline spec: level 10, Gaussian noise, no structure.
    pub fn baseline(length: usize, frequency: Frequency) -> SyntheticSpec {
        SyntheticSpec {
            level: 10.0,
            length,
            frequency,
            trend: TrendSpec::None,
            season: SeasonSpec::None,
            noise: NoiseSpec::Gaussian { sigma: 1.0 },
            shifts: Vec::new(),
            regimes: None,
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.length < 16 {
            return Err(DataError::InvalidSpec {
                reason: format!("length {} is too short (minimum 16)", self.length),
            });
        }
        for s in &self.shifts {
            if !(0.0 < s.at && s.at < 1.0) {
                return Err(DataError::InvalidSpec {
                    reason: format!("shift position {} must be in (0, 1)", s.at),
                });
            }
        }
        if let NoiseSpec::Ar1 { phi, .. } = self.noise {
            if phi.abs() >= 1.0 {
                return Err(DataError::InvalidSpec {
                    reason: format!("AR(1) phi {phi} must satisfy |phi| < 1"),
                });
            }
        }
        Ok(())
    }
}

/// Student-t-like draw: normal scaled by an inverse-chi estimate.
fn heavy_tail(rng: &mut StdRng, df: u32) -> f64 {
    let z = rng.normal();
    let mut chi2 = 0.0;
    for _ in 0..df.max(1) {
        let g = rng.normal();
        chi2 += g * g;
    }
    z / (chi2 / df.max(1) as f64).sqrt()
}

fn trend_at(spec: &TrendSpec, level: f64, t: usize) -> f64 {
    match *spec {
        TrendSpec::None => 0.0,
        TrendSpec::Linear { slope } => slope * t as f64,
        TrendSpec::Exponential { rate } => level * ((1.0 + rate).powi(t as i32) - 1.0),
        TrendSpec::Piecewise { slope, segment } => {
            let seg = segment.max(1);
            let full_segments = t / seg;
            let within = (t % seg) as f64;
            // Alternate slope sign per segment; accumulate closed segments.
            let mut acc = 0.0;
            for s in 0..full_segments {
                let sign = if s % 2 == 0 { 1.0 } else { -1.0 };
                acc += sign * slope * seg as f64;
            }
            let sign = if full_segments % 2 == 0 { 1.0 } else { -1.0 };
            acc + sign * slope * within
        }
    }
}

fn season_at(spec: &SeasonSpec, t: usize) -> f64 {
    match spec {
        SeasonSpec::None => 0.0,
        SeasonSpec::Sine { period, amplitude } => {
            amplitude * (2.0 * PI * t as f64 / *period as f64).sin()
        }
        SeasonSpec::Harmonics { period, amplitudes } => amplitudes
            .iter()
            .enumerate()
            .map(|(k, a)| a * (2.0 * PI * (k + 1) as f64 * t as f64 / *period as f64).sin())
            .sum(),
        SeasonSpec::Double { period1, amp1, period2, amp2 } => {
            amp1 * (2.0 * PI * t as f64 / *period1 as f64).sin()
                + amp2 * (2.0 * PI * t as f64 / *period2 as f64).sin()
        }
    }
}

/// Generates one series from a spec and a seed. Identical inputs produce
/// identical output.
pub fn generate(name: impl Into<String>, spec: &SyntheticSpec, seed: u64) -> Result<TimeSeries, DataError> {
    spec.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.length;
    let mut values = Vec::with_capacity(n);

    let mut ar_state = 0.0;
    let mut walk = 0.0;
    for t in 0..n {
        let noise = match spec.noise {
            NoiseSpec::Gaussian { sigma } => sigma * rng.normal(),
            NoiseSpec::Ar1 { phi, sigma } => {
                ar_state = phi * ar_state + sigma * rng.normal();
                ar_state
            }
            NoiseSpec::HeavyTail { sigma, df } => sigma * heavy_tail(&mut rng, df),
            NoiseSpec::RandomWalk { sigma } => {
                walk += sigma * rng.normal();
                walk
            }
        };
        let mut v = spec.level + trend_at(&spec.trend, spec.level, t) + season_at(&spec.season, t) + noise;
        for s in &spec.shifts {
            if (t as f64) >= s.at * n as f64 {
                v += s.magnitude;
            }
        }
        if let Some(r) = spec.regimes {
            let dwell = r.dwell.max(1);
            if (t / dwell) % 2 == 1 {
                v += r.magnitude;
            }
        }
        values.push(v);
    }
    TimeSeries::new(name, values, spec.frequency)
}

/// Returns the preset spec family for a domain.
///
/// `variant` selects among a few stylized sub-populations per domain so a
/// corpus has within-domain diversity; any `usize` is accepted (wrapped).
pub fn domain_spec(domain: Domain, variant: usize, length: usize) -> SyntheticSpec {
    let v = variant % 4;
    match domain {
        Domain::Traffic => SyntheticSpec {
            level: 120.0,
            length,
            frequency: Frequency::Hourly,
            trend: TrendSpec::None,
            season: SeasonSpec::Double {
                period1: 24,
                amp1: 30.0 + 5.0 * v as f64,
                period2: 168.min(length / 3).max(24),
                amp2: 12.0,
            },
            noise: NoiseSpec::Ar1 { phi: 0.5, sigma: 6.0 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Electricity => SyntheticSpec {
            level: 300.0,
            length,
            frequency: Frequency::Hourly,
            trend: if v % 2 == 0 { TrendSpec::Linear { slope: 0.05 } } else { TrendSpec::None },
            season: SeasonSpec::Harmonics {
                period: 24,
                amplitudes: vec![50.0, 18.0 + 2.0 * v as f64, 7.0],
            },
            noise: NoiseSpec::Gaussian { sigma: 10.0 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Energy => SyntheticSpec {
            level: 80.0,
            length,
            frequency: Frequency::Hourly,
            trend: TrendSpec::None,
            season: SeasonSpec::Sine { period: 24, amplitude: 35.0 },
            noise: NoiseSpec::HeavyTail { sigma: 8.0 + v as f64, df: 4 },
            shifts: Vec::new(),
            regimes: Some(RegimeSpec { dwell: length / 5, magnitude: 15.0 }),
        },
        Domain::Environment => SyntheticSpec {
            level: 55.0,
            length,
            frequency: Frequency::Daily,
            trend: TrendSpec::Linear { slope: 0.01 * (v as f64 + 1.0) },
            season: SeasonSpec::Sine { period: 7, amplitude: 6.0 },
            noise: NoiseSpec::Ar1 { phi: 0.7, sigma: 4.0 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Nature => SyntheticSpec {
            level: 15.0,
            length,
            frequency: Frequency::Monthly,
            trend: TrendSpec::Linear { slope: 0.002 },
            season: SeasonSpec::Sine { period: 12, amplitude: 10.0 + v as f64 },
            noise: NoiseSpec::Gaussian { sigma: 1.5 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Economic => SyntheticSpec {
            level: 100.0,
            length,
            frequency: Frequency::Quarterly,
            trend: TrendSpec::Exponential { rate: 0.004 + 0.001 * v as f64 },
            season: SeasonSpec::Sine { period: 4, amplitude: 2.0 },
            noise: NoiseSpec::Ar1 { phi: 0.6, sigma: 1.2 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Stock => SyntheticSpec {
            level: 50.0,
            length,
            frequency: Frequency::Daily,
            trend: if v == 3 { TrendSpec::Linear { slope: 0.02 } } else { TrendSpec::None },
            season: SeasonSpec::None,
            noise: NoiseSpec::RandomWalk { sigma: 0.8 + 0.2 * v as f64 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Banking => SyntheticSpec {
            level: 500.0,
            length,
            frequency: Frequency::Monthly,
            trend: TrendSpec::Linear { slope: 0.8 },
            season: SeasonSpec::Harmonics { period: 12, amplitudes: vec![25.0, 8.0] },
            noise: NoiseSpec::Gaussian { sigma: 10.0 },
            shifts: if v % 2 == 0 {
                vec![LevelShift { at: 0.6, magnitude: 60.0 }]
            } else {
                Vec::new()
            },
            regimes: None,
        },
        Domain::Health => SyntheticSpec {
            level: 40.0,
            length,
            frequency: Frequency::Weekly,
            trend: TrendSpec::Piecewise { slope: 0.15, segment: (length / 4).max(8) },
            season: SeasonSpec::Sine { period: 52.min(length / 3).max(4), amplitude: 8.0 },
            noise: NoiseSpec::Gaussian { sigma: 3.0 + 0.5 * v as f64 },
            shifts: Vec::new(),
            regimes: None,
        },
        Domain::Web => SyntheticSpec {
            level: 1000.0,
            length,
            frequency: Frequency::Daily,
            trend: TrendSpec::Linear { slope: 0.3 },
            season: SeasonSpec::Sine { period: 7, amplitude: 150.0 },
            noise: NoiseSpec::HeavyTail { sigma: 40.0, df: 3 },
            shifts: vec![LevelShift { at: 0.4 + 0.1 * v as f64, magnitude: 200.0 }],
            regimes: None,
        },
    }
}

/// Configuration of a synthetic corpus build.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Domains to include (defaults to all ten).
    pub domains: Vec<Domain>,
    /// Univariate series generated per domain.
    pub per_domain: usize,
    /// Length of each univariate series.
    pub length: usize,
    /// Multivariate datasets generated per domain (may be 0).
    pub multivariate_per_domain: usize,
    /// Channels per multivariate dataset.
    pub channels: usize,
    /// Master seed; every series derives its own seed from it.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            domains: Domain::ALL.to_vec(),
            per_domain: 20,
            length: 400,
            multivariate_per_domain: 0,
            channels: 3,
            seed: 7,
        }
    }
}

/// Builds a full synthetic corpus of datasets with measured characteristics.
pub fn build_corpus(config: &CorpusConfig) -> Result<Vec<Dataset>, DataError> {
    let mut out = Vec::with_capacity(
        config.domains.len() * (config.per_domain + config.multivariate_per_domain),
    );
    for (di, &domain) in config.domains.iter().enumerate() {
        for i in 0..config.per_domain {
            let spec = domain_spec(domain, i, config.length);
            let seed = config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((di as u64) << 32)
                .wrapping_add(i as u64);
            let id = format!("{}_{:04}", domain.name(), i);
            let ts = generate(id.clone(), &spec, seed)?;
            out.push(Dataset::from_univariate(id, domain, ts));
        }
        for i in 0..config.multivariate_per_domain {
            let seed = config
                .seed
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add((di as u64) << 40)
                .wrapping_add(i as u64);
            let id = format!("{}_mv_{:02}", domain.name(), i);
            let ms = generate_multivariate(&id, domain, config.channels, config.length, seed)?;
            out.push(Dataset::from_multivariate(id, domain, ms));
        }
    }
    Ok(out)
}

/// Generates a multivariate dataset whose channels share a latent factor, so
/// the Correlation characteristic is genuinely present.
pub fn generate_multivariate(
    name: &str,
    domain: Domain,
    channels: usize,
    length: usize,
    seed: u64,
) -> Result<MultiSeries, DataError> {
    if channels < 2 {
        return Err(DataError::InvalidSpec { reason: "multivariate needs ≥ 2 channels".into() });
    }
    let base_spec = domain_spec(domain, 0, length);
    let latent = generate(format!("{name}/latent"), &base_spec, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let mut names = Vec::with_capacity(channels);
    let mut data = Vec::with_capacity(channels);
    for c in 0..channels {
        let weight = 0.6 + 0.4 * rng.gen_f64();
        let offset = 5.0 * rng.gen_f64();
        let noise_scale = 0.2 * easytime_linalg::stats::std_dev(latent.values()).max(1e-9);
        let values: Vec<f64> = latent
            .values()
            .iter()
            .map(|&x| weight * x + offset + noise_scale * rng.normal())
            .collect();
        names.push(format!("ch{c}"));
        data.push(values);
    }
    MultiSeries::new(name, names, data, base_spec.frequency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = domain_spec(Domain::Electricity, 0, 200);
        let a = generate("a", &spec, 42).unwrap();
        let b = generate("b", &spec, 42).unwrap();
        assert_eq!(a.values(), b.values());
        let c = generate("c", &spec, 43).unwrap();
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        let mut spec = SyntheticSpec::baseline(8, Frequency::Daily);
        assert!(matches!(generate("x", &spec, 0), Err(DataError::InvalidSpec { .. })));
        spec.length = 100;
        spec.shifts.push(LevelShift { at: 1.5, magnitude: 1.0 });
        assert!(generate("x", &spec, 0).is_err());
        spec.shifts.clear();
        spec.noise = NoiseSpec::Ar1 { phi: 1.2, sigma: 1.0 };
        assert!(generate("x", &spec, 0).is_err());
    }

    #[test]
    fn seasonal_spec_yields_seasonal_characteristic() {
        let spec = domain_spec(Domain::Nature, 0, 360);
        let ts = generate("n", &spec, 5).unwrap();
        let c = crate::characteristics::extract(&ts);
        assert!(c.seasonality > 0.6, "seasonality {}", c.seasonality);
        assert_eq!(c.period, 12);
    }

    #[test]
    fn random_walk_is_non_stationary() {
        let spec = domain_spec(Domain::Stock, 0, 400);
        let ts = generate("s", &spec, 11).unwrap();
        let c = crate::characteristics::extract(&ts);
        assert!(c.stationarity < 0.4, "stationarity {}", c.stationarity);
        assert!(c.seasonality < 0.5, "seasonality {}", c.seasonality);
    }

    #[test]
    fn trending_domain_has_trend() {
        let spec = domain_spec(Domain::Banking, 1, 240);
        let ts = generate("b", &spec, 3).unwrap();
        let c = crate::characteristics::extract(&ts);
        assert!(c.trend > 0.6, "trend {}", c.trend);
    }

    #[test]
    fn level_shift_spec_produces_shifting() {
        let mut spec = SyntheticSpec::baseline(300, Frequency::Daily);
        spec.noise = NoiseSpec::Gaussian { sigma: 0.5 };
        spec.shifts.push(LevelShift { at: 0.5, magnitude: 8.0 });
        let ts = generate("shift", &spec, 9).unwrap();
        let c = crate::characteristics::extract(&ts);
        assert!(c.shifting > 0.6, "shifting {}", c.shifting);
    }

    #[test]
    fn corpus_covers_all_domains_with_ids() {
        let config = CorpusConfig {
            per_domain: 3,
            length: 120,
            multivariate_per_domain: 1,
            channels: 3,
            ..CorpusConfig::default()
        };
        let corpus = build_corpus(&config).unwrap();
        assert_eq!(corpus.len(), 10 * 4);
        let mut ids: Vec<&str> = corpus.iter().map(|d| d.meta.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "dataset ids must be unique");
        assert!(corpus.iter().any(|d| d.meta.is_multivariate()));
        for d in &corpus {
            assert_eq!(d.meta.length, 120);
        }
    }

    #[test]
    fn corpus_is_reproducible_from_seed() {
        let config = CorpusConfig { per_domain: 2, length: 100, ..CorpusConfig::default() };
        let a = build_corpus(&config).unwrap();
        let b = build_corpus(&config).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.primary_series().values(), y.primary_series().values());
        }
    }

    #[test]
    fn multivariate_channels_are_correlated() {
        let ms = generate_multivariate("mv", Domain::Traffic, 4, 300, 77).unwrap();
        assert_eq!(ms.num_channels(), 4);
        let c = crate::characteristics::extract_multi(&ms);
        assert!(c.correlation > 0.5, "correlation {}", c.correlation);
        assert!(generate_multivariate("mv", Domain::Traffic, 1, 300, 77).is_err());
    }

    #[test]
    fn piecewise_trend_is_continuous() {
        let spec = TrendSpec::Piecewise { slope: 1.0, segment: 10 };
        // At segment boundaries the value must not jump.
        for t in 1..50usize {
            let prev = trend_at(&spec, 0.0, t - 1);
            let here = trend_at(&spec, 0.0, t);
            assert!((here - prev).abs() < 1.0 + 1e-9, "jump at t={t}: {prev} -> {here}");
        }
    }
}
