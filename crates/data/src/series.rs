//! Core time-series value types.
//!
//! [`TimeSeries`] is the univariate workhorse used by every forecaster;
//! [`MultiSeries`] carries aligned channels for the multivariate datasets and
//! the Correlation characteristic. Both validate their data eagerly so that
//! downstream numerical code can assume finite values.

use crate::error::DataError;

/// Sampling frequency of a series.
///
/// The frequency provides the *default seasonal period* used by seasonal
/// models and by the characteristic extractor when no period is detectable
/// from the data itself, mirroring how TFB datasets carry frequency
/// meta-information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// One observation per hour (default period 24).
    Hourly,
    /// One observation per day (default period 7).
    Daily,
    /// One observation per week (default period 52).
    Weekly,
    /// One observation per month (default period 12).
    Monthly,
    /// One observation per quarter (default period 4).
    Quarterly,
    /// One observation per year (no default period).
    Yearly,
    /// Unknown cadence (no default period).
    Unknown,
}

impl Frequency {
    /// The conventional seasonal period for this frequency, if any.
    pub fn default_period(self) -> Option<usize> {
        match self {
            Frequency::Hourly => Some(24),
            Frequency::Daily => Some(7),
            Frequency::Weekly => Some(52),
            Frequency::Monthly => Some(12),
            Frequency::Quarterly => Some(4),
            Frequency::Yearly | Frequency::Unknown => None,
        }
    }

    /// Canonical lowercase name, stable across releases (used in the
    /// benchmark-knowledge database and config files).
    pub fn name(self) -> &'static str {
        match self {
            Frequency::Hourly => "hourly",
            Frequency::Daily => "daily",
            Frequency::Weekly => "weekly",
            Frequency::Monthly => "monthly",
            Frequency::Quarterly => "quarterly",
            Frequency::Yearly => "yearly",
            Frequency::Unknown => "unknown",
        }
    }

    /// Parses a [`Frequency`] from its canonical name.
    pub fn parse(s: &str) -> Option<Frequency> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hourly" | "h" => Some(Frequency::Hourly),
            "daily" | "d" => Some(Frequency::Daily),
            "weekly" | "w" => Some(Frequency::Weekly),
            "monthly" | "m" => Some(Frequency::Monthly),
            "quarterly" | "q" => Some(Frequency::Quarterly),
            "yearly" | "y" | "annual" => Some(Frequency::Yearly),
            "unknown" => Some(Frequency::Unknown),
            _ => None,
        }
    }
}

/// A named univariate time series with finite `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
    frequency: Frequency,
}

impl TimeSeries {
    /// Returns a copy renamed to `name` (test fixtures).
    #[cfg(test)]
    pub(crate) fn renamed(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries { name: name.into(), values: self.values.clone(), frequency: self.frequency }
    }

    /// Creates a series after validating that it is non-empty and finite.
    pub fn new(
        name: impl Into<String>,
        values: Vec<f64>,
        frequency: Frequency,
    ) -> Result<Self, DataError> {
        let name = name.into();
        if values.is_empty() {
            return Err(DataError::EmptySeries { name });
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFiniteValue { name, index });
        }
        Ok(Self { name, values, frequency })
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Observations, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sampling frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Last observation.
    pub fn last(&self) -> f64 {
        // lint: allow(panic) — the constructor rejects empty value vectors,
        // so a TimeSeries always has a last observation.
        *self.values.last().expect("TimeSeries is never empty")
    }

    /// Returns a new series holding `values[range]`, preserving name and
    /// frequency.
    pub fn slice(&self, start: usize, end: usize) -> Result<TimeSeries, DataError> {
        if start >= end || end > self.values.len() {
            return Err(DataError::InvalidSplit {
                reason: format!(
                    "slice {start}..{end} out of bounds for series of length {}",
                    self.values.len()
                ),
            });
        }
        Ok(TimeSeries {
            name: self.name.clone(),
            values: self.values[start..end].to_vec(),
            frequency: self.frequency,
        })
    }

    /// Returns a copy with different values but the same identity; used by
    /// scalers and differencing transforms.
    pub fn with_values(&self, values: Vec<f64>) -> Result<TimeSeries, DataError> {
        TimeSeries::new(self.name.clone(), values, self.frequency)
    }

    /// Replaces this series' observations in place, reusing the existing
    /// allocation (the rolling-evaluation hot loop recycles one carrier
    /// series per job). Validates like [`TimeSeries::new`] — and validates
    /// *before* mutating, so a failed assignment leaves the series intact.
    pub fn assign_values(&mut self, values: &[f64]) -> Result<(), DataError> {
        if values.is_empty() {
            return Err(DataError::EmptySeries { name: self.name.clone() });
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFiniteValue { name: self.name.clone(), index });
        }
        self.values.clear();
        self.values.extend_from_slice(values);
        Ok(())
    }

}

/// A named multivariate series: aligned channels of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    name: String,
    channel_names: Vec<String>,
    channels: Vec<Vec<f64>>,
    frequency: Frequency,
}

impl MultiSeries {
    /// Creates a multivariate series after validating alignment and
    /// finiteness.
    pub fn new(
        name: impl Into<String>,
        channel_names: Vec<String>,
        channels: Vec<Vec<f64>>,
        frequency: Frequency,
    ) -> Result<Self, DataError> {
        let name = name.into();
        if channels.is_empty() || channels[0].is_empty() {
            return Err(DataError::EmptySeries { name });
        }
        if channel_names.len() != channels.len() {
            return Err(DataError::RaggedChannels {
                expected: channels.len(),
                found: channel_names.len(),
            });
        }
        let len = channels[0].len();
        for ch in &channels {
            if ch.len() != len {
                return Err(DataError::RaggedChannels { expected: len, found: ch.len() });
            }
            if let Some(index) = ch.iter().position(|v| !v.is_finite()) {
                return Err(DataError::NonFiniteValue { name, index });
            }
        }
        Ok(Self { name, channel_names, channels, frequency })
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of aligned time steps.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Number of channels (variables).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Channel values by index.
    pub fn channel(&self, i: usize) -> &[f64] {
        &self.channels[i]
    }

    /// Channel names, aligned with channel indices.
    pub fn channel_names(&self) -> &[String] {
        &self.channel_names
    }

    /// Sampling frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Extracts one channel as a standalone [`TimeSeries`].
    pub fn to_univariate(&self, i: usize) -> Result<TimeSeries, DataError> {
        if i >= self.channels.len() {
            return Err(DataError::UnknownDataset {
                id: format!("{}[{}]", self.name, i),
            });
        }
        TimeSeries::new(
            format!("{}/{}", self.name, self.channel_names[i]),
            self.channels[i].clone(),
            self.frequency,
        )
    }

    /// Returns a new multivariate series holding rows `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Result<MultiSeries, DataError> {
        if start >= end || end > self.len() {
            return Err(DataError::InvalidSplit {
                reason: format!("slice {start}..{end} out of bounds for length {}", self.len()),
            });
        }
        let channels = self.channels.iter().map(|c| c[start..end].to_vec()).collect();
        MultiSeries::new(self.name.clone(), self.channel_names.clone(), channels, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_periods_and_names_round_trip() {
        for f in [
            Frequency::Hourly,
            Frequency::Daily,
            Frequency::Weekly,
            Frequency::Monthly,
            Frequency::Quarterly,
            Frequency::Yearly,
            Frequency::Unknown,
        ] {
            assert_eq!(Frequency::parse(f.name()), Some(f));
        }
        assert_eq!(Frequency::Hourly.default_period(), Some(24));
        assert_eq!(Frequency::Monthly.default_period(), Some(12));
        assert_eq!(Frequency::Yearly.default_period(), None);
        assert_eq!(Frequency::parse("H"), Some(Frequency::Hourly));
        assert_eq!(Frequency::parse("fortnightly"), None);
    }

    #[test]
    fn series_rejects_empty_and_non_finite() {
        assert!(matches!(
            TimeSeries::new("a", vec![], Frequency::Daily),
            Err(DataError::EmptySeries { .. })
        ));
        let err = TimeSeries::new("a", vec![1.0, f64::NAN], Frequency::Daily);
        assert!(matches!(err, Err(DataError::NonFiniteValue { index: 1, .. })));
        let err = TimeSeries::new("a", vec![f64::INFINITY], Frequency::Daily);
        assert!(matches!(err, Err(DataError::NonFiniteValue { index: 0, .. })));
    }

    #[test]
    fn series_slicing() {
        let ts = TimeSeries::new("s", vec![1.0, 2.0, 3.0, 4.0], Frequency::Daily).unwrap();
        let mid = ts.slice(1, 3).unwrap();
        assert_eq!(mid.values(), &[2.0, 3.0]);
        assert_eq!(mid.name(), "s");
        assert!(ts.slice(2, 2).is_err());
        assert!(ts.slice(0, 5).is_err());
        assert_eq!(ts.last(), 4.0);
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn multiseries_validates_alignment() {
        let ok = MultiSeries::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            Frequency::Hourly,
        );
        assert!(ok.is_ok());
        let ragged = MultiSeries::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0]],
            Frequency::Hourly,
        );
        assert!(matches!(ragged, Err(DataError::RaggedChannels { expected: 2, found: 1 })));
        let misnamed = MultiSeries::new(
            "m",
            vec!["a".into()],
            vec![vec![1.0], vec![2.0]],
            Frequency::Hourly,
        );
        assert!(matches!(misnamed, Err(DataError::RaggedChannels { .. })));
    }

    #[test]
    fn multiseries_channel_extraction_and_slice() {
        let m = MultiSeries::new(
            "grid",
            vec!["load".into(), "temp".into()],
            vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]],
            Frequency::Hourly,
        )
        .unwrap();
        let u = m.to_univariate(1).unwrap();
        assert_eq!(u.name(), "grid/temp");
        assert_eq!(u.values(), &[10.0, 20.0, 30.0]);
        assert!(m.to_univariate(2).is_err());

        let s = m.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.channel(0), &[2.0, 3.0]);
        assert_eq!(m.num_channels(), 2);
    }

    #[test]
    fn with_values_preserves_identity() {
        let ts = TimeSeries::new("s", vec![1.0, 2.0], Frequency::Monthly).unwrap();
        let t2 = ts.with_values(vec![5.0, 6.0, 7.0]).unwrap();
        assert_eq!(t2.name(), "s");
        assert_eq!(t2.frequency(), Frequency::Monthly);
        assert_eq!(t2.len(), 3);
        assert!(ts.with_values(vec![f64::NAN]).is_err());
        assert_eq!(ts.renamed("other").name(), "other");
    }
}
