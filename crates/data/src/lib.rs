//! Data layer of EasyTime: time-series types, the synthetic benchmark corpus,
//! characteristic extraction, preprocessing, and the dataset registry.
//!
//! This crate reproduces TFB's *data layer* (paper §II-A). The paper's corpus
//! of 8,068 real univariate and 25 multivariate datasets across 10 domains is
//! substituted by a seeded synthetic generator bank ([`synthetic`]) that
//! produces per-domain corpora with controllable characteristics —
//! Seasonality, Trend, Transition, Shifting, Stationarity, and Correlation —
//! exactly the six characteristics the paper lists. Characteristic
//! *measurement* (used by the method-recommendation UI, Figure 4 label 4) is
//! implemented in [`characteristics`].
//!
//! The rest of the platform only consumes [`TimeSeries`] / [`MultiSeries`]
//! values plus [`DatasetMeta`], so real datasets can be loaded through the
//! [`csv`] module and dropped into the same registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characteristics;
pub mod csv;
pub mod dataset;
pub mod decompose;
pub mod error;
pub mod registry;
pub mod scaler;
pub mod series;
pub mod split;
pub mod synthetic;

pub use characteristics::Characteristics;
pub use dataset::{Dataset, DatasetMeta, Domain};
pub use error::DataError;
pub use registry::DatasetRegistry;
pub use scaler::Scaler;
pub use series::{Frequency, MultiSeries, TimeSeries};
pub use split::{Split, SplitSpec};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
