//! Normalization of series values.
//!
//! Challenge 1 in the paper lists "the choice of normalization techniques"
//! among the consistency hazards of TSF evaluation. [`Scaler`] makes the
//! choice explicit and enforces the golden rule: statistics are fitted on
//! the *training* partition only and then applied to validation/test data
//! and inverted on forecasts.

use crate::error::DataError;
use easytime_linalg::stats::{mean, quantile, std_dev};

/// Normalization method selector (the config-file-facing type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScalerKind {
    /// No normalization.
    #[default]
    None,
    /// Subtract mean, divide by standard deviation.
    ZScore,
    /// Map the training range onto `[0, 1]`.
    MinMax,
    /// Subtract median, divide by inter-quartile range (outlier-robust).
    Robust,
}

impl ScalerKind {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ScalerKind::None => "none",
            ScalerKind::ZScore => "zscore",
            ScalerKind::MinMax => "minmax",
            ScalerKind::Robust => "robust",
        }
    }

    /// Parses a kind from its canonical name.
    pub fn parse(s: &str) -> Option<ScalerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "" => Some(ScalerKind::None),
            "zscore" | "z-score" | "standard" => Some(ScalerKind::ZScore),
            "minmax" | "min-max" => Some(ScalerKind::MinMax),
            "robust" => Some(ScalerKind::Robust),
            _ => None,
        }
    }
}

/// A (possibly fitted) scaler: affine transform `y = (x - shift) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    kind: ScalerKind,
    fitted: Option<(f64, f64)>, // (shift, scale)
}

impl Scaler {
    /// Creates an unfitted scaler of the given kind.
    pub fn new(kind: ScalerKind) -> Scaler {
        Scaler { kind, fitted: None }
    }

    /// The scaler's kind.
    pub fn kind(&self) -> ScalerKind {
        self.kind
    }

    /// Fits the scaler's statistics on training values.
    pub fn fit(&mut self, train: &[f64]) -> Result<(), DataError> {
        if train.is_empty() {
            return Err(DataError::EmptySeries { name: "<scaler input>".into() });
        }
        let (shift, scale) = match self.kind {
            ScalerKind::None => (0.0, 1.0),
            ScalerKind::ZScore => (mean(train), std_dev(train).max(1e-12)),
            ScalerKind::MinMax => {
                let lo = train.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = train.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (lo, (hi - lo).max(1e-12))
            }
            ScalerKind::Robust => {
                match (quantile(train, 0.5), quantile(train, 0.25), quantile(train, 0.75)) {
                    (Some(med), Some(q1), Some(q3)) => (med, (q3 - q1).max(1e-12)),
                    // Unreachable: emptiness was rejected above; fall back
                    // to the identity transform rather than panicking.
                    _ => (0.0, 1.0),
                }
            }
        };
        self.fitted = Some((shift, scale));
        Ok(())
    }

    /// Applies the fitted transform to values.
    pub fn transform(&self, values: &[f64]) -> Result<Vec<f64>, DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        Ok(values.iter().map(|v| (v - shift) / scale).collect())
    }

    /// Inverts the fitted transform (used on forecasts before metrics,
    /// matching TFB's "unified post-processing").
    pub fn inverse(&self, values: &[f64]) -> Result<Vec<f64>, DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        Ok(values.iter().map(|v| v * scale + shift).collect())
    }

    /// Convenience: fit on `train` and return the transformed copy.
    pub fn fit_transform(&mut self, train: &[f64]) -> Result<Vec<f64>, DataError> {
        self.fit(train)?;
        self.transform(train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust] {
            assert_eq!(ScalerKind::parse(k.name()), Some(k));
        }
        assert_eq!(ScalerKind::parse("standard"), Some(ScalerKind::ZScore));
        assert_eq!(ScalerKind::parse("log"), None);
    }

    #[test]
    fn zscore_normalizes_train_to_unit_stats() {
        let train: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut s = Scaler::new(ScalerKind::ZScore);
        let z = s.fit_transform(&train).unwrap();
        assert!(mean(&z).abs() < 1e-9);
        assert!((std_dev(&z) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_maps_train_to_unit_interval() {
        let train = vec![5.0, 10.0, 7.5];
        let mut s = Scaler::new(ScalerKind::MinMax);
        let z = s.fit_transform(&train).unwrap();
        assert_eq!(z, vec![0.0, 1.0, 0.5]);
        // Out-of-range test values may exceed [0, 1] — that is correct
        // behaviour for train-fitted scalers.
        let t = s.transform(&[12.5]).unwrap();
        assert!((t[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn robust_centers_on_median() {
        let train = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let mut s = Scaler::new(ScalerKind::Robust);
        let z = s.fit_transform(&train).unwrap();
        // Median 3.0 maps to 0.
        assert!(z[2].abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        for kind in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust] {
            let train: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0).collect();
            let mut s = Scaler::new(kind);
            s.fit(&train).unwrap();
            let test = vec![-4.0, 0.0, 7.25, 99.0];
            let round = s.inverse(&s.transform(&test).unwrap()).unwrap();
            for (a, b) in test.iter().zip(&round) {
                assert!((a - b).abs() < 1e-9, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unfitted_scaler_errors() {
        let s = Scaler::new(ScalerKind::ZScore);
        assert_eq!(s.transform(&[1.0]), Err(DataError::ScalerNotFitted));
        assert_eq!(s.inverse(&[1.0]), Err(DataError::ScalerNotFitted));
        let mut s2 = Scaler::new(ScalerKind::ZScore);
        assert!(s2.fit(&[]).is_err());
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut s = Scaler::new(ScalerKind::ZScore);
        let z = s.fit_transform(&[5.0, 5.0, 5.0]).unwrap();
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
