//! Normalization of series values.
//!
//! Challenge 1 in the paper lists "the choice of normalization techniques"
//! among the consistency hazards of TSF evaluation. [`Scaler`] makes the
//! choice explicit and enforces the golden rule: statistics are fitted on
//! the *training* partition only and then applied to validation/test data
//! and inverted on forecasts.

use crate::error::DataError;
use easytime_linalg::stats::{mean, quantile, std_dev};

/// Normalization method selector (the config-file-facing type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScalerKind {
    /// No normalization.
    #[default]
    None,
    /// Subtract mean, divide by standard deviation.
    ZScore,
    /// Map the training range onto `[0, 1]`.
    MinMax,
    /// Subtract median, divide by inter-quartile range (outlier-robust).
    Robust,
}

impl ScalerKind {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ScalerKind::None => "none",
            ScalerKind::ZScore => "zscore",
            ScalerKind::MinMax => "minmax",
            ScalerKind::Robust => "robust",
        }
    }

    /// Parses a kind from its canonical name.
    pub fn parse(s: &str) -> Option<ScalerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "" => Some(ScalerKind::None),
            "zscore" | "z-score" | "standard" => Some(ScalerKind::ZScore),
            "minmax" | "min-max" => Some(ScalerKind::MinMax),
            "robust" => Some(ScalerKind::Robust),
            _ => None,
        }
    }
}

/// Streaming statistics maintained by [`Scaler::extend`], allowing a
/// growing training prefix to refresh its fit in O(appended) instead of
/// rescanning the whole prefix (rolling-origin evaluation's hot path).
#[derive(Debug, Clone, PartialEq)]
enum StreamStats {
    /// No streaming statistics are being maintained (plain [`Scaler::fit`],
    /// or a kind whose statistics cannot stream).
    Inactive,
    /// Identity transform ([`ScalerKind::None`]): nothing to maintain.
    Identity,
    /// Welford running mean / M2 for [`ScalerKind::ZScore`].
    Welford {
        count: usize,
        mean: f64,
        m2: f64,
    },
    /// Running range for [`ScalerKind::MinMax`].
    Range { lo: f64, hi: f64 },
}

/// A (possibly fitted) scaler: affine transform `y = (x - shift) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    kind: ScalerKind,
    fitted: Option<(f64, f64)>, // (shift, scale)
    stream: StreamStats,
}

impl Scaler {
    /// Allocation-free [`Scaler::inverse`]: writes into `out` (cleared
    /// first), reusing its capacity (test oracle).
    #[cfg(test)]
    pub(crate) fn inverse_into(&self, values: &[f64], out: &mut Vec<f64>) -> Result<(), DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        out.clear();
        out.extend(values.iter().map(|v| v * scale + shift));
        Ok(())
    }

    /// Creates an unfitted scaler of the given kind.
    pub fn new(kind: ScalerKind) -> Scaler {
        Scaler { kind, fitted: None, stream: StreamStats::Inactive }
    }

    /// The scaler's kind.
    pub fn kind(&self) -> ScalerKind {
        self.kind
    }

    /// The fitted `(shift, scale)` pair, if any.
    pub fn fitted_params(&self) -> Option<(f64, f64)> {
        self.fitted
    }

    /// Whether this kind's statistics can be maintained incrementally by
    /// [`Scaler::extend`]. Robust scaling needs full-order statistics
    /// (median / IQR), so it always requires a rescan.
    pub(crate) fn supports_streaming(&self) -> bool {
        match self.kind {
            ScalerKind::None | ScalerKind::ZScore | ScalerKind::MinMax => true,
            ScalerKind::Robust => false,
        }
    }

    /// Fits the scaler's statistics on training values.
    pub fn fit(&mut self, train: &[f64]) -> Result<(), DataError> {
        if train.is_empty() {
            return Err(DataError::EmptySeries { name: "<scaler input>".into() });
        }
        let (shift, scale) = match self.kind {
            ScalerKind::None => (0.0, 1.0),
            ScalerKind::ZScore => (mean(train), std_dev(train).max(1e-12)),
            ScalerKind::MinMax => {
                let lo = train.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = train.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (lo, (hi - lo).max(1e-12))
            }
            ScalerKind::Robust => {
                match (quantile(train, 0.5), quantile(train, 0.25), quantile(train, 0.75)) {
                    (Some(med), Some(q1), Some(q3)) => (med, (q3 - q1).max(1e-12)),
                    // Unreachable: emptiness was rejected above; fall back
                    // to the identity transform rather than panicking.
                    _ => (0.0, 1.0),
                }
            }
        };
        self.fitted = Some((shift, scale));
        // A full refit invalidates any previously streamed statistics: the
        // caller chose non-incremental semantics for this fit.
        self.stream = StreamStats::Inactive;
        Ok(())
    }

    /// Streams additional training observations into the fitted statistics.
    ///
    /// On an unfitted scaler this seeds the streaming state from `appended`
    /// (equivalent to a first fit); on a scaler previously extended it folds
    /// the new values in incrementally — O(appended) work, so window N+1 of
    /// a rolling evaluation reuses window N's fit instead of rescanning the
    /// prefix. Mean/variance use Welford's update; min-max keeps a running
    /// range.
    ///
    /// Returns `Ok(true)` when the statistics were updated (the fitted
    /// parameters now cover every value seen so far), or `Ok(false)` when
    /// this scaler cannot stream — the kind needs full-order statistics
    /// ([`ScalerKind::Robust`]) or the scaler was fitted non-incrementally
    /// via [`Scaler::fit`] — in which case the caller must refit on the
    /// whole prefix and the scaler is left unchanged.
    pub fn extend(&mut self, appended: &[f64]) -> Result<bool, DataError> {
        if !self.supports_streaming() {
            return Ok(false);
        }
        if self.fitted.is_some() && self.stream == StreamStats::Inactive {
            // Plain-fit statistics carry no streamable state.
            return Ok(false);
        }
        if self.fitted.is_none() && appended.is_empty() {
            return Err(DataError::EmptySeries { name: "<scaler input>".into() });
        }
        match self.kind {
            ScalerKind::None => {
                self.stream = StreamStats::Identity;
                self.fitted = Some((0.0, 1.0));
            }
            ScalerKind::ZScore => {
                let (mut count, mut m, mut m2) = match self.stream {
                    StreamStats::Welford { count, mean, m2 } => (count, mean, m2),
                    _ => (0, 0.0, 0.0),
                };
                for &v in appended {
                    count += 1;
                    let delta = v - m;
                    m += delta / count as f64;
                    m2 += delta * (v - m);
                }
                self.stream = StreamStats::Welford { count, mean: m, m2 };
                let variance = if count > 0 { m2 / count as f64 } else { 0.0 };
                self.fitted = Some((m, variance.sqrt().max(1e-12)));
            }
            ScalerKind::MinMax => {
                let (mut lo, mut hi) = match self.stream {
                    StreamStats::Range { lo, hi } => (lo, hi),
                    _ => (f64::INFINITY, f64::NEG_INFINITY),
                };
                lo = appended.iter().cloned().fold(lo, f64::min);
                hi = appended.iter().cloned().fold(hi, f64::max);
                self.stream = StreamStats::Range { lo, hi };
                self.fitted = Some((lo, (hi - lo).max(1e-12)));
            }
            // Unreachable: `supports_streaming` returned above.
            ScalerKind::Robust => return Ok(false),
        }
        Ok(true)
    }

    /// Applies the fitted transform to values.
    pub fn transform(&self, values: &[f64]) -> Result<Vec<f64>, DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        Ok(values.iter().map(|v| (v - shift) / scale).collect())
    }

    /// Inverts the fitted transform (used on forecasts before metrics,
    /// matching TFB's "unified post-processing").
    pub fn inverse(&self, values: &[f64]) -> Result<Vec<f64>, DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        Ok(values.iter().map(|v| v * scale + shift).collect())
    }

    /// Convenience: fit on `train` and return the transformed copy.
    pub fn fit_transform(&mut self, train: &[f64]) -> Result<Vec<f64>, DataError> {
        self.fit(train)?;
        self.transform(train)
    }

    /// Allocation-free [`Scaler::transform`]: writes into `out` (cleared
    /// first), reusing its capacity. Hot-loop variant for rolling
    /// evaluation workspaces.
    pub fn transform_into(&self, values: &[f64], out: &mut Vec<f64>) -> Result<(), DataError> {
        let (shift, scale) = self.fitted.ok_or(DataError::ScalerNotFitted)?;
        out.clear();
        out.extend(values.iter().map(|v| (v - shift) / scale));
        Ok(())
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust] {
            assert_eq!(ScalerKind::parse(k.name()), Some(k));
        }
        assert_eq!(ScalerKind::parse("standard"), Some(ScalerKind::ZScore));
        assert_eq!(ScalerKind::parse("log"), None);
    }

    #[test]
    fn zscore_normalizes_train_to_unit_stats() {
        let train: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut s = Scaler::new(ScalerKind::ZScore);
        let z = s.fit_transform(&train).unwrap();
        assert!(mean(&z).abs() < 1e-9);
        assert!((std_dev(&z) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_maps_train_to_unit_interval() {
        let train = vec![5.0, 10.0, 7.5];
        let mut s = Scaler::new(ScalerKind::MinMax);
        let z = s.fit_transform(&train).unwrap();
        assert_eq!(z, vec![0.0, 1.0, 0.5]);
        // Out-of-range test values may exceed [0, 1] — that is correct
        // behaviour for train-fitted scalers.
        let t = s.transform(&[12.5]).unwrap();
        assert!((t[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn robust_centers_on_median() {
        let train = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let mut s = Scaler::new(ScalerKind::Robust);
        let z = s.fit_transform(&train).unwrap();
        // Median 3.0 maps to 0.
        assert!(z[2].abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        for kind in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust] {
            let train: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0).collect();
            let mut s = Scaler::new(kind);
            s.fit(&train).unwrap();
            let test = vec![-4.0, 0.0, 7.25, 99.0];
            let round = s.inverse(&s.transform(&test).unwrap()).unwrap();
            for (a, b) in test.iter().zip(&round) {
                assert!((a - b).abs() < 1e-9, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unfitted_scaler_errors() {
        let s = Scaler::new(ScalerKind::ZScore);
        assert_eq!(s.transform(&[1.0]), Err(DataError::ScalerNotFitted));
        assert_eq!(s.inverse(&[1.0]), Err(DataError::ScalerNotFitted));
        let mut s2 = Scaler::new(ScalerKind::ZScore);
        assert!(s2.fit(&[]).is_err());
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut s = Scaler::new(ScalerKind::ZScore);
        let z = s.fit_transform(&[5.0, 5.0, 5.0]).unwrap();
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn extend_seeds_then_streams_and_matches_refit() {
        let values: Vec<f64> = (0..200).map(|i| (i as f64 * 0.13).sin() * 7.0 + 2.0).collect();
        for kind in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax] {
            let mut streamed = Scaler::new(kind);
            assert!(streamed.extend(&values[..50]).unwrap());
            assert!(streamed.extend(&values[50..120]).unwrap());
            assert!(streamed.extend(&values[120..]).unwrap());
            let mut refit = Scaler::new(kind);
            refit.fit(&values).unwrap();
            let (s1, c1) = streamed.fitted_params().unwrap();
            let (s2, c2) = refit.fitted_params().unwrap();
            assert!((s1 - s2).abs() < 1e-9, "{kind:?} shift {s1} vs {s2}");
            assert!((c1 - c2).abs() < 1e-9, "{kind:?} scale {c1} vs {c2}");
        }
    }

    #[test]
    fn robust_and_plain_fit_refuse_to_stream() {
        // Robust needs full-order statistics.
        let mut r = Scaler::new(ScalerKind::Robust);
        assert!(!r.supports_streaming());
        assert_eq!(r.extend(&[1.0, 2.0]), Ok(false));
        assert!(r.fitted_params().is_none());
        // A plain fit carries no streamable state.
        let mut z = Scaler::new(ScalerKind::ZScore);
        z.fit(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(z.extend(&[4.0]), Ok(false));
        // An empty seed is as invalid as an empty fit.
        let mut fresh = Scaler::new(ScalerKind::ZScore);
        assert!(fresh.extend(&[]).is_err());
        // An empty extension of live streaming state is a no-op.
        fresh.extend(&[5.0, 6.0]).unwrap();
        let before = fresh.fitted_params();
        assert_eq!(fresh.extend(&[]), Ok(true));
        assert_eq!(fresh.fitted_params(), before);
    }

    #[test]
    fn transform_into_and_inverse_into_reuse_buffers() {
        let mut s = Scaler::new(ScalerKind::ZScore);
        s.fit(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let input = [0.5, 2.5, 9.0];
        let mut buf = Vec::new();
        s.transform_into(&input, &mut buf).unwrap();
        assert_eq!(buf, s.transform(&input).unwrap());
        let mut back = Vec::new();
        s.inverse_into(&buf, &mut back).unwrap();
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(
            Scaler::new(ScalerKind::ZScore).transform_into(&input, &mut buf),
            Err(DataError::ScalerNotFitted)
        );
    }
}
