//! Thread-safe dataset registry.
//!
//! The registry plays the role of TFB's dataset store: the one-click
//! evaluation pipeline iterates it ("run a method on all existing datasets
//! with one click", paper §II-B), the frontend's *Choose Dataset* button
//! (Figure 4, label 2) looks datasets up by id, and uploads (label 1)
//! insert new entries. It is guarded by a `std::sync::RwLock` so the
//! parallel pipeline can read concurrently while uploads are rare writes.

use crate::dataset::Dataset;
use crate::error::DataError;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Thread-safe, insertion-ordered collection of datasets keyed by id.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    inner: RwLock<Vec<Dataset>>,
}

impl DatasetRegistry {
    /// Creates a registry pre-populated with a corpus (test fixtures).
    #[cfg(test)]
    pub(crate) fn from_corpus(corpus: Vec<Dataset>) -> DatasetRegistry {
        DatasetRegistry { inner: RwLock::new(corpus) }
    }

    /// Datasets from one domain (test fixtures).
    #[cfg(test)]
    pub(crate) fn by_domain(&self, domain: crate::dataset::Domain) -> Vec<Dataset> {
        self.read().iter().filter(|d| d.meta.domain == domain).cloned().collect()
    }

    /// Read guard; a poisoned lock is recovered rather than propagated
    /// (datasets are value types, so a panicked writer cannot leave a
    /// half-updated entry behind).
    fn read(&self) -> RwLockReadGuard<'_, Vec<Dataset>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Dataset>> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates an empty registry.
    pub fn new() -> DatasetRegistry {
        DatasetRegistry::default()
    }

    /// Inserts a dataset; replaces any existing dataset with the same id
    /// (re-upload semantics) and returns whether a replacement happened.
    pub fn insert(&self, dataset: Dataset) -> bool {
        let mut guard = self.write();
        if let Some(existing) = guard.iter_mut().find(|d| d.meta.id == dataset.meta.id) {
            *existing = dataset;
            true
        } else {
            guard.push(dataset);
            false
        }
    }

    /// Looks a dataset up by id.
    pub fn get(&self, id: &str) -> Result<Dataset, DataError> {
        self.read()
            .iter()
            .find(|d| d.meta.id == id)
            .cloned()
            .ok_or_else(|| DataError::UnknownDataset { id: id.to_string() })
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when the registry holds no datasets.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// All dataset ids in insertion order.
    pub fn ids(&self) -> Vec<String> {
        self.read().iter().map(|d| d.meta.id.clone()).collect()
    }

    /// Snapshot of every dataset (cloned; datasets are value types).
    pub fn all(&self) -> Vec<Dataset> {
        self.read().clone()
    }

    /// Datasets matching an arbitrary meta predicate (e.g. "strong trend").
    pub fn filter(&self, pred: impl Fn(&Dataset) -> bool) -> Vec<Dataset> {
        self.read().iter().filter(|d| pred(d)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Domain;
    use crate::series::{Frequency, TimeSeries};
    use crate::synthetic::{build_corpus, CorpusConfig};

    fn tiny(id: &str, domain: Domain, level: f64) -> Dataset {
        let ts = TimeSeries::new(
            id,
            (0..50).map(|t| level + (t as f64 * 0.7).sin()).collect(),
            Frequency::Daily,
        )
        .unwrap();
        Dataset::from_univariate(id, domain, ts)
    }

    #[test]
    fn insert_get_and_replace() {
        let reg = DatasetRegistry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert(tiny("a", Domain::Web, 1.0)));
        assert_eq!(reg.len(), 1);
        let replaced = reg.insert(tiny("a", Domain::Web, 99.0));
        assert!(replaced);
        assert_eq!(reg.len(), 1);
        let got = reg.get("a").unwrap();
        assert!(got.primary_series().values()[0] > 90.0);
        assert!(matches!(reg.get("missing"), Err(DataError::UnknownDataset { .. })));
    }

    #[test]
    fn domain_and_predicate_filters() {
        let reg = DatasetRegistry::new();
        reg.insert(tiny("w1", Domain::Web, 1.0));
        reg.insert(tiny("w2", Domain::Web, 2.0));
        reg.insert(tiny("t1", Domain::Traffic, 3.0));
        assert_eq!(reg.by_domain(Domain::Web).len(), 2);
        assert_eq!(reg.by_domain(Domain::Traffic).len(), 1);
        assert_eq!(reg.by_domain(Domain::Health).len(), 0);
        let long = reg.filter(|d| d.meta.length >= 50);
        assert_eq!(long.len(), 3);
        assert_eq!(reg.ids(), vec!["w1", "w2", "t1"]);
    }

    #[test]
    fn corpus_registry_round_trip() {
        let corpus =
            build_corpus(&CorpusConfig { per_domain: 2, length: 64, ..CorpusConfig::default() })
                .unwrap();
        let n = corpus.len();
        let reg = DatasetRegistry::from_corpus(corpus);
        assert_eq!(reg.len(), n);
        let first_id = reg.ids()[0].clone();
        assert_eq!(reg.get(&first_id).unwrap().meta.id, first_id);
    }

    #[test]
    fn concurrent_reads_while_writing() {
        let reg = std::sync::Arc::new(DatasetRegistry::new());
        reg.insert(tiny("seed", Domain::Nature, 0.0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        reg.insert(tiny(&format!("d{i}_{j}"), Domain::Nature, j as f64));
                        let _ = reg.get("seed").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 1 + 4 * 25);
    }
}
