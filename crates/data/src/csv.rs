//! Minimal CSV reading/writing for series data.
//!
//! EasyTime's frontend lets practitioners *upload* their own datasets
//! (Figure 4, label 1). This module implements that ingestion path for the
//! two layouts TFB uses: a single `value` column for univariate series, and
//! a wide layout with one column per channel for multivariate data. A header
//! row is required; an optional first column named `date`, `time`, or
//! `timestamp` is skipped (ordering is positional).
//!
//! Implemented from scratch (rather than via the `csv` crate) to keep the
//! workspace on the approved dependency set; quoting is supported for
//! headers but numeric fields must be plain.

use crate::error::DataError;
use crate::series::{Frequency, MultiSeries, TimeSeries};

/// Splits one CSV line into fields, honouring double quotes.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                }
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Result of parsing a CSV document: header names and numeric columns.
struct ParsedCsv {
    columns: Vec<String>,
    data: Vec<Vec<f64>>,
}

fn parse_document(text: &str) -> Result<ParsedCsv, DataError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        reason: "document is empty".into(),
    })?;
    let mut columns: Vec<String> =
        split_line(header).into_iter().map(|c| c.trim().to_string()).collect();

    // Skip a leading timestamp column if present.
    let skip_first = columns
        .first()
        .map(|c| matches!(c.to_ascii_lowercase().as_str(), "date" | "time" | "timestamp"))
        .unwrap_or(false);
    if skip_first {
        columns.remove(0);
    }
    if columns.is_empty() {
        return Err(DataError::Csv { line: 1, reason: "no data columns in header".into() });
    }

    let mut data: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    for (idx, line) in lines {
        let mut fields = split_line(line);
        if skip_first {
            if fields.is_empty() {
                return Err(DataError::Csv { line: idx + 1, reason: "empty row".into() });
            }
            fields.remove(0);
        }
        if fields.len() != columns.len() {
            return Err(DataError::Csv {
                line: idx + 1,
                reason: format!("expected {} fields, found {}", columns.len(), fields.len()),
            });
        }
        for (col, field) in fields.iter().enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| DataError::Csv {
                line: idx + 1,
                reason: format!("'{}' is not a number", field.trim()),
            })?;
            data[col].push(v);
        }
    }
    if data[0].is_empty() {
        return Err(DataError::Csv { line: 2, reason: "no data rows".into() });
    }
    Ok(ParsedCsv { columns, data })
}

/// Reads a univariate series from CSV text (single data column, optional
/// timestamp column).
pub fn read_univariate(
    name: impl Into<String>,
    text: &str,
    frequency: Frequency,
) -> Result<TimeSeries, DataError> {
    let parsed = parse_document(text)?;
    if parsed.columns.len() != 1 {
        return Err(DataError::Csv {
            line: 1,
            reason: format!(
                "expected exactly one data column for a univariate series, found {}",
                parsed.columns.len()
            ),
        });
    }
    let column = parsed.data.into_iter().next().ok_or_else(|| DataError::Csv {
        line: 1,
        reason: "no data columns found".into(),
    })?;
    TimeSeries::new(name, column, frequency)
}

/// Reads a multivariate series from wide-layout CSV text.
pub fn read_multivariate(
    name: impl Into<String>,
    text: &str,
    frequency: Frequency,
) -> Result<MultiSeries, DataError> {
    let parsed = parse_document(text)?;
    MultiSeries::new(name, parsed.columns, parsed.data, frequency)
}

/// Writes a univariate series as CSV text (header `value`).
pub fn write_univariate(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 12 + 8);
    out.push_str("value\n");
    for v in series.values() {
        out.push_str(&format!("{v}\n"));
    }
    out
}

/// Writes a multivariate series as wide CSV text (test round-trips).
#[cfg(test)]
pub(crate) fn write_multivariate(series: &MultiSeries) -> String {
    let mut out = String::new();
    out.push_str(&series.channel_names().join(","));
    out.push('\n');
    for t in 0..series.len() {
        let row: Vec<String> =
            (0..series.num_channels()).map(|c| series.channel(c)[t].to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_simple_univariate() {
        let csv = "value\n1.5\n2.5\n3.5\n";
        let ts = read_univariate("u", csv, Frequency::Daily).unwrap();
        assert_eq!(ts.values(), &[1.5, 2.5, 3.5]);
        assert_eq!(ts.frequency(), Frequency::Daily);
    }

    #[test]
    fn skips_timestamp_column() {
        let csv = "date,value\n2024-01-01,10\n2024-01-02,20\n";
        let ts = read_univariate("u", csv, Frequency::Daily).unwrap();
        assert_eq!(ts.values(), &[10.0, 20.0]);
    }

    #[test]
    fn reads_multivariate_wide_layout() {
        let csv = "timestamp,load,temp\n1,100,20.5\n2,110,21.0\n3,105,19.5\n";
        let ms = read_multivariate("grid", csv, Frequency::Hourly).unwrap();
        assert_eq!(ms.num_channels(), 2);
        assert_eq!(ms.channel_names(), &["load".to_string(), "temp".to_string()]);
        assert_eq!(ms.channel(0), &[100.0, 110.0, 105.0]);
    }

    #[test]
    fn quoted_headers_are_supported() {
        let csv = "\"the, value\"\n1\n2\n";
        let ts = read_univariate("u", csv, Frequency::Unknown).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows_with_line_numbers() {
        let csv = "value\n1\n2,3\n";
        match read_univariate("u", csv, Frequency::Daily) {
            Err(DataError::Csv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected csv error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_numeric_fields() {
        let csv = "value\n1\nnope\n";
        match read_univariate("u", csv, Frequency::Daily) {
            Err(DataError::Csv { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("nope"));
            }
            other => panic!("expected csv error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_documents() {
        assert!(read_univariate("u", "", Frequency::Daily).is_err());
        assert!(read_univariate("u", "value\n", Frequency::Daily).is_err());
        assert!(read_univariate("u", "date\n", Frequency::Daily).is_err());
    }

    #[test]
    fn univariate_requires_single_column() {
        let csv = "a,b\n1,2\n";
        assert!(read_univariate("u", csv, Frequency::Daily).is_err());
    }

    #[test]
    fn write_read_round_trip_univariate() {
        let ts = TimeSeries::new("r", vec![1.25, -3.5, 0.0], Frequency::Weekly).unwrap();
        let csv = write_univariate(&ts);
        let back = read_univariate("r", &csv, Frequency::Weekly).unwrap();
        assert_eq!(back.values(), ts.values());
    }

    #[test]
    fn write_read_round_trip_multivariate() {
        let ms = MultiSeries::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            Frequency::Daily,
        )
        .unwrap();
        let csv = write_multivariate(&ms);
        let back = read_multivariate("m", &csv, Frequency::Daily).unwrap();
        assert_eq!(back.channel(0), ms.channel(0));
        assert_eq!(back.channel(1), ms.channel(1));
        assert_eq!(back.channel_names(), ms.channel_names());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let csv = "value\n1\n\n2\n\n";
        let ts = read_univariate("u", csv, Frequency::Daily).unwrap();
        assert_eq!(ts.values(), &[1.0, 2.0]);
    }
}
