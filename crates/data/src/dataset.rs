//! Dataset wrapper types and meta-information.
//!
//! A [`Dataset`] bundles series data with the meta-information TFB's
//! *benchmark knowledge* keeps about every dataset: domain, size, frequency,
//! and the six measured characteristics. These records are what the
//! knowledge database, the recommender's training corpus, and the Q&A module
//! all consume.

use crate::characteristics::{self, Characteristics};
use crate::series::{Frequency, MultiSeries, TimeSeries};

/// The ten application domains of the TFB corpus (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Road and network traffic volumes.
    Traffic,
    /// Electricity consumption.
    Electricity,
    /// Energy production (solar, wind).
    Energy,
    /// Environmental measurements (air quality, emissions).
    Environment,
    /// Natural phenomena (temperature, river flow).
    Nature,
    /// Macro-economic indicators.
    Economic,
    /// Stock-market prices.
    Stock,
    /// Banking activity.
    Banking,
    /// Health and epidemiological counts.
    Health,
    /// Web traffic and cloud metrics.
    Web,
}

impl Domain {
    /// All ten domains in canonical order.
    pub const ALL: [Domain; 10] = [
        Domain::Traffic,
        Domain::Electricity,
        Domain::Energy,
        Domain::Environment,
        Domain::Nature,
        Domain::Economic,
        Domain::Stock,
        Domain::Banking,
        Domain::Health,
        Domain::Web,
    ];

    /// Canonical lowercase name (used in the knowledge database).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Traffic => "traffic",
            Domain::Electricity => "electricity",
            Domain::Energy => "energy",
            Domain::Environment => "environment",
            Domain::Nature => "nature",
            Domain::Economic => "economic",
            Domain::Stock => "stock",
            Domain::Banking => "banking",
            Domain::Health => "health",
            Domain::Web => "web",
        }
    }

    /// Parses a domain from its canonical name.
    pub fn parse(s: &str) -> Option<Domain> {
        Domain::ALL.iter().copied().find(|d| d.name() == s.trim().to_ascii_lowercase())
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Meta-information stored for every dataset in the benchmark knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Unique dataset id, e.g. `"traffic_0007"`.
    pub id: String,
    /// Application domain.
    pub domain: Domain,
    /// Number of time steps.
    pub length: usize,
    /// Sampling frequency.
    pub frequency: Frequency,
    /// Number of channels (1 for univariate).
    pub channels: usize,
    /// Measured characteristics.
    pub characteristics: Characteristics,
}

impl DatasetMeta {
    /// True when the dataset has more than one channel.
    pub fn is_multivariate(&self) -> bool {
        self.channels > 1
    }
}

/// Series payload of a dataset.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum SeriesData {
    /// A single-channel series.
    Univariate(TimeSeries),
    /// An aligned multi-channel series.
    Multivariate(MultiSeries),
}

/// A benchmark dataset: series data plus meta-information.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Meta-information record.
    pub meta: DatasetMeta,
    /// The series payload.
    pub data: SeriesData,
}

impl Dataset {
    /// Borrow the payload as univariate, if it is one (test assertions).
    #[cfg(test)]
    pub(crate) fn as_univariate(&self) -> Option<&TimeSeries> {
        match &self.data {
            SeriesData::Univariate(ts) => Some(ts),
            SeriesData::Multivariate(_) => None,
        }
    }

    /// Wraps a univariate series, measuring its characteristics.
    pub fn from_univariate(id: impl Into<String>, domain: Domain, series: TimeSeries) -> Dataset {
        let ch = characteristics::extract(&series);
        let meta = DatasetMeta {
            id: id.into(),
            domain,
            length: series.len(),
            frequency: series.frequency(),
            channels: 1,
            characteristics: ch,
        };
        Dataset { meta, data: SeriesData::Univariate(series) }
    }

    /// Wraps a multivariate series, measuring its characteristics.
    pub fn from_multivariate(id: impl Into<String>, domain: Domain, series: MultiSeries) -> Dataset {
        let ch = characteristics::extract_multi(&series);
        let meta = DatasetMeta {
            id: id.into(),
            domain,
            length: series.len(),
            frequency: series.frequency(),
            channels: series.num_channels(),
            characteristics: ch,
        };
        Dataset { meta, data: SeriesData::Multivariate(series) }
    }

    /// Borrow the payload as multivariate, if it is one.
    pub fn as_multivariate(&self) -> Option<&MultiSeries> {
        match &self.data {
            SeriesData::Multivariate(ms) => Some(ms),
            SeriesData::Univariate(_) => None,
        }
    }

    /// Returns the primary univariate view: the series itself, or the first
    /// channel of a multivariate dataset.
    pub fn primary_series(&self) -> TimeSeries {
        match &self.data {
            SeriesData::Univariate(ts) => ts.clone(),
            SeriesData::Multivariate(ms) => {
                // lint: allow(panic) — MultiSeries construction rejects
                // zero-channel data, so channel 0 always exists.
                ms.to_univariate(0).expect("MultiSeries always has a channel 0")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn domain_names_round_trip() {
        for d in Domain::ALL {
            assert_eq!(Domain::parse(d.name()), Some(d));
        }
        assert_eq!(Domain::parse("Traffic "), Some(Domain::Traffic));
        assert_eq!(Domain::parse("space"), None);
        assert_eq!(Domain::Electricity.to_string(), "electricity");
    }

    #[test]
    fn univariate_dataset_measures_characteristics() {
        let xs: Vec<f64> =
            (0..120).map(|t| 3.0 * (2.0 * PI * t as f64 / 12.0).sin() + 10.0).collect();
        let ts = TimeSeries::new("s", xs, Frequency::Monthly).unwrap();
        let ds = Dataset::from_univariate("m_001", Domain::Economic, ts);
        assert_eq!(ds.meta.channels, 1);
        assert!(!ds.meta.is_multivariate());
        assert_eq!(ds.meta.length, 120);
        assert!(ds.meta.characteristics.seasonality > 0.8);
        assert!(ds.as_univariate().is_some());
        assert!(ds.as_multivariate().is_none());
        assert_eq!(ds.primary_series().len(), 120);
    }

    #[test]
    fn multivariate_dataset_measures_correlation() {
        let a: Vec<f64> = (0..100).map(|t| (t as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
        let ms = MultiSeries::new(
            "grid",
            vec!["x".into(), "y".into()],
            vec![a, b],
            Frequency::Hourly,
        )
        .unwrap();
        let ds = Dataset::from_multivariate("e_01", Domain::Electricity, ms);
        assert!(ds.meta.is_multivariate());
        assert_eq!(ds.meta.channels, 2);
        assert!(ds.meta.characteristics.correlation > 0.9);
        assert_eq!(ds.primary_series().name(), "grid/x");
    }
}
