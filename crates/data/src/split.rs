//! Train/validation/test splitting.
//!
//! TFB's pipeline (paper §II-A) standardizes "dataset processing and
//! splitting"; Challenge 1 explicitly calls out consistency of "the partition
//! in training/validation/testing data" and the "drop last" operation. This
//! module owns both: a [`SplitSpec`] produces chronologically ordered,
//! non-overlapping partitions, and [`SplitSpec::drop_last`] controls whether
//! a trailing window shorter than the forecast horizon is kept or dropped by
//! windowed evaluators.

use crate::error::DataError;
use crate::series::TimeSeries;

/// Declarative description of a chronological split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Fraction of points assigned to training, in `(0, 1)`.
    pub train_ratio: f64,
    /// Fraction assigned to validation (may be 0), with
    /// `train_ratio + val_ratio < 1`.
    pub val_ratio: f64,
    /// Whether windowed evaluation drops a trailing partial window
    /// (TFB's "drop last"). Stored here so every consumer of the split
    /// treats it identically.
    pub drop_last: bool,
}

impl Default for SplitSpec {
    /// TFB's conventional 7:1:2 split with `drop_last` disabled.
    fn default() -> Self {
        SplitSpec { train_ratio: 0.7, val_ratio: 0.1, drop_last: false }
    }
}

/// A materialized chronological split of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training prefix.
    pub train: TimeSeries,
    /// Validation segment (may be `None` when `val_ratio == 0`).
    pub val: Option<TimeSeries>,
    /// Test suffix.
    pub test: TimeSeries,
}

impl SplitSpec {
    /// Creates a spec after validating the ratios.
    pub fn new(train_ratio: f64, val_ratio: f64, drop_last: bool) -> Result<SplitSpec, DataError> {
        if !(0.0 < train_ratio && train_ratio < 1.0) {
            return Err(DataError::InvalidSplit {
                reason: format!("train_ratio {train_ratio} must be in (0, 1)"),
            });
        }
        if !(0.0..1.0).contains(&val_ratio) {
            return Err(DataError::InvalidSplit {
                reason: format!("val_ratio {val_ratio} must be in [0, 1)"),
            });
        }
        if train_ratio + val_ratio >= 1.0 {
            return Err(DataError::InvalidSplit {
                reason: format!(
                    "train_ratio + val_ratio = {} leaves no test data",
                    train_ratio + val_ratio
                ),
            });
        }
        Ok(SplitSpec { train_ratio, val_ratio, drop_last })
    }

    /// Splits a series chronologically. Every partition is guaranteed
    /// non-empty except `val`, which is `None` when it would be empty.
    pub fn split(&self, series: &TimeSeries) -> Result<Split, DataError> {
        let n = series.len();
        let train_end = ((n as f64) * self.train_ratio).floor() as usize;
        let val_end = ((n as f64) * (self.train_ratio + self.val_ratio)).floor() as usize;
        if train_end == 0 || val_end >= n {
            return Err(DataError::InvalidSplit {
                reason: format!("series of length {n} too short for ratios {self:?}"),
            });
        }
        let train = series.slice(0, train_end)?;
        let val = if val_end > train_end { Some(series.slice(train_end, val_end)?) } else { None };
        let test = series.slice(val_end, n)?;
        Ok(Split { train, val, test })
    }
}

/// Number of evaluation windows of `horizon` steps that fit into `test_len`,
/// honouring the `drop_last` convention: when `drop_last` is false a final
/// partial window is counted, when true it is discarded (test oracle).
#[cfg(test)]
pub(crate) fn window_count(test_len: usize, horizon: usize, drop_last: bool) -> usize {
    if horizon == 0 || test_len == 0 {
        return 0;
    }
    let full = test_len / horizon;
    let partial = test_len % horizon;
    if partial > 0 && !drop_last {
        full + 1
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Frequency;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::new("s", (0..n).map(|i| i as f64).collect(), Frequency::Daily).unwrap()
    }

    #[test]
    fn default_split_is_7_1_2() {
        let s = series(100);
        let split = SplitSpec::default().split(&s).unwrap();
        assert_eq!(split.train.len(), 70);
        assert_eq!(split.val.as_ref().unwrap().len(), 10);
        assert_eq!(split.test.len(), 20);
        // Chronological and contiguous.
        assert_eq!(split.train.values()[69], 69.0);
        assert_eq!(split.val.unwrap().values()[0], 70.0);
        assert_eq!(split.test.values()[0], 80.0);
    }

    #[test]
    fn zero_val_ratio_gives_no_validation() {
        let spec = SplitSpec::new(0.8, 0.0, false).unwrap();
        let split = spec.split(&series(50)).unwrap();
        assert!(split.val.is_none());
        assert_eq!(split.train.len(), 40);
        assert_eq!(split.test.len(), 10);
    }

    #[test]
    fn invalid_ratios_are_rejected() {
        assert!(SplitSpec::new(0.0, 0.1, false).is_err());
        assert!(SplitSpec::new(1.0, 0.0, false).is_err());
        assert!(SplitSpec::new(0.9, 0.1, false).is_err());
        assert!(SplitSpec::new(0.5, -0.1, false).is_err());
        assert!(SplitSpec::new(0.5, 0.5, false).is_err());
    }

    #[test]
    fn too_short_series_is_rejected() {
        let s = series(2);
        let spec = SplitSpec::new(0.1, 0.0, false).unwrap();
        assert!(spec.split(&s).is_err());
    }

    #[test]
    fn partitions_cover_series_exactly() {
        for n in [20usize, 33, 97, 128] {
            let s = series(n);
            let split = SplitSpec::default().split(&s).unwrap();
            let total =
                split.train.len() + split.val.as_ref().map_or(0, TimeSeries::len) + split.test.len();
            assert_eq!(total, n, "partitions must cover length {n}");
        }
    }

    #[test]
    fn window_count_honours_drop_last() {
        assert_eq!(window_count(20, 5, false), 4);
        assert_eq!(window_count(20, 5, true), 4);
        assert_eq!(window_count(22, 5, false), 5);
        assert_eq!(window_count(22, 5, true), 4);
        assert_eq!(window_count(3, 5, false), 1);
        assert_eq!(window_count(3, 5, true), 0);
        assert_eq!(window_count(0, 5, false), 0);
        assert_eq!(window_count(10, 0, false), 0);
    }
}
