//! Property-based tests for the data layer.

use easytime_data::scaler::{Scaler, ScalerKind};
use easytime_data::synthetic::{domain_spec, generate, LevelShift, NoiseSpec, SyntheticSpec};
use easytime_data::{characteristics, csv, Domain, Frequency, SplitSpec, TimeSeries};
use proptest::prelude::*;

fn any_domain() -> impl Strategy<Value = Domain> {
    prop::sample::select(Domain::ALL.to_vec())
}

fn any_scaler() -> impl Strategy<Value = ScalerKind> {
    prop::sample::select(vec![
        ScalerKind::None,
        ScalerKind::ZScore,
        ScalerKind::MinMax,
        ScalerKind::Robust,
    ])
}

proptest! {
    #[test]
    fn generation_is_deterministic_per_seed(
        domain in any_domain(),
        variant in 0usize..8,
        length in 32usize..200,
        seed in any::<u64>(),
    ) {
        let spec = domain_spec(domain, variant, length);
        let a = generate("a", &spec, seed).unwrap();
        let b = generate("b", &spec, seed).unwrap();
        prop_assert_eq!(a.values(), b.values());
        prop_assert_eq!(a.len(), length);
        prop_assert!(a.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn characteristics_are_always_in_unit_range(
        domain in any_domain(),
        variant in 0usize..4,
        seed in any::<u64>(),
    ) {
        let spec = domain_spec(domain, variant, 160);
        let ts = generate("c", &spec, seed).unwrap();
        let ch = characteristics::extract(&ts);
        for v in ch.to_vec() {
            prop_assert!((0.0..=1.0).contains(&v), "characteristic {v} out of range");
        }
    }

    #[test]
    fn scaler_round_trips_any_values(
        kind in any_scaler(),
        train in prop::collection::vec(-1e4..1e4f64, 4..128),
        probe in prop::collection::vec(-1e5..1e5f64, 1..32),
    ) {
        let mut scaler = Scaler::new(kind);
        scaler.fit(&train).unwrap();
        let restored = scaler.inverse(&scaler.transform(&probe).unwrap()).unwrap();
        for (a, b) in probe.iter().zip(&restored) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn split_partitions_exactly(
        n in 16usize..512,
        train in 0.3..0.8f64,
        val in 0.0..0.15f64,
    ) {
        let ts = TimeSeries::new(
            "s",
            (0..n).map(|t| t as f64).collect(),
            Frequency::Daily,
        )
        .unwrap();
        let spec = SplitSpec::new(train, val, false).unwrap();
        if let Ok(split) = spec.split(&ts) {
            let total = split.train.len()
                + split.val.as_ref().map_or(0, TimeSeries::len)
                + split.test.len();
            prop_assert_eq!(total, n);
            // Chronological: the first test value continues from train+val.
            let boundary = split.train.len() + split.val.as_ref().map_or(0, TimeSeries::len);
            prop_assert_eq!(split.test.values()[0], boundary as f64);
        }
    }

    #[test]
    fn csv_round_trips_any_series(values in prop::collection::vec(-1e9..1e9f64, 1..64)) {
        let ts = TimeSeries::new("r", values, Frequency::Weekly).unwrap();
        let text = csv::write_univariate(&ts);
        let back = csv::read_univariate("r", &text, Frequency::Weekly).unwrap();
        prop_assert_eq!(back.values(), ts.values());
    }

    #[test]
    fn level_shifted_series_scores_more_shifting(
        magnitude in 5.0..50.0f64,
        seed in any::<u64>(),
    ) {
        let base = SyntheticSpec {
            noise: NoiseSpec::Gaussian { sigma: 1.0 },
            ..SyntheticSpec::baseline(200, Frequency::Daily)
        };
        let mut shifted = base.clone();
        shifted.shifts.push(LevelShift { at: 0.5, magnitude });
        let plain = generate("p", &base, seed).unwrap();
        let with_shift = generate("s", &shifted, seed).unwrap();
        let c_plain = characteristics::extract(&plain);
        let c_shift = characteristics::extract(&with_shift);
        prop_assert!(
            c_shift.shifting >= c_plain.shifting,
            "shifting {} should not be below baseline {}",
            c_shift.shifting,
            c_plain.shifting
        );
    }
}
