//! Property-style tests for the data layer, driven by the workspace's own
//! deterministic RNG (randomized cases with seeds derived from a fixed
//! master seed — reproducible and hermetic).

use easytime_data::scaler::{Scaler, ScalerKind};
use easytime_data::synthetic::{domain_spec, generate, LevelShift, NoiseSpec, SyntheticSpec};
use easytime_data::{characteristics, csv, Domain, Frequency, SplitSpec, TimeSeries};
use easytime_rng::StdRng;

const CASES: u64 = 32;
const MASTER_SEED: u64 = 0xDA7A_11E0;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

fn any_domain(rng: &mut StdRng) -> Domain {
    Domain::ALL[rng.gen_range(0..Domain::ALL.len())]
}

fn any_scaler(rng: &mut StdRng) -> ScalerKind {
    [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust]
        [rng.gen_range(0..4)]
}

#[test]
fn generation_is_deterministic_per_seed() {
    for mut rng in cases() {
        let domain = any_domain(&mut rng);
        let variant = rng.gen_range(0..8);
        let length = rng.gen_range(32..200);
        let seed = rng.next_u64();
        let spec = domain_spec(domain, variant, length);
        let a = generate("a", &spec, seed).unwrap();
        let b = generate("b", &spec, seed).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.len(), length);
        assert!(a.values().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn characteristics_are_always_in_unit_range() {
    for mut rng in cases() {
        let domain = any_domain(&mut rng);
        let variant = rng.gen_range(0..4);
        let seed = rng.next_u64();
        let spec = domain_spec(domain, variant, 160);
        let ts = generate("c", &spec, seed).unwrap();
        let ch = characteristics::extract(&ts);
        for v in ch.to_vec() {
            assert!((0.0..=1.0).contains(&v), "characteristic {v} out of range");
        }
    }
}

#[test]
fn scaler_round_trips_any_values() {
    for mut rng in cases() {
        let kind = any_scaler(&mut rng);
        let train: Vec<f64> = (0..rng.gen_range(4..128))
            .map(|_| rng.gen_range_f64(-1e4, 1e4))
            .collect();
        let probe: Vec<f64> = (0..rng.gen_range(1..32))
            .map(|_| rng.gen_range_f64(-1e5, 1e5))
            .collect();
        let mut scaler = Scaler::new(kind);
        scaler.fit(&train).unwrap();
        let restored = scaler.inverse(&scaler.transform(&probe).unwrap()).unwrap();
        for (a, b) in probe.iter().zip(&restored) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }
}

#[test]
fn split_partitions_exactly() {
    for mut rng in cases() {
        let n = rng.gen_range(16..512);
        let train = rng.gen_range_f64(0.3, 0.8);
        let val = rng.gen_range_f64(0.0, 0.15);
        let ts = TimeSeries::new("s", (0..n).map(|t| t as f64).collect(), Frequency::Daily)
            .unwrap();
        let spec = SplitSpec::new(train, val, false).unwrap();
        if let Ok(split) = spec.split(&ts) {
            let total = split.train.len()
                + split.val.as_ref().map_or(0, TimeSeries::len)
                + split.test.len();
            assert_eq!(total, n);
            // Chronological: the first test value continues from train+val.
            let boundary = split.train.len() + split.val.as_ref().map_or(0, TimeSeries::len);
            assert_eq!(split.test.values()[0], boundary as f64);
        }
    }
}

#[test]
fn csv_round_trips_any_series() {
    for mut rng in cases() {
        let values: Vec<f64> = (0..rng.gen_range(1..64))
            .map(|_| rng.gen_range_f64(-1e9, 1e9))
            .collect();
        let ts = TimeSeries::new("r", values, Frequency::Weekly).unwrap();
        let text = csv::write_univariate(&ts);
        let back = csv::read_univariate("r", &text, Frequency::Weekly).unwrap();
        assert_eq!(back.values(), ts.values());
    }
}

#[test]
fn level_shifted_series_scores_more_shifting() {
    for mut rng in cases() {
        let magnitude = rng.gen_range_f64(5.0, 50.0);
        let seed = rng.next_u64();
        let base = SyntheticSpec {
            noise: NoiseSpec::Gaussian { sigma: 1.0 },
            ..SyntheticSpec::baseline(200, Frequency::Daily)
        };
        let mut shifted = base.clone();
        shifted.shifts.push(LevelShift { at: 0.5, magnitude });
        let plain = generate("p", &base, seed).unwrap();
        let with_shift = generate("s", &shifted, seed).unwrap();
        let c_plain = characteristics::extract(&plain);
        let c_shift = characteristics::extract(&with_shift);
        assert!(
            c_shift.shifting >= c_plain.shifting,
            "shifting {} should not be below baseline {}",
            c_shift.shifting,
            c_plain.shifting
        );
    }
}
