//! Seeded property test: streaming scaler statistics must agree with a
//! full refit.
//!
//! For random series, random chunkings, and every streamable kind, folding
//! the chunks through [`Scaler::extend`] must produce fitted parameters —
//! and therefore transforms — within 1e-9 of fitting once on the whole
//! prefix. This is the contract the incremental rolling-evaluation engine
//! relies on when it reuses window N's fit for window N+1.

use easytime_data::scaler::{Scaler, ScalerKind};
use easytime_rng::Xoshiro256pp;

/// Draws a series with a level, trend, seasonality, and noise, so the
/// streamed statistics face realistic (non-stationary) prefixes.
fn random_series(rng: &mut Xoshiro256pp, n: usize) -> Vec<f64> {
    let level = rng.gen_range_f64(-50.0, 50.0);
    let trend = rng.gen_range_f64(-0.5, 0.5);
    let amp = rng.gen_range_f64(0.1, 20.0);
    let noise = rng.gen_range_f64(0.01, 5.0);
    (0..n)
        .map(|t| {
            level
                + trend * t as f64
                + amp * (t as f64 * 0.37).sin()
                + noise * rng.normal()
        })
        .collect()
}

#[test]
fn extend_is_equivalent_to_refit_for_random_chunkings() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xEA57_71AE);
    for case in 0..200u64 {
        let n = rng.gen_range(8..400);
        let values = random_series(&mut rng, n);
        for kind in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax] {
            // Stream the series in random chunks (including size-1 steps,
            // the rolling stride=1 worst case).
            let mut streamed = Scaler::new(kind);
            let mut consumed = 0usize;
            while consumed < n {
                let step = rng.gen_range(1..(n - consumed + 1).min(32));
                assert!(
                    streamed.extend(&values[consumed..consumed + step]).unwrap(),
                    "{kind:?} must stream"
                );
                consumed += step;

                // Every intermediate prefix must match a refit, not just
                // the final state: rolling evaluation consumes the
                // statistics after every extension.
                let mut refit = Scaler::new(kind);
                refit.fit(&values[..consumed]).unwrap();
                let (s1, c1) = streamed.fitted_params().unwrap();
                let (s2, c2) = refit.fitted_params().unwrap();
                let scale_tol = 1e-9 * c2.abs().max(1.0);
                let shift_tol = 1e-9 * s2.abs().max(1.0);
                assert!(
                    (s1 - s2).abs() <= shift_tol,
                    "case {case} {kind:?} prefix {consumed}: shift {s1} vs {s2}"
                );
                assert!(
                    (c1 - c2).abs() <= scale_tol,
                    "case {case} {kind:?} prefix {consumed}: scale {c1} vs {c2}"
                );
            }

            // The transforms agree pointwise as well.
            let mut refit = Scaler::new(kind);
            refit.fit(&values).unwrap();
            let a = streamed.transform(&values).unwrap();
            let b = refit.transform(&values).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 1e-9, "case {case} {kind:?}: {x} vs {y}");
            }
        }
    }
}
