//! Shared helpers for the experiment harness binaries (`exp_*`) and the
//! micro-benchmarks under `benches/` (driven by the std-only [`harness`]
//! module). Each binary regenerates one table/figure of EXPERIMENTS.md;
//! see DESIGN.md §4 for the experiment index.

pub mod harness;

use easytime::{CorpusConfig, Dataset, ModelSpec};
use easytime_automl::PerfMatrix;
use easytime_data::synthetic::build_corpus;

/// Reads `--name value` from the command line.
pub fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Reads `--name value` parsed as `usize` with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The standard experiment corpus: all ten domains, `per_domain` series
/// each, plus one multivariate dataset per domain.
pub fn experiment_corpus(per_domain: usize, length: usize, seed: u64) -> Vec<Dataset> {
    build_corpus(&CorpusConfig {
        per_domain,
        length,
        multivariate_per_domain: 1,
        channels: 3,
        seed,
        ..CorpusConfig::default()
    })
    // lint: allow(panic) — the corpus configuration above is static and
    // valid by construction; experiment binaries want a loud failure.
    .expect("experiment corpus config is valid")
}

/// The fast sub-zoo used where full-zoo runtime would obscure the result
/// shape (the full roster stays the default for the leaderboard run).
pub fn fast_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Naive,
        ModelSpec::SeasonalNaive(None),
        ModelSpec::SeasonalAverage { period: None, cycles: 4 },
        ModelSpec::Drift,
        ModelSpec::LinearTrend,
        ModelSpec::Mean,
        ModelSpec::WindowAverage(8),
        ModelSpec::Ses(None),
        ModelSpec::Theta(None),
        ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 },
        ModelSpec::NLinear { lookback: 32 },
        ModelSpec::GradientBoost { lookback: 12, rounds: 40 },
    ]
}

/// Normalized discounted cumulative gain of a predicted ranking against
/// ground-truth scores (lower score = more relevant).
pub fn ndcg_at_k(predicted_order: &[usize], true_scores: &[f64], k: usize) -> f64 {
    let k = k.min(predicted_order.len());
    if k == 0 {
        return 0.0;
    }
    // Relevance: reverse rank of the true score (best method gets highest).
    let mut idx: Vec<usize> = (0..true_scores.len()).collect();
    idx.sort_by(|&a, &b| {
        true_scores[a].total_cmp(&true_scores[b])
    });
    let mut relevance = vec![0.0; true_scores.len()];
    for (rank, &m) in idx.iter().enumerate() {
        if true_scores[m].is_finite() {
            relevance[m] = (true_scores.len() - rank) as f64;
        }
    }
    let dcg: f64 = predicted_order
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &m)| relevance[m] / ((i + 2) as f64).log2())
        .sum();
    let mut ideal = relevance;
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, r)| r / ((i + 2) as f64).log2())
        .sum();
    if idcg > 0.0 {
        dcg / idcg
    } else {
        0.0
    }
}

/// Mean of the finite entries of a slice (NaN when none).
pub fn finite_mean(xs: &[f64]) -> f64 {
    let vals: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Index of the method with the best (lowest) mean score across the
/// offline portion of a performance matrix — the "globally best single
/// method" baseline.
pub fn global_best_method(matrix: &PerfMatrix) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for m in 0..matrix.methods.len() {
        let col: Vec<f64> = matrix.scores.iter().map(|row| row[m]).collect();
        let mean = finite_mean(&col);
        if mean.is_finite() && mean < best.1 {
            best = (m, mean);
        }
    }
    best.0
}

/// Renders a simple fixed-width table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("| {c:<w$} "));
        }
        s.push('|');
        // lint: allow(print) — table rendering for experiment binaries
        println!("{s}");
    };
    line(header.iter().map(|h| h.to_string()).collect());
    // lint: allow(print) — table rendering for experiment binaries
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        let perfect = [0usize, 1, 2, 3];
        assert!((ndcg_at_k(&perfect, &scores, 4) - 1.0).abs() < 1e-12);
        let reversed = [3usize, 2, 1, 0];
        assert!(ndcg_at_k(&reversed, &scores, 4) < 1.0);
        assert!(ndcg_at_k(&perfect, &scores, 0) == 0.0);
    }

    #[test]
    fn ndcg_prefers_better_rankings() {
        let scores = [1.0, 5.0, 2.0, 4.0];
        let good = [0usize, 2, 3, 1];
        let bad = [1usize, 3, 2, 0];
        assert!(ndcg_at_k(&good, &scores, 4) > ndcg_at_k(&bad, &scores, 4));
    }

    #[test]
    fn global_best_picks_lowest_mean_column() {
        let matrix = PerfMatrix {
            dataset_ids: vec!["a".into(), "b".into()],
            methods: vec!["m0".into(), "m1".into()],
            scores: vec![vec![2.0, 1.0], vec![2.0, f64::NAN]],
        };
        // m1's finite mean (1.0) beats m0's (2.0).
        assert_eq!(global_best_method(&matrix), 1);
    }

    #[test]
    fn finite_mean_ignores_nan() {
        assert_eq!(finite_mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(finite_mean(&[f64::NAN]).is_nan());
    }
}
