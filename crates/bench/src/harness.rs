//! Minimal std-only micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency so the workspace builds
//! hermetically. The API intentionally mirrors the subset of criterion the
//! bench files use (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, `black_box`), so benches read the same way.
//!
//! Methodology: each routine is warmed up, then the iteration count is
//! calibrated so one sample takes a few milliseconds, and the median and
//! minimum per-iteration time over a fixed number of samples are reported.
//! Set `EASYTIME_BENCH_FAST=1` to shrink the budget for smoke runs.

pub use std::hint::black_box;

use easytime_clock::Stopwatch;
use std::time::Duration;

/// Mirrors criterion's `BatchSize`; the harness treats all variants the
/// same (one routine invocation per timed sample).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-sample setup cost.
    SmallInput,
    /// Large per-sample setup cost.
    LargeInput,
}

#[derive(Debug, Clone)]
struct Measurement {
    name: String,
    median_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Collects and reports measurements; analogous to criterion's `Criterion`.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<Measurement>,
}

fn budget() -> (Duration, Duration, usize) {
    // (warmup, per-sample target, sample count)
    if std::env::var_os("EASYTIME_BENCH_FAST").is_some() {
        (Duration::from_millis(5), Duration::from_millis(1), 5)
    } else {
        (Duration::from_millis(50), Duration::from_millis(5), 11)
    }
}

impl Harness {
    /// Creates an empty harness.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Benchmarks one routine under `name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher { measured: None };
        f(&mut bencher);
        if let Some((samples, iters)) = bencher.measured {
            let mut per_iter: Vec<f64> =
                samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
            per_iter.sort_by(f64::total_cmp);
            let median = per_iter[per_iter.len() / 2];
            let min = per_iter.first().copied().unwrap_or(f64::NAN);
            self.results.push(Measurement {
                name: name.to_string(),
                median_ns: median,
                min_ns: min,
                iters,
            });
            // Mirror every measurement into the shared metrics schema so a
            // traced run lands bench numbers in `results/metrics.json`
            // alongside pipeline timings (one source of truth).
            if easytime_obs::enabled() {
                easytime_obs::gauge(&format!("bench.{name}.median_ns"), median);
                easytime_obs::gauge(&format!("bench.{name}.min_ns"), min);
                easytime_obs::add_labeled("bench.measured", name, 1);
            }
            // lint: allow(print) — the harness is a console reporter by design
            println!(
                "{name:<40} median {:>12}  min {:>12}  ({iters} iters/sample)",
                format_ns(median),
                format_ns(min),
            );
        }
        self
    }

    /// Opens a named group; member benchmarks are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, prefix: name.to_string() }
    }

    /// Prints a summary table of everything measured and, when tracing is
    /// enabled, flushes the shared metrics schema to `results/`.
    pub fn finish(self) {
        if self.results.is_empty() {
            return;
        }
        // lint: allow(print) — the harness is a console reporter by design
        println!(
            "\n{:<40} {:>14} {:>14} {:>12}",
            "benchmark", "median", "min", "iters/sample"
        );
        // lint: allow(print) — the harness is a console reporter by design
        println!("{}", "-".repeat(84));
        for m in &self.results {
            // lint: allow(print) — the harness is a console reporter by design
            println!(
                "{:<40} {:>14} {:>14} {:>12}",
                m.name,
                format_ns(m.median_ns),
                format_ns(m.min_ns),
                m.iters
            );
        }
        // lint: allow(swallowed-result) — best-effort telemetry flush: a failed write must not fail the benchmark run
        let _ = easytime_obs::flush_if_enabled(std::path::Path::new("results"));
    }
}

/// A benchmark group; analogous to criterion's `BenchmarkGroup`.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Benchmarks one routine under `prefix/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        self.harness.bench_function(&full, f);
        self
    }

    /// Ends the group (measurements are already recorded).
    pub fn finish(self) {}
}

/// Passed to bench closures; analogous to criterion's `Bencher`.
#[derive(Debug)]
pub struct Bencher {
    measured: Option<(Vec<Duration>, u64)>,
}

impl Bencher {
    /// Times `routine`, calibrating the iteration count so each sample
    /// takes a few milliseconds.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let (warmup, target, samples) = budget();
        // Warmup while estimating per-call cost.
        let start = Stopwatch::start();
        let mut calls: u64 = 0;
        while start.elapsed() < warmup || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = start.elapsed().as_nanos().max(1) / u128::from(calls);
        let iters = (target.as_nanos() / per_call.max(1)).clamp(1, 1_000_000) as u64;
        let mut durations = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Stopwatch::start();
            for _ in 0..iters {
                black_box(routine());
            }
            durations.push(t.elapsed());
        }
        self.measured = Some((durations, iters));
    }

    /// Times `routine` on fresh inputs from `setup`; the setup cost is not
    /// measured. One routine invocation per sample.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let (_, _, samples) = budget();
        // One untimed warmup pass.
        black_box(routine(setup()));
        let mut durations = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let t = Stopwatch::start();
            black_box(routine(input));
            durations.push(t.elapsed());
        }
        self.measured = Some((durations, 1));
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        std::env::set_var("EASYTIME_BENCH_FAST", "1");
        let mut h = Harness::new();
        h.bench_function("spin", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns > 0.0);
        h.finish();
    }

    #[test]
    fn iter_batched_measures_single_invocations() {
        std::env::set_var("EASYTIME_BENCH_FAST", "1");
        let mut h = Harness::new();
        h.benchmark_group("g").bench_function("vec", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        assert_eq!(h.results[0].name, "g/vec");
        assert_eq!(h.results[0].iters, 1);
    }

    #[test]
    fn ns_formatting_scales_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.00 s");
    }
}
