//! Experiment E1 — the one-click leaderboard (paper Fig. 1, §II-A/B, S1).
//!
//! Evaluates the full method zoo on the full ten-domain corpus under both
//! evaluation strategies and several horizons, then prints:
//!
//! 1. a TFB-style leaderboard per (strategy, horizon) setting, and
//! 2. the per-domain winner matrix demonstrating the Challenge-2 premise
//!    that *no single method wins everywhere*.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_leaderboard \
//!   [--per-domain 4] [--length 300] [--full-zoo 1]
//! ```

use easytime::{Domain, EasyTime, EvalConfig, EvalRecord, Leaderboard, Strategy};
use easytime_bench::{arg_usize, experiment_corpus, fast_zoo, print_table};
use easytime_models::zoo::standard_zoo;
use std::collections::BTreeMap;

fn main() {
    let per_domain = arg_usize("per-domain", 4);
    let length = arg_usize("length", 300);
    let full_zoo = arg_usize("full-zoo", 1) == 1;

    let corpus = experiment_corpus(per_domain, length, 42);
    let platform = EasyTime::new();
    let domains: Vec<(String, Domain)> =
        corpus.iter().map(|d| (d.meta.id.clone(), d.meta.domain)).collect();
    for d in corpus {
        platform.add_dataset(d).expect("corpus datasets are valid");
    }

    let methods = if full_zoo {
        standard_zoo().into_iter().map(|e| e.spec).collect()
    } else {
        fast_zoo()
    };
    println!(
        "E1 leaderboard: {} datasets × {} methods\n",
        platform.registry().len(),
        methods.len()
    );

    let settings: Vec<(&str, Strategy)> = vec![
        ("fixed/h=12", Strategy::Fixed { horizon: 12 }),
        ("fixed/h=24", Strategy::Fixed { horizon: 24 }),
        ("fixed/h=48", Strategy::Fixed { horizon: 48 }),
        (
            "rolling/h=24",
            Strategy::Rolling { horizon: 24, stride: 24, max_windows: Some(3) },
        ),
    ];

    let mut all_records: Vec<EvalRecord> = Vec::new();
    for (label, strategy) in &settings {
        let config = EvalConfig {
            methods: methods.clone(),
            strategy: *strategy,
            metrics: vec!["mae".into(), "smape".into(), "mase".into()],
            ..EvalConfig::default()
        };
        let records = platform
            .one_click(&easytime::FileConfig { eval: config, datasets: Default::default() })
            .expect("one-click evaluation succeeds");
        let failures = records.iter().filter(|r| !r.is_ok()).count();
        let board = Leaderboard::from_records(&records, "smape", true);
        println!("── {label}: {} records, {failures} failures — leaderboard (by sMAPE):", records.len());
        println!("{}", board.render());
        all_records.extend(records);
    }

    // Per-domain winner matrix: which method wins (lowest mean sMAPE per
    // dataset, majority across a domain's datasets)?
    let id_to_domain: BTreeMap<&str, Domain> =
        domains.iter().map(|(id, d)| (id.as_str(), *d)).collect();
    let mut best_per_dataset: BTreeMap<&str, (&str, f64)> = BTreeMap::new();
    for r in &all_records {
        if !r.is_ok() {
            continue;
        }
        let v = r.score("smape");
        if !v.is_finite() {
            continue;
        }
        let entry = best_per_dataset.entry(&r.dataset_id).or_insert((&r.method, v));
        if v < entry.1 {
            *entry = (&r.method, v);
        }
    }
    let mut domain_winner_counts: BTreeMap<Domain, BTreeMap<&str, usize>> = BTreeMap::new();
    for (dataset, (method, _)) in &best_per_dataset {
        if let Some(domain) = id_to_domain.get(dataset) {
            *domain_winner_counts.entry(*domain).or_default().entry(method).or_insert(0) += 1;
        }
    }
    println!("── Per-domain winners (method with the most per-dataset wins):");
    let rows: Vec<Vec<String>> = Domain::ALL
        .iter()
        .filter_map(|d| {
            let counts = domain_winner_counts.get(d)?;
            let (winner, wins) = counts.iter().max_by_key(|(_, &c)| c)?;
            Some(vec![d.name().to_string(), winner.to_string(), wins.to_string()])
        })
        .collect();
    print_table(&["domain", "winning method", "datasets won"], &rows);

    let distinct_winners: std::collections::BTreeSet<&str> = domain_winner_counts
        .values()
        .flat_map(|c| c.iter().max_by_key(|(_, &v)| v).map(|(m, _)| *m))
        .collect();
    println!(
        "\n{} distinct winners across {} domains → no single best method (Challenge 2 premise).",
        distinct_winners.len(),
        domain_winner_counts.len()
    );
}
