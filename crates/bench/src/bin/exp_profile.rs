//! Experiment E9 — self-time flame profile of a traced corpus sweep.
//!
//! Runs a warm-start rolling evaluation over the standard experiment
//! corpus with tracing forced on, then drains the recorder and writes the
//! perf-attribution artifacts: `PROFILE.json` (per-stage self/total time,
//! duration quantiles, allocation deltas) and `profile.txt` (collapsed
//! flame stacks). `scripts/ci.sh` runs this twice under `--deterministic`
//! and byte-compares the outputs, then once on the real clock to feed
//! `perf_report`.
//!
//! Flags:
//! - `--deterministic` installs a never-advancing manual clock so every
//!   duration is exactly zero and the rendered profile is a pure function
//!   of the span tree (byte-identical across runs and thread counts).
//! - `--threads N` sets the corpus sweep's worker count (default 1).
//! - `--out-dir DIR` redirects the artifact directory (default `results`).
//!
//! Allocation attribution is on by default (the binary installs a counting
//! global allocator feeding [`easytime_obs::count_alloc`]); set
//! `EASYTIME_PROF_ALLOC=0` to disable it, e.g. for the thread-count
//! invariance comparison where per-thread warmup allocations would
//! otherwise differ. `EASYTIME_BENCH_FAST=1` shrinks the sweep for CI.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_profile -- --deterministic
//! ```
//!
//! The workspace denies `unsafe_code`, but a `GlobalAlloc` impl cannot be
//! written without it; this binary opts back in locally.
#![allow(unsafe_code)]

use easytime::{EvalConfig, MetricRegistry, Strategy};
use easytime_bench::{arg, arg_usize, print_table};
use easytime_bench::{experiment_corpus, fast_zoo};
use easytime_clock::ManualClock;
use easytime_eval::{evaluate_corpus, RefitPolicy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::process::ExitCode;

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        easytime_obs::count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        easytime_obs::count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        easytime_obs::count_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fail(msg: &str) -> ExitCode {
    // lint: allow(print) — CI diagnostic output from a binary
    eprintln!("exp_profile: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let deterministic = std::env::args().any(|a| a == "--deterministic");
    let threads = arg_usize("threads", 1);
    let out_dir = arg("out-dir").unwrap_or_else(|| "results".to_string());
    let fast = std::env::var_os("EASYTIME_BENCH_FAST").is_some_and(|v| v != "0");
    let alloc_on = std::env::var_os("EASYTIME_PROF_ALLOC").map_or(true, |v| v != "0");

    easytime_obs::set_enabled(true);
    easytime_obs::reset();
    easytime_obs::set_prof_alloc(alloc_on);
    if deterministic {
        // Never advanced: every span duration collapses to zero, so the
        // profile depends only on the span tree and allocation tallies.
        let manual = ManualClock::new();
        easytime_obs::install_clock(manual.clock());
    }

    let (per_domain, length, max_windows) = if fast { (1, 160, 8) } else { (2, 320, 24) };
    {
        let mut root = easytime_obs::span("profile.run");
        root.attr("purpose", "perf attribution sweep");
        let corpus = {
            let _sp = easytime_obs::span("profile.build_corpus");
            experiment_corpus(per_domain, length, 7)
        };
        let config = EvalConfig {
            methods: fast_zoo(),
            strategy: Strategy::Rolling { horizon: 8, stride: 8, max_windows: Some(max_windows) },
            refit: RefitPolicy::WarmStart,
            threads,
            ..EvalConfig::default()
        };
        let registry = MetricRegistry::standard();
        let config = match config.into_validated(&registry) {
            Ok(c) => c,
            Err(e) => return fail(&format!("config validation failed: {e}")),
        };
        easytime_obs::manifest_set("run", "exp_profile");
        easytime_obs::manifest_set("seed", 7_u64);
        match evaluate_corpus(&corpus, &config, &registry) {
            Ok(records) => {
                let failures = records.iter().filter(|r| !r.is_ok()).count();
                if failures > 0 {
                    return fail(&format!("{failures} evaluation jobs failed"));
                }
            }
            Err(e) => return fail(&format!("evaluate_corpus failed: {e}")),
        }
    }
    easytime_obs::set_prof_alloc(false);

    let data = easytime_obs::drain();
    let profile = easytime_obs::Profile::from_trace(&data);
    if profile.stages.is_empty() {
        return fail("profile recorded no stages");
    }

    let paths = match easytime_obs::write_files(Path::new(&out_dir), &data) {
        Ok(p) => p,
        Err(e) => return fail(&format!("writing artifacts failed: {e}")),
    };

    // Top self-time stages, heaviest first (ties broken by name so the
    // table itself is deterministic under the manual clock).
    let mut stages: Vec<(&String, &easytime_obs::StageProfile)> = profile.stages.iter().collect();
    stages.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
    let rows: Vec<Vec<String>> = stages
        .iter()
        .take(10)
        .map(|(name, s)| {
            vec![
                (*name).clone(),
                s.count.to_string(),
                s.self_ns.to_string(),
                s.total_ns.to_string(),
                s.allocs.to_string(),
            ]
        })
        .collect();
    print_table(&["stage", "count", "self_ns", "total_ns", "allocs"], &rows);

    // lint: allow(print) — CI status output from a binary
    println!(
        "exp_profile: OK ({} stages, {} flame stacks, {} spans{}{}) -> {}",
        profile.stages.len(),
        profile.flame.len(),
        data.spans.len(),
        if deterministic { ", deterministic clock" } else { "" },
        if alloc_on { ", alloc counting on" } else { "" },
        paths.profile.display()
    );
    ExitCode::SUCCESS
}
