//! Experiment E2 — the automated ensemble (paper Fig. 2, S2).
//!
//! Offline: pretrain the recommender on a corpus. Online: for every
//! held-out series, fit the AutoEnsemble (top-k + validation-learned
//! weights) and compare its held-out sMAPE against:
//!
//! * `random-k`   — an ensemble of k randomly selected methods,
//! * `global-best`— the single method with the best offline mean,
//! * `full-avg`   — the uniform average of the whole candidate zoo,
//! * `oracle`     — the per-series best single method (hindsight bound).
//!
//! The paper's claim to reproduce: the automated ensemble "yields superior
//! forecasting accuracy compared to individual methods".
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_ensemble \
//!   [--per-domain 6] [--length 280] [--k 3] [--horizon 24]
//! ```

use easytime::{ModelSpec, RecommenderConfig, Strategy, TimeSeries, WeightMode};
use easytime_automl::{AutoEnsemble, Recommender};
use easytime_bench::{arg_usize, experiment_corpus, fast_zoo, finite_mean, global_best_method, print_table};
use easytime_rng::StdRng;

fn smape(pred: &[f64], actual: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (p, a) in pred.iter().zip(actual) {
        sum += 2.0 * (a - p).abs() / (a.abs() + p.abs()).max(1e-12);
    }
    100.0 * sum / actual.len() as f64
}

fn single_method_smape(name: &str, history: &TimeSeries, future: &[f64]) -> f64 {
    let run = || -> Result<f64, Box<dyn std::error::Error>> {
        let spec = ModelSpec::parse(name)?;
        let mut model = spec.build()?;
        model.fit(history)?;
        Ok(smape(&model.forecast(future.len())?, future))
    };
    run().unwrap_or(f64::NAN)
}

fn main() {
    let per_domain = arg_usize("per-domain", 6);
    let length = arg_usize("length", 280);
    let k = arg_usize("k", 3);
    let horizon = arg_usize("horizon", 24);

    // Offline corpus and held-out evaluation sets come from different
    // seeds, so holdout series are genuinely new to the recommender.
    let offline = experiment_corpus(per_domain, length, 42);
    let holdout = experiment_corpus(2, length + horizon, 4242);
    println!(
        "E2 automated ensemble: offline {} series, holdout {} series, k={k}, horizon={horizon}\n",
        offline.len(),
        holdout.len()
    );

    let config = RecommenderConfig {
        methods: fast_zoo(),
        strategy: Strategy::Fixed { horizon },
        ..RecommenderConfig::default()
    };
    let (recommender, matrix) = Recommender::pretrain(&offline, &config).expect("pretraining");
    let global_best = matrix.methods[global_best_method(&matrix)].clone();
    println!("globally best single method on the offline corpus: {global_best}\n");

    let mut rng = StdRng::seed_from_u64(7);
    let method_names: Vec<String> = matrix.methods.clone();

    let mut per_system: Vec<(&str, Vec<f64>)> = vec![
        ("auto_ensemble", Vec::new()),
        ("random_k", Vec::new()),
        ("global_best", Vec::new()),
        ("full_avg", Vec::new()),
        ("oracle_single", Vec::new()),
    ];
    let mut auto_beats_global = 0usize;
    let mut evaluated = 0usize;

    for dataset in &holdout {
        let series = dataset.primary_series();
        let n = series.len();
        let Ok(history) = series.slice(0, n - horizon) else { continue };
        let future = &series.values()[n - horizon..];

        // Auto ensemble.
        let auto = AutoEnsemble::fit(&recommender, &history, k, 0.2, WeightMode::Learned)
            .and_then(|e| e.forecast(horizon))
            .map(|p| smape(&p, future))
            .unwrap_or(f64::NAN);

        // Random-k ensemble.
        let mut pool = method_names.clone();
        rng.shuffle(&mut pool);
        let random_members: Vec<String> = pool.into_iter().take(k).collect();
        let random =
            AutoEnsemble::fit_with_members(&random_members, &history, 0.2, WeightMode::Learned)
                .and_then(|e| e.forecast(horizon))
                .map(|p| smape(&p, future))
                .unwrap_or(f64::NAN);

        // Global best single.
        let global = single_method_smape(&global_best, &history, future);

        // Uniform average of the whole candidate zoo.
        let full = AutoEnsemble::fit_with_members(
            &method_names,
            &history,
            0.2,
            WeightMode::Uniform,
        )
        .and_then(|e| e.forecast(horizon))
        .map(|p| smape(&p, future))
        .unwrap_or(f64::NAN);

        // Per-series oracle over single methods.
        let oracle = method_names
            .iter()
            .map(|m| single_method_smape(m, &history, future))
            .fold(f64::INFINITY, f64::min);

        per_system[0].1.push(auto);
        per_system[1].1.push(random);
        per_system[2].1.push(global);
        per_system[3].1.push(full);
        per_system[4].1.push(if oracle.is_finite() { oracle } else { f64::NAN });
        if auto.is_finite() && global.is_finite() {
            evaluated += 1;
            if auto <= global {
                auto_beats_global += 1;
            }
        }
    }

    let rows: Vec<Vec<String>> = per_system
        .iter()
        .map(|(name, scores)| {
            vec![
                name.to_string(),
                format!("{:.3}", finite_mean(scores)),
                format!("{}", scores.iter().filter(|v| v.is_finite()).count()),
            ]
        })
        .collect();
    println!("── Held-out accuracy (mean sMAPE over holdout series, lower is better):");
    print_table(&["system", "mean sMAPE", "series"], &rows);
    println!(
        "\nauto_ensemble ≤ global_best on {auto_beats_global}/{evaluated} holdout series \
         ({:.0}%).",
        100.0 * auto_beats_global as f64 / evaluated.max(1) as f64
    );
    println!(
        "Paper claim shape: auto_ensemble < random_k and ≤ global_best, approaching oracle_single."
    );
}
