//! Experiment E5 — one-click pipeline throughput and scaling (§II-B).
//!
//! Measures wall-clock of `evaluate_corpus` while sweeping the number of
//! datasets and the number of methods, plus the parallel speedup of the
//! work-stealing runner. The claim shape: runtime grows linearly in
//! datasets × methods and parallelism gives near-linear speedup until
//! core count.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_throughput [--length 300]
//! ```

use easytime::{EvalConfig, Strategy};
use easytime_bench::{arg_usize, experiment_corpus, fast_zoo, print_table};
use easytime_eval::{evaluate_corpus, MetricRegistry};
use std::time::Instant;

fn main() {
    let length = arg_usize("length", 300);
    let registry = MetricRegistry::standard();
    let zoo = fast_zoo();

    println!("E5 pipeline throughput (series length {length})\n");

    // --- Sweep 1: datasets at fixed methods. ---
    println!("── Scaling in #datasets (methods = {}):", zoo.len());
    let mut rows = Vec::new();
    for per_domain in [1usize, 2, 4, 8] {
        let corpus = experiment_corpus(per_domain, length, 42);
        let config = EvalConfig {
            methods: zoo.clone(),
            strategy: Strategy::Fixed { horizon: 24 },
            metrics: vec!["mae".into(), "smape".into()],
            ..EvalConfig::default()
        };
        let config = config.into_validated(&registry).expect("sweep config is valid");
        let started = Instant::now();
        let records = evaluate_corpus(&corpus, &config, &registry).expect("sweep");
        let elapsed = started.elapsed().as_secs_f64();
        rows.push(vec![
            corpus.len().to_string(),
            records.len().to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2}", records.len() as f64 / elapsed),
        ]);
    }
    print_table(&["datasets", "records", "seconds", "records/s"], &rows);

    // --- Sweep 2: methods at fixed datasets. ---
    let corpus = experiment_corpus(4, length, 42);
    println!("\n── Scaling in #methods (datasets = {}):", corpus.len());
    let mut rows = Vec::new();
    for take in [2usize, 4, 8] {
        let config = EvalConfig {
            methods: zoo.iter().take(take).cloned().collect(),
            strategy: Strategy::Fixed { horizon: 24 },
            metrics: vec!["mae".into(), "smape".into()],
            ..EvalConfig::default()
        };
        let config = config.into_validated(&registry).expect("sweep config is valid");
        let started = Instant::now();
        let records = evaluate_corpus(&corpus, &config, &registry).expect("sweep");
        let elapsed = started.elapsed().as_secs_f64();
        rows.push(vec![
            take.to_string(),
            records.len().to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2}", records.len() as f64 / elapsed),
        ]);
    }
    print_table(&["methods", "records", "seconds", "records/s"], &rows);

    // --- Sweep 3: thread scaling. ---
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(4);
    println!("\n── Parallel speedup ({} datasets × {} methods, {cores} cores):", corpus.len(), zoo.len());
    let mut rows = Vec::new();
    let mut t1 = None;
    for threads in [1usize, 2, 4, cores.max(4)] {
        let config = EvalConfig {
            methods: zoo.clone(),
            strategy: Strategy::Rolling { horizon: 24, stride: 24, max_windows: Some(3) },
            metrics: vec!["mae".into()],
            threads,
            ..EvalConfig::default()
        };
        let config = config.into_validated(&registry).expect("sweep config is valid");
        let started = Instant::now();
        let _ = evaluate_corpus(&corpus, &config, &registry).expect("sweep");
        let elapsed = started.elapsed().as_secs_f64();
        let base = *t1.get_or_insert(elapsed);
        rows.push(vec![
            threads.to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2}x", base / elapsed),
        ]);
    }
    print_table(&["threads", "seconds", "speedup"], &rows);
    println!("\nPaper claim shape: linear scaling in work items; parallel runner amortizes the sweep.");
}
