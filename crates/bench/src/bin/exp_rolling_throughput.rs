//! Experiment E7 — incremental rolling-evaluation throughput.
//!
//! Times a long rolling sweep under both [`RefitPolicy`] settings and
//! reports windows/second. The claim shape: warm-startable methods
//! (`Naive`, `SeasonalNaive`) evaluate many times faster under
//! `RefitPolicy::WarmStart` because each window costs O(appended) instead
//! of a full refit over the O(n) training prefix, while refit-only methods
//! (`LinearTrend`) see no benefit — the warm engine falls back to a full
//! refit every window.
//!
//! Writes `results/BENCH_rolling.json` and exits nonzero if warm-start is
//! *slower* than per-window refit on any warm-startable method, so CI
//! locks the optimization in. `EASYTIME_BENCH_FAST=1` shrinks the sweep
//! for CI.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_rolling_throughput
//! ```

use easytime::Domain;
use easytime_bench::print_table;
use easytime_data::synthetic::{domain_spec, generate};
use easytime_eval::{evaluate, EvalConfig, MetricRegistry, RefitPolicy, Strategy};
use easytime_models::ModelSpec;
use std::time::Instant;

struct Measurement {
    method: String,
    policy: &'static str,
    seconds: f64,
    windows: usize,
    windows_per_sec: f64,
}

fn main() {
    let fast = std::env::var_os("EASYTIME_BENCH_FAST").is_some_and(|v| v != "0");
    // Default split is 7:1:2, so the test segment is length/5; with
    // stride 4 the sweep has length/20 windows available.
    let (length, max_windows) = if fast { (2_000, 100) } else { (10_000, 500) };

    let spec = domain_spec(Domain::Traffic, 0, length);
    let series = generate("rolling", &spec, 7).expect("synthetic series");
    let registry = MetricRegistry::standard();

    let methods =
        [ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::LinearTrend];
    let warm_startable = [true, true, false];

    println!(
        "E7 rolling throughput: {length}-point series, {max_windows} windows (h=4, stride=4){}\n",
        if fast { " [fast mode]" } else { "" }
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    for (spec, _) in methods.iter().zip(warm_startable) {
        for policy in [RefitPolicy::Always, RefitPolicy::WarmStart] {
            let config = EvalConfig {
                strategy: Strategy::Rolling {
                    horizon: 4,
                    stride: 4,
                    max_windows: Some(max_windows),
                },
                refit: policy,
                ..EvalConfig::default()
            };
            let config = config.into_validated(&registry).expect("bench config is valid");
            // Warmup, then best-of-3 to shed scheduler noise.
            let _ = evaluate("bench", &series, spec, &config, &registry).expect("warmup");
            let mut best = f64::INFINITY;
            let mut windows = 0usize;
            for _ in 0..3 {
                let started = Instant::now();
                let record =
                    evaluate("bench", &series, spec, &config, &registry).expect("timed run");
                let elapsed = started.elapsed().as_secs_f64();
                assert!(record.is_ok(), "bench evaluation failed: {:?}", record.error);
                windows = record.windows;
                best = best.min(elapsed);
            }
            measurements.push(Measurement {
                method: spec.name(),
                policy: policy.name(),
                seconds: best,
                windows,
                windows_per_sec: windows as f64 / best,
            });
        }
    }

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.method.clone(),
                m.policy.to_string(),
                m.windows.to_string(),
                format!("{:.4}", m.seconds),
                format!("{:.0}", m.windows_per_sec),
            ]
        })
        .collect();
    print_table(&["method", "policy", "windows", "seconds", "windows/s"], &rows);

    // Per-method speedup of warm_start over always.
    let mut speedups: Vec<(String, f64, bool)> = Vec::new();
    for (spec, warm_ok) in methods.iter().zip(warm_startable) {
        let name = spec.name();
        let throughput = |policy: &str| {
            measurements
                .iter()
                .find(|m| m.method == name && m.policy == policy)
                .map_or(f64::NAN, |m| m.windows_per_sec)
        };
        let ratio = throughput("warm_start") / throughput("always");
        speedups.push((name, ratio, warm_ok));
    }
    println!();
    for (name, speedup, _) in &speedups {
        println!("  {name}: warm-start speedup {speedup:.1}x");
    }

    write_report(&measurements, &speedups, length, fast);
    println!("\nwrote results/BENCH_rolling.json");
    println!(
        "Claim shape: warm-startable methods gain >=5x on long sweeps; \
         refit-only methods stay ~1x."
    );

    let regressed: Vec<&str> = speedups
        .iter()
        .filter(|(_, s, warm_ok)| *warm_ok && !(*s >= 1.0))
        .map(|(n, _, _)| n.as_str())
        .collect();
    if !regressed.is_empty() {
        eprintln!(
            "FAIL: warm-start is slower than per-window refit for: {}",
            regressed.join(", ")
        );
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn write_report(
    measurements: &[Measurement],
    speedups: &[(String, f64, bool)],
    length: usize,
    fast: bool,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"series_length\": {length},\n"));
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"method\": \"{}\", \"policy\": \"{}\", \"windows\": {}, \
             \"seconds\": {:.6}, \"windows_per_sec\": {:.1}}}{}\n",
            m.method,
            m.policy,
            m.windows,
            m.seconds,
            m.windows_per_sec,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    for (i, (name, speedup, _)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {speedup:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_rolling.json", out))
    {
        eprintln!("FAIL: could not write results/BENCH_rolling.json: {e}");
        std::process::exit(1);
    }
}
