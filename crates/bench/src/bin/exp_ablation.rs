//! Ablation experiments A1–A4 over the Automated Ensemble design choices
//! called out in DESIGN.md:
//!
//! * `soft-label` — soft vs hard classifier targets (§II-C cites the
//!   SimpleTS soft-label loss),
//! * `topk`       — ensemble accuracy as k sweeps 1..8,
//! * `embedding`  — stats-only vs kernels-only vs combined embeddings,
//! * `weights`    — validation-learned vs uniform ensemble weights.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_ablation -- soft-label
//! cargo run --release -p easytime-bench --bin exp_ablation -- topk
//! cargo run --release -p easytime-bench --bin exp_ablation -- embedding
//! cargo run --release -p easytime-bench --bin exp_ablation -- weights
//! cargo run --release -p easytime-bench --bin exp_ablation -- all
//! ```

use easytime::{Dataset, RecommenderConfig, Strategy, WeightMode};
use easytime_automl::classifier::LabelMode;
use easytime_automl::{AutoEnsemble, Recommender};
use easytime_bench::{arg_usize, experiment_corpus, fast_zoo, finite_mean, ndcg_at_k, print_table};
use easytime_repr::EmbedderConfig;

fn smape(pred: &[f64], actual: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (p, a) in pred.iter().zip(actual) {
        sum += 2.0 * (a - p).abs() / (a.abs() + p.abs()).max(1e-12);
    }
    100.0 * sum / actual.len() as f64
}

struct Setup {
    offline: Vec<Dataset>,
    holdout: Vec<Dataset>,
    horizon: usize,
    base: RecommenderConfig,
}

fn setup() -> Setup {
    let per_domain = arg_usize("per-domain", 8);
    let length = arg_usize("length", 260);
    let horizon = arg_usize("horizon", 24);
    Setup {
        offline: experiment_corpus(per_domain, length, 42),
        holdout: experiment_corpus(2, length + horizon, 4242),
        horizon,
        base: RecommenderConfig {
            methods: fast_zoo(),
            strategy: Strategy::Fixed { horizon },
            ..RecommenderConfig::default()
        },
    }
}

/// Ranking quality (top-1 hit rate + NDCG@5) of a recommender against
/// per-series ground truth computed on the holdout.
fn ranking_quality(setup: &Setup, rec: &Recommender) -> (f64, f64) {
    use easytime_automl::PerfMatrix;
    use easytime_eval::{evaluate_corpus, EvalConfig, MetricRegistry};
    let config = EvalConfig {
        methods: setup.base.methods.clone(),
        strategy: setup.base.strategy,
        metrics: vec!["smape".into()],
        ..EvalConfig::default()
    };
    let registry = MetricRegistry::standard();
    let config = config.into_validated(&registry).expect("holdout config is valid");
    let records = evaluate_corpus(&setup.holdout, &config, &registry).expect("holdout eval");
    let ids: Vec<String> = setup.holdout.iter().map(|d| d.meta.id.clone()).collect();
    let names: Vec<String> = setup.base.methods.iter().map(|m| m.name()).collect();
    let truth = PerfMatrix::from_records(&records, &ids, &names, "smape");

    let mut hits = 0usize;
    let mut n = 0usize;
    let mut ndcgs = Vec::new();
    for (i, d) in setup.holdout.iter().enumerate() {
        let Some(best) = truth.best_method(i) else { continue };
        let predicted: Vec<usize> = rec
            .recommend(&d.primary_series())
            .iter()
            .filter_map(|r| names.iter().position(|x| *x == r.method))
            .collect();
        if predicted[0] == best {
            hits += 1;
        }
        ndcgs.push(ndcg_at_k(&predicted, &truth.scores[i], 5));
        n += 1;
    }
    (hits as f64 / n.max(1) as f64, finite_mean(&ndcgs))
}

/// Mean held-out ensemble sMAPE with a given recommender/k/weight mode.
fn ensemble_quality(setup: &Setup, rec: &Recommender, k: usize, mode: WeightMode) -> f64 {
    let mut scores = Vec::new();
    for d in &setup.holdout {
        let series = d.primary_series();
        let n = series.len();
        let Ok(history) = series.slice(0, n - setup.horizon) else { continue };
        let future = &series.values()[n - setup.horizon..];
        let s = AutoEnsemble::fit(rec, &history, k, 0.2, mode)
            .and_then(|e| e.forecast(setup.horizon))
            .map(|p| smape(&p, future))
            .unwrap_or(f64::NAN);
        scores.push(s);
    }
    finite_mean(&scores)
}

fn ablate_soft_label(setup: &Setup) {
    println!("── A1: soft-label vs hard-label classifier targets");
    let mut rows = Vec::new();
    for (label, mode) in [("soft (paper)", LabelMode::Soft), ("hard (one-hot)", LabelMode::Hard)] {
        let config = RecommenderConfig { label_mode: mode, ..setup.base.clone() };
        let (rec, _) = Recommender::pretrain(&setup.offline, &config).expect("pretrain");
        let (top1, ndcg) = ranking_quality(setup, &rec);
        rows.push(vec![label.to_string(), format!("{top1:.2}"), format!("{ndcg:.3}")]);
    }
    print_table(&["labels", "top-1 hit", "NDCG@5"], &rows);
    println!("claim shape: soft ≥ hard on ranking quality\n");
}

fn ablate_topk(setup: &Setup) {
    println!("── A2: ensemble accuracy vs k");
    let (rec, _) = Recommender::pretrain(&setup.offline, &setup.base).expect("pretrain");
    let mut rows = Vec::new();
    for k in 1..=8usize {
        let s = ensemble_quality(setup, &rec, k, WeightMode::Learned);
        rows.push(vec![k.to_string(), format!("{s:.3}")]);
    }
    print_table(&["k", "mean sMAPE"], &rows);
    println!("claim shape: k=1 under-diverse, large k dilutes; minimum in the middle\n");
}

fn ablate_embedding(setup: &Setup) {
    println!("── A3: embedding ablation");
    let variants = [
        ("stats only", EmbedderConfig { num_kernels: 0, use_stats: true, seed: 42 }),
        ("kernels only", EmbedderConfig { num_kernels: 96, use_stats: false, seed: 42 }),
        ("both (default)", EmbedderConfig { num_kernels: 96, use_stats: true, seed: 42 }),
    ];
    let mut rows = Vec::new();
    for (label, embedder) in variants {
        let config = RecommenderConfig { embedder, ..setup.base.clone() };
        let (rec, _) = Recommender::pretrain(&setup.offline, &config).expect("pretrain");
        let (top1, ndcg) = ranking_quality(setup, &rec);
        rows.push(vec![label.to_string(), format!("{top1:.2}"), format!("{ndcg:.3}")]);
    }
    print_table(&["embedding", "top-1 hit", "NDCG@5"], &rows);
    println!("claim shape: combined ≥ each single feature group\n");
}

fn ablate_weights(setup: &Setup) {
    println!("── A4: learned vs uniform ensemble weights (k = 3)");
    let (rec, _) = Recommender::pretrain(&setup.offline, &setup.base).expect("pretrain");
    let mut rows = Vec::new();
    for (label, mode) in
        [("learned on validation (paper)", WeightMode::Learned), ("uniform", WeightMode::Uniform)]
    {
        let s = ensemble_quality(setup, &rec, 3, mode);
        rows.push(vec![label.to_string(), format!("{s:.3}")]);
    }
    print_table(&["weights", "mean sMAPE"], &rows);
    println!("claim shape: learned ≤ uniform\n");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let setup = setup();
    println!(
        "Ablations: offline {} series, holdout {} series, horizon {}\n",
        setup.offline.len(),
        setup.holdout.len(),
        setup.horizon
    );
    match which.as_str() {
        "soft-label" => ablate_soft_label(&setup),
        "topk" => ablate_topk(&setup),
        "embedding" => ablate_embedding(&setup),
        "weights" => ablate_weights(&setup),
        "all" => {
            ablate_soft_label(&setup);
            ablate_topk(&setup);
            ablate_embedding(&setup);
            ablate_weights(&setup);
        }
        other => {
            eprintln!("unknown ablation '{other}'; use soft-label|topk|embedding|weights|all");
            std::process::exit(2);
        }
    }
}
