//! Experiment E3 — method-recommendation quality (paper Fig. 4 labels 3–4,
//! §II-C offline/online).
//!
//! Pretrains the recommender, then on held-out series compares its
//! probability ranking against the *true* per-series method ranking
//! (obtained by actually evaluating every candidate):
//!
//! * top-1 / top-3 hit-rate (is the true best method in the predicted
//!   top-k?),
//! * NDCG@5 of the predicted ranking,
//! * Spearman correlation between predicted and true rankings,
//!
//! against a random-guess baseline and a popularity baseline (always
//! predict the globally best offline ranking).
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_recommend \
//!   [--per-domain 6] [--length 280] [--horizon 24]
//! ```

use easytime::{RecommenderConfig, Strategy};
use easytime_automl::{PerfMatrix, Recommender};
use easytime_bench::{arg_usize, experiment_corpus, fast_zoo, finite_mean, ndcg_at_k, print_table};
use easytime_eval::{evaluate_corpus, EvalConfig, MetricRegistry};
use easytime_linalg::stats::spearman;
use easytime_rng::StdRng;

fn main() {
    let per_domain = arg_usize("per-domain", 6);
    let length = arg_usize("length", 280);
    let horizon = arg_usize("horizon", 24);

    let offline = experiment_corpus(per_domain, length, 42);
    let holdout = experiment_corpus(4, length, 777);
    let methods = fast_zoo();
    println!(
        "E3 recommendation quality: offline {} series, holdout {} series, {} methods\n",
        offline.len(),
        holdout.len(),
        methods.len()
    );

    let config = RecommenderConfig {
        methods: methods.clone(),
        strategy: Strategy::Fixed { horizon },
        ..RecommenderConfig::default()
    };
    let (recommender, offline_matrix) =
        Recommender::pretrain(&offline, &config).expect("pretraining");

    // Ground truth on the holdout: actually run every candidate.
    let eval_config = EvalConfig {
        methods: methods.clone(),
        strategy: Strategy::Fixed { horizon },
        metrics: vec!["smape".into()],
        ..EvalConfig::default()
    };
    let registry = MetricRegistry::standard();
    let eval_config =
        eval_config.into_validated(&registry).expect("holdout config is valid");
    let records = evaluate_corpus(&holdout, &eval_config, &registry).expect("holdout evaluation");
    let ids: Vec<String> = holdout.iter().map(|d| d.meta.id.clone()).collect();
    let names: Vec<String> = methods.iter().map(|m| m.name()).collect();
    let truth = PerfMatrix::from_records(&records, &ids, &names, "smape");

    // Popularity baseline: the offline mean ranking, fixed for all series.
    let mut popularity: Vec<usize> = (0..names.len()).collect();
    let offline_means: Vec<f64> = (0..names.len())
        .map(|m| finite_mean(&offline_matrix.scores.iter().map(|r| r[m]).collect::<Vec<_>>()))
        .collect();
    popularity.sort_by(|&a, &b| {
        offline_means[a].total_cmp(&offline_means[b])
    });

    let mut rng = StdRng::seed_from_u64(9);

    struct Acc {
        top1: usize,
        top3: usize,
        ndcg: Vec<f64>,
        rho: Vec<f64>,
        /// Relative regret: how much worse (in the metric) the predicted
        /// top-1 method is than the oracle best, as a fraction of the
        /// oracle score. The deployment-relevant quantity: picking the
        /// *second best* method barely costs anything if it is nearly
        /// tied with the best.
        regret: Vec<f64>,
        n: usize,
    }
    impl Acc {
        fn new() -> Acc {
            Acc { top1: 0, top3: 0, ndcg: Vec::new(), rho: Vec::new(), regret: Vec::new(), n: 0 }
        }
        fn update(&mut self, predicted: &[usize], scores: &[f64], best: usize) {
            self.n += 1;
            if predicted[0] == best {
                self.top1 += 1;
            }
            if predicted.iter().take(3).any(|&m| m == best) {
                self.top3 += 1;
            }
            let oracle = scores[best];
            let picked = scores[predicted[0]];
            if oracle.is_finite() && picked.is_finite() && oracle.abs() > 1e-9 {
                self.regret.push((picked - oracle) / oracle.abs());
            }
            self.ndcg.push(ndcg_at_k(predicted, scores, 5));
            // Spearman between predicted rank positions and true scores.
            let pred_rank: Vec<f64> = {
                let mut r = vec![0.0; predicted.len()];
                for (pos, &m) in predicted.iter().enumerate() {
                    r[m] = pos as f64;
                }
                r
            };
            let finite: Vec<(f64, f64)> = pred_rank
                .iter()
                .zip(scores)
                .filter(|(_, s)| s.is_finite())
                .map(|(&a, &b)| (a, b))
                .collect();
            if finite.len() >= 3 {
                let (a, b): (Vec<f64>, Vec<f64>) = finite.into_iter().unzip();
                self.rho.push(spearman(&a, &b));
            }
        }
        fn row(&self, name: &str) -> Vec<String> {
            vec![
                name.to_string(),
                format!("{:.2}", self.top1 as f64 / self.n.max(1) as f64),
                format!("{:.2}", self.top3 as f64 / self.n.max(1) as f64),
                format!("{:.3}", finite_mean(&self.ndcg)),
                format!("{:.3}", finite_mean(&self.rho)),
                format!("{:.1}%", 100.0 * finite_mean(&self.regret)),
            ]
        }
    }

    let mut rec_acc = Acc::new();
    let mut random_acc = Acc::new();
    let mut pop_acc = Acc::new();

    for (i, dataset) in holdout.iter().enumerate() {
        let scores = &truth.scores[i];
        let Some(best) = truth.best_method(i) else { continue };
        // Recommender ranking mapped back to matrix indices.
        let ranked = recommender.recommend(&dataset.primary_series());
        let predicted: Vec<usize> = ranked
            .iter()
            .filter_map(|r| names.iter().position(|n| *n == r.method))
            .collect();
        rec_acc.update(&predicted, scores, best);

        let mut random: Vec<usize> = (0..names.len()).collect();
        rng.shuffle(&mut random);
        random_acc.update(&random, scores, best);
        pop_acc.update(&popularity, scores, best);
    }

    println!("── Ranking quality on {} holdout series:", rec_acc.n);
    print_table(
        &["ranker", "top-1 hit", "top-3 hit", "NDCG@5", "Spearman ρ", "mean regret"],
        &[
            rec_acc.row("recommender"),
            pop_acc.row("popularity"),
            random_acc.row("random"),
        ],
    );
    println!(
        "\nRandom baseline expectation: top-1 ≈ {:.2}, top-3 ≈ {:.2}.",
        1.0 / names.len() as f64,
        3.0 / names.len() as f64
    );
    println!("Paper claim shape: recommender > popularity > random on every column.");
}
