//! Experiment E10 — serving-engine load generation.
//!
//! Two phases exercise `easytime-serve` end to end:
//!
//! * **QPS phase** (worker pool, system clock): sequential closed-loop
//!   load against cold tenants (every request embeds, classifies, and
//!   fits) versus warm tenants (every request hits the model cache and
//!   forecasts from the fitted model). The gate locks the cache in:
//!   warm QPS must be ≥ 2× cold QPS on the naive family.
//! * **Deterministic phase** (inline engine, `ManualClock`): a scripted
//!   arrival pattern — steady trickle plus periodic bursts — drained one
//!   micro-batch per simulated millisecond, so queueing delay, the
//!   latency distribution (p50/p95/p99 from the obs log2 histogram),
//!   hit rate, shed and expiry counts are bit-reproducible. An overload
//!   segment floods a tiny queue and asserts typed shed/expiry errors
//!   only — no panics.
//!
//! Writes `results/BENCH_serving.json`. `--deterministic --out PATH`
//! writes only the deterministic section (CI double-runs it through
//! `cmp` as a determinism gate). `EASYTIME_BENCH_FAST=1` shrinks the
//! load for CI.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_serving
//! ```

use easytime::{CorpusConfig, Domain, ModelSpec};
use easytime_automl::recommender::{Recommender, RecommenderConfig};
use easytime_bench::{arg, print_table};
use easytime_clock::{Clock, ManualClock};
use easytime_data::synthetic::{build_corpus, domain_spec, generate};
use easytime_data::TimeSeries;
use easytime_db::Database;
use easytime_eval::{EvalConfig, MetricRegistry, Strategy};
use easytime_serve::{
    Request, Response, ServeConfig, ServeContext, ServeEngine, ServeError, ServeStats,
};
use easytime_rng::Xoshiro256pp;
use std::time::Instant;

struct QpsReport {
    cold_requests: usize,
    warm_requests: usize,
    cold_qps: f64,
    warm_qps: f64,
    warm_over_cold: f64,
}

struct DetReport {
    ticks: usize,
    submitted: u64,
    completed: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
    shed: u64,
    expired: u64,
    evictions: u64,
    batches: u64,
    overload_shed: usize,
    overload_expired: usize,
}

fn context() -> ServeContext {
    let corpus = build_corpus(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Electricity],
        per_domain: 4,
        length: 160,
        seed: 31,
        ..CorpusConfig::default()
    })
    .expect("corpus builds");
    // The naive family: cheap fits, so the cold/warm QPS gap measures the
    // serving pipeline (embed + classify + fit vs cached forecast), not
    // one expensive model.
    let config = RecommenderConfig {
        methods: vec![
            ModelSpec::Naive,
            ModelSpec::SeasonalNaive(None),
            ModelSpec::Drift,
            ModelSpec::Mean,
        ],
        strategy: Strategy::Fixed { horizon: 12 },
        ..RecommenderConfig::default()
    };
    let recommender = Recommender::pretrain(&corpus, &config).expect("pretraining succeeds").0;
    let registry = MetricRegistry::standard();
    let eval = EvalConfig::builder()
        .method(ModelSpec::Naive)
        .strategy(Strategy::Fixed { horizon: 12 })
        .build(&registry)
        .expect("eval config is valid");
    ServeContext::new(recommender, registry, Database::new(), eval)
}

fn tenant(name: &str, len: usize, seed: u64) -> TimeSeries {
    generate(name, &domain_spec(Domain::Electricity, 1, len), seed).expect("series generates")
}

fn forecast_req(series: TimeSeries) -> Request {
    Request::RecommendAndForecast { series, top_k: 3, horizon: 12, method: None }
}

fn expect_hit(resp: &Response) -> bool {
    matches!(resp, Response::RecommendAndForecast { cache_hit: true, .. })
}

/// Closed-loop QPS for a prepared request list, best of `trials`.
fn time_requests(
    engine: &ServeEngine,
    mut make: impl FnMut() -> Vec<Request>,
    trials: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let requests = make();
        let n = requests.len();
        let started = Instant::now();
        for req in requests {
            engine.call(req).expect("request serves");
        }
        best = best.min(started.elapsed().as_secs_f64() / n as f64);
    }
    1.0 / best
}

fn qps_phase(fast: bool) -> QpsReport {
    let n = if fast { 48 } else { 160 };
    let len = if fast { 256 } else { 512 };
    let tenants = 12usize;
    let cfg = ServeConfig::builder()
        .workers(2)
        .cache_capacity(tenants + 4)
        .build()
        .expect("valid");
    let engine = ServeEngine::start_with_clock(context(), cfg, Clock::system());

    // Cold: every request is a brand-new tenant (unique fingerprint), so
    // the full embed → classify → fit pipeline runs each time. Fresh
    // names per trial keep later trials cold too.
    let mut cold_counter = 0u64;
    let cold_qps = time_requests(
        &engine,
        || {
            let base = {
                cold_counter += 1000;
                cold_counter
            };
            (0..n)
                .map(|i| forecast_req(tenant(&format!("cold{}", base + i as u64), len, base + i as u64)))
                .collect()
        },
        3,
    );

    // Warm: prime a fixed tenant pool once, then cycle it — every timed
    // request must come out of the cache.
    let pool: Vec<TimeSeries> =
        (0..tenants).map(|i| tenant(&format!("warm{i}"), len, 500 + i as u64)).collect();
    for s in &pool {
        engine.call(forecast_req(s.clone())).expect("priming serves");
    }
    for s in &pool {
        let resp = engine.call(forecast_req(s.clone())).expect("warm check serves");
        assert!(expect_hit(&resp), "primed tenant must hit the cache");
    }
    let warm_qps = time_requests(
        &engine,
        || (0..n).map(|i| forecast_req(pool[i % tenants].clone())).collect(),
        3,
    );

    engine.shutdown();
    QpsReport {
        cold_requests: n,
        warm_requests: n,
        cold_qps,
        warm_qps,
        warm_over_cold: warm_qps / cold_qps,
    }
}

/// Drives the scripted deterministic load; everything observable is a
/// pure function of the seed and tick count.
fn deterministic_phase(fast: bool) -> (DetReport, ServeStats) {
    let ticks = if fast { 240 } else { 720 };
    let manual = ManualClock::new();
    let cfg = ServeConfig::builder()
        .cache_capacity(24)
        .batch_max(8)
        .deadline_ms(40.0)
        .queue_bound(64)
        .build()
        .expect("valid");
    let engine = ServeEngine::inline(context(), cfg, manual.clock());
    let mut rng = Xoshiro256pp::seed_from_u64(42);

    let pool: Vec<TimeSeries> =
        (0..20).map(|i| tenant(&format!("p{i}"), 160 + 8 * i, 700 + i as u64)).collect();
    let mut fresh = 0u64;
    let mut submitted = 0u64;
    let mut shed = 0u64;

    for t in 0..ticks {
        // Steady trickle with a burst every 16 ticks: bursts outsize the
        // 8-request micro-batch, so queueing delay (in whole simulated
        // milliseconds) shapes the latency distribution.
        let arrivals =
            if t % 16 == 0 { 12 + rng.gen_range(0..8) } else { rng.gen_range(0..3) };
        for _ in 0..arrivals {
            let req = if rng.gen_bool(0.75) {
                forecast_req(pool[rng.gen_range(0..pool.len())].clone())
            } else {
                fresh += 1;
                forecast_req(tenant(&format!("f{fresh}"), 180, 900 + fresh))
            };
            match engine.submit(req) {
                Ok(ticket) => {
                    submitted += 1;
                    // Replies are read through the stats histogram; the
                    // ticket can drop (load generation, not correctness).
                    drop(ticket);
                }
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        engine.tick();
        manual.advance_millis(1);
    }
    while engine.tick() > 0 {
        manual.advance_millis(1);
    }
    let stats = engine.stats();

    // Overload segment: flood a tiny queue in a single instant. Every
    // outcome must be a typed shed or expiry — never a panic, never a
    // model fit for a request past its deadline.
    let overload_manual = ManualClock::new();
    let overload_cfg = ServeConfig::builder()
        .queue_bound(16)
        .batch_max(8)
        .deadline_ms(5.0)
        .build()
        .expect("valid");
    let overload = ServeEngine::inline(context(), overload_cfg, overload_manual.clock());
    let mut overload_shed = 0usize;
    let mut tickets = Vec::new();
    for i in 0..100u64 {
        match overload.submit(forecast_req(tenant(&format!("o{i}"), 160, i))) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => overload_shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    overload_manual.advance_millis(50);
    while overload.tick() > 0 {}
    let mut overload_expired = 0usize;
    for t in tickets {
        match t.wait() {
            Err(ServeError::DeadlineExceeded { .. }) => overload_expired += 1,
            Ok(_) => panic!("request served past its deadline"),
            Err(e) => panic!("unexpected serving error: {e}"),
        }
    }

    let q = |p: f64| stats.latency.quantile(p) / 1_000_000.0;
    let report = DetReport {
        ticks,
        submitted,
        completed: stats.completed,
        p50_ms: q(0.50),
        p95_ms: q(0.95),
        p99_ms: q(0.99),
        hit_rate: stats.hit_rate(),
        shed: shed + stats.shed,
        expired: stats.expired,
        evictions: stats.evictions,
        batches: stats.batches,
        overload_shed,
        overload_expired,
    };
    (report, stats)
}

fn render_deterministic(det: &DetReport) -> String {
    let mut out = String::from("  \"deterministic\": {\n");
    out.push_str(&format!("    \"ticks\": {},\n", det.ticks));
    out.push_str(&format!("    \"submitted\": {},\n", det.submitted));
    out.push_str(&format!("    \"completed\": {},\n", det.completed));
    out.push_str(&format!("    \"p50_ms\": {:.6},\n", det.p50_ms));
    out.push_str(&format!("    \"p95_ms\": {:.6},\n", det.p95_ms));
    out.push_str(&format!("    \"p99_ms\": {:.6},\n", det.p99_ms));
    out.push_str(&format!("    \"hit_rate\": {:.6},\n", det.hit_rate));
    out.push_str(&format!("    \"shed\": {},\n", det.shed));
    out.push_str(&format!("    \"expired\": {},\n", det.expired));
    out.push_str(&format!("    \"evictions\": {},\n", det.evictions));
    out.push_str(&format!("    \"batches\": {},\n", det.batches));
    out.push_str(&format!("    \"overload_shed\": {},\n", det.overload_shed));
    out.push_str(&format!("    \"overload_expired\": {}\n", det.overload_expired));
    out.push_str("  }");
    out
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn write_report(path: &str, fast: bool, qps: Option<&QpsReport>, det: &DetReport) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    if let Some(q) = qps {
        out.push_str(&format!("  \"cold_requests\": {},\n", q.cold_requests));
        out.push_str(&format!("  \"warm_requests\": {},\n", q.warm_requests));
        out.push_str(&format!("  \"cold_qps\": {:.1},\n", q.cold_qps));
        out.push_str(&format!("  \"warm_qps\": {:.1},\n", q.warm_qps));
        out.push_str(&format!(
            "  \"speedups\": {{\"warm_over_cold\": {:.2}}},\n",
            q.warm_over_cold
        ));
    }
    out.push_str(&render_deterministic(det));
    out.push_str("\n}\n");
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &out))
    {
        eprintln!("FAIL: could not write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let fast = std::env::var_os("EASYTIME_BENCH_FAST").is_some_and(|v| v != "0");
    let deterministic_only = std::env::args().any(|a| a == "--deterministic");
    let default_out = "results/BENCH_serving.json".to_string();
    let out_path = arg("out").unwrap_or(default_out);

    println!(
        "E10 serving load generator{}{}\n",
        if fast { " [fast mode]" } else { "" },
        if deterministic_only { " [deterministic only]" } else { "" }
    );

    let qps = if deterministic_only { None } else { Some(qps_phase(fast)) };
    let (det, stats) = deterministic_phase(fast);

    if let Some(q) = &qps {
        print_table(
            &["phase", "requests", "qps"],
            &[
                vec![
                    "cold (fit per request)".into(),
                    q.cold_requests.to_string(),
                    format!("{:.0}", q.cold_qps),
                ],
                vec![
                    "warm (cache hit)".into(),
                    q.warm_requests.to_string(),
                    format!("{:.0}", q.warm_qps),
                ],
            ],
        );
        println!("\n  warm/cold speedup: {:.1}x\n", q.warm_over_cold);
    }
    print_table(
        &["metric", "value"],
        &[
            vec!["ticks".into(), det.ticks.to_string()],
            vec!["submitted".into(), det.submitted.to_string()],
            vec!["completed".into(), det.completed.to_string()],
            vec!["p50".into(), format!("{:.3} ms", det.p50_ms)],
            vec!["p95".into(), format!("{:.3} ms", det.p95_ms)],
            vec!["p99".into(), format!("{:.3} ms", det.p99_ms)],
            vec!["hit rate".into(), format!("{:.3}", det.hit_rate)],
            vec!["shed".into(), det.shed.to_string()],
            vec!["expired".into(), det.expired.to_string()],
            vec!["evictions".into(), det.evictions.to_string()],
            vec!["overload shed".into(), det.overload_shed.to_string()],
            vec!["overload expired".into(), det.overload_expired.to_string()],
        ],
    );
    println!(
        "\n  deterministic load: {} hits / {} misses over {} batches",
        stats.cache_hits, stats.cache_misses, stats.batches
    );

    if deterministic_only {
        write_report(&out_path, fast, None, &det);
        println!("\nwrote {out_path}");
        return;
    }

    write_report(&out_path, fast, qps.as_ref(), &det);
    println!("\nwrote {out_path}");
    println!(
        "Claim shape: cache-hit serving >= 2x cold-refit QPS on the naive \
         family; typed shed/expiry only under overload."
    );

    if let Some(q) = &qps {
        if !(q.warm_over_cold >= 2.0) {
            eprintln!(
                "FAIL: warm QPS is only {:.2}x cold QPS (gate: >= 2x)",
                q.warm_over_cold
            );
            std::process::exit(1);
        }
        if det.overload_shed == 0 || det.overload_expired == 0 {
            eprintln!("FAIL: overload segment produced no typed shed/expiry errors");
            std::process::exit(1);
        }
    }
}
