//! Experiment E8 — blocked compute-kernel throughput.
//!
//! Times the blocked/multi-accumulator kernels in `easytime_linalg::kernels`
//! against naive textbook references (the same reference implementations the
//! property tests use as oracles) at the shapes the forecasting hot paths
//! actually hit: ridge-fit design matrices (~480×25), ROCKET dilated
//! convolutions, and a full rolling corpus sweep for end-to-end windows/sec.
//!
//! Writes `results/BENCH_kernels.json` and exits nonzero if any blocked
//! kernel is *slower* than its naive reference, so CI locks the
//! optimization in. `EASYTIME_BENCH_FAST=1` shrinks repetition counts.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_kernels
//! ```

use easytime::{CorpusConfig, Domain};
use easytime_bench::print_table;
use easytime_data::synthetic::build_corpus;
use easytime_eval::{evaluate_corpus, EvalConfig, MetricRegistry, Strategy};
use easytime_linalg::kernels;
use easytime_models::ModelSpec;
use easytime_repr::{EmbedScratch, Embedder, EmbedderConfig};
use std::hint::black_box;
use std::time::Instant;

struct Micro {
    name: &'static str,
    shape: String,
    naive_s: f64,
    blocked_s: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        self.naive_s / self.blocked_s
    }
}

/// Best-of-3 wall time of `reps` calls to `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

// ---- naive textbook references (the property-test oracles) ----

fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn naive_matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = s;
        }
    }
}

fn naive_gram(rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    for i in 0..cols {
        for j in 0..cols {
            let mut s = 0.0;
            for r in 0..rows {
                s += x[r * cols + i] * x[r * cols + j];
            }
            out[i * cols + j] = s;
        }
    }
}

fn naive_conv_ppv_max(z: &[f64], w: &[f64], bias: f64, dilation: usize) -> (f64, f64) {
    let span = w.len().saturating_sub(1) * dilation;
    if z.len() <= span {
        return (0.0, 0.0);
    }
    let n_out = z.len() - span;
    let mut positive = 0usize;
    let mut max = f64::NEG_INFINITY;
    for t in 0..n_out {
        let mut acc = bias;
        for (tap, wv) in w.iter().enumerate() {
            acc += wv * z[t + tap * dilation];
        }
        if acc > 0.0 {
            positive += 1;
        }
        if acc > max {
            max = acc;
        }
    }
    (positive as f64 / n_out as f64, max)
}

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 * 0.137) + phase).sin() * 3.0 + 0.1).collect()
}

fn main() {
    let fast = std::env::var_os("EASYTIME_BENCH_FAST").is_some_and(|v| v != "0");
    let scale = if fast { 1usize } else { 8 };
    println!("E8 kernel throughput{}\n", if fast { " [fast mode]" } else { "" });

    let mut micros: Vec<Micro> = Vec::new();

    // Ridge-fit design matrix: 480 lag windows × 25 features.
    let (rows, cols) = (480usize, 25usize);
    let x = series(rows * cols, 0.0);

    // dot at the gram column length.
    {
        let a = series(rows, 0.3);
        let b = series(rows, 0.7);
        let reps = 40_000 * scale;
        let naive_s = time_best(reps, || {
            black_box(naive_dot(black_box(&a), black_box(&b)));
        });
        let blocked_s = time_best(reps, || {
            black_box(kernels::dot(black_box(&a), black_box(&b)));
        });
        micros.push(Micro { name: "dot", shape: format!("{rows}"), naive_s, blocked_s });
    }

    // gram at the ridge normal-equations shape.
    {
        let reps = 400 * scale;
        let mut out = vec![0.0; cols * cols];
        let naive_s = time_best(reps, || {
            naive_gram(rows, cols, black_box(&x), &mut out);
            black_box(&out);
        });
        let mut packed = Vec::new();
        let blocked_s = time_best(reps, || {
            kernels::gram(rows, cols, black_box(&x), &mut packed, &mut out);
            black_box(&out);
        });
        micros.push(Micro {
            name: "gram",
            shape: format!("{rows}x{cols}"),
            naive_s,
            blocked_s,
        });
    }

    // matmul: design matrix times its transpose-shaped counterpart.
    {
        let (m, k, n) = (rows, cols, rows);
        let a = series(m * k, 0.1);
        let b = series(k * n, 0.9);
        let reps = 4 * scale;
        let mut out = vec![0.0; m * n];
        let naive_s = time_best(reps, || {
            naive_matmul(m, k, n, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        });
        let mut panel = Vec::new();
        let blocked_s = time_best(reps, || {
            out.fill(0.0);
            kernels::matmul(m, k, n, black_box(&a), black_box(&b), &mut panel, &mut out);
            black_box(&out);
        });
        micros.push(Micro {
            name: "matmul",
            shape: format!("{m}x{k}x{n}"),
            naive_s,
            blocked_s,
        });
    }

    // ROCKET dilated convolution over a z-normalized series.
    {
        let z = series(512, 0.0);
        let w = [0.4, -1.1, 0.8, 0.2, -0.6, 1.3, -0.9, 0.5, -0.2];
        let reps = 20_000 * scale;
        let naive_s = time_best(reps, || {
            black_box(naive_conv_ppv_max(black_box(&z), black_box(&w), 0.2, 3));
        });
        let blocked_s = time_best(reps, || {
            black_box(kernels::conv_ppv_max(black_box(&z), black_box(&w), 0.2, 3));
        });
        micros.push(Micro { name: "conv_ppv_max", shape: "512 d3 w9".into(), naive_s, blocked_s });
    }

    let rows_out: Vec<Vec<String>> = micros
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.shape.clone(),
                format!("{:.6}", m.naive_s),
                format!("{:.6}", m.blocked_s),
                format!("{:.2}x", m.speedup()),
            ]
        })
        .collect();
    print_table(&["kernel", "shape", "naive s", "blocked s", "speedup"], &rows_out);

    // ROCKET embedding throughput through the reusable-scratch path.
    let embeds_per_sec = {
        let values = series(512, 0.0);
        let ts = easytime_data::TimeSeries::new("bench", values, easytime_data::Frequency::Daily)
            .expect("series is valid");
        let mut embedder =
            Embedder::new(EmbedderConfig { num_kernels: 64, use_stats: false, seed: 7 });
        embedder.fit(std::slice::from_ref(&ts));
        let mut scratch = EmbedScratch::new();
        let mut out = Vec::new();
        let reps = 200 * scale;
        let secs = time_best(reps, || {
            embedder.embed_into(&ts, &mut scratch, &mut out);
            black_box(&out);
        });
        reps as f64 / secs
    };
    println!("\nrocket embed_into: {embeds_per_sec:.0} embeddings/s (512-pt series, 64 kernels)");

    // End-to-end: rolling corpus sweep windows/sec under LJF dispatch.
    let (e2e_windows, e2e_seconds) = {
        let corpus = build_corpus(&CorpusConfig {
            domains: vec![Domain::Traffic, Domain::Energy],
            per_domain: 3,
            length: if fast { 400 } else { 2_000 },
            ..CorpusConfig::default()
        })
        .expect("corpus config is valid");
        let registry = MetricRegistry::standard();
        let config = EvalConfig {
            methods: vec![
                ModelSpec::LagRidge { lookback: 24, lambda: 1e-2 },
                ModelSpec::NLinear { lookback: 32 },
            ],
            strategy: Strategy::Rolling { horizon: 12, stride: 12, max_windows: Some(8) },
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .expect("bench config is valid");
        let _ = evaluate_corpus(&corpus, &config, &registry).expect("warmup sweep");
        let started = Instant::now();
        let records = evaluate_corpus(&corpus, &config, &registry).expect("timed sweep");
        let seconds = started.elapsed().as_secs_f64();
        let windows: usize = records.iter().map(|r| r.windows).sum();
        (windows, seconds)
    };
    println!(
        "end-to-end corpus sweep: {e2e_windows} windows in {e2e_seconds:.3}s = {:.0} windows/s",
        e2e_windows as f64 / e2e_seconds
    );

    write_report(&micros, embeds_per_sec, e2e_windows, e2e_seconds, fast);
    println!("\nwrote results/BENCH_kernels.json");
    println!(
        "Claim shape: blocked gram/matmul gain >=2x over the textbook loops \
         at ridge-fit shapes; no kernel regresses below its naive reference."
    );

    let regressed: Vec<&str> =
        micros.iter().filter(|m| !(m.speedup() >= 1.0)).map(|m| m.name).collect();
    if !regressed.is_empty() {
        eprintln!("FAIL: blocked kernel slower than naive reference: {}", regressed.join(", "));
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn write_report(
    micros: &[Micro],
    embeds_per_sec: f64,
    e2e_windows: usize,
    e2e_seconds: f64,
    fast: bool,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, m) in micros.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"naive_s\": {:.6}, \
             \"blocked_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.shape,
            m.naive_s,
            m.blocked_s,
            m.speedup(),
            if i + 1 < micros.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"rocket_embeds_per_sec\": {embeds_per_sec:.1},\n"));
    out.push_str("  \"end_to_end\": {\n");
    out.push_str(&format!("    \"windows\": {e2e_windows},\n"));
    out.push_str(&format!("    \"seconds\": {e2e_seconds:.4},\n"));
    out.push_str(&format!(
        "    \"windows_per_sec\": {:.1}\n",
        e2e_windows as f64 / e2e_seconds
    ));
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_kernels.json", out))
    {
        eprintln!("FAIL: could not write results/BENCH_kernels.json: {e}");
        std::process::exit(1);
    }
}
