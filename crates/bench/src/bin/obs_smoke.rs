//! Traced smoke evaluation for CI.
//!
//! Forces tracing on, runs a small `evaluate_corpus` under a root span,
//! flushes `results/trace.jsonl` + `results/metrics.json` +
//! `results/PROFILE.json` + `results/profile.txt`, then re-reads the
//! metrics and profile files and validates their schemas: version pins,
//! expected stage keys, model-fit counters, the ≥95% span coverage
//! acceptance check, the exact self-time partition
//! (`self_total_ns == total_ns`), and that the root span's own self time
//! is at most 5% of its total — ≥95% of the run is attributed to named
//! child stages. Any drift exits nonzero so `scripts/ci.sh` fails loudly.

use easytime::json::Json;
use easytime::{EvalConfig, MetricRegistry, Strategy};
use easytime_bench::{experiment_corpus, fast_zoo};
use easytime_eval::evaluate_corpus;
use std::process::ExitCode;

/// Stages the traced evaluation must produce (schema contract with CI).
const EXPECTED_STAGES: [&str; 7] = [
    "eval.corpus",
    "eval.evaluate",
    "eval.run_windows",
    "eval.window",
    "db.query",
    "db.plan",
    "db.execute",
];

/// Query-engine counters the knowledge-base segment must record.
const EXPECTED_DB_COUNTERS: [&str; 3] = ["db.index_seeks", "db.rows_scanned", "db.rows_pruned"];

/// Builds a small benchmark knowledge base and runs one planned query whose
/// shape exercises an index seek, a pushed-down filter, and an index-probe
/// join — so the `db.*` spans and counters CI asserts on are all live.
fn knowledge_segment() -> Result<(), String> {
    use easytime_db::knowledge::{
        create_knowledge_schema, insert_dataset, insert_method, insert_result, DatasetRow,
        MethodRow, ResultRow,
    };
    let _sp = easytime::obs::span("smoke.knowledge");
    let mut db = easytime_db::Database::new();
    create_knowledge_schema(&mut db).map_err(|e| e.to_string())?;
    for (id, domain, trend) in [("web_01", "web", 0.8), ("eco_01", "economic", 0.2)] {
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: id.into(),
                domain: domain.into(),
                length: 400,
                frequency: "daily".into(),
                channels: 1,
                seasonality: 0.5,
                trend,
                transition: 0.1,
                shifting: 0.2,
                stationarity: 0.3,
                correlation: 0.0,
                period: 7,
            },
        )
        .map_err(|e| e.to_string())?;
    }
    for name in ["naive", "theta"] {
        insert_method(
            &mut db,
            &MethodRow { name: name.into(), family: "statistical".into(), description: name.into() },
        )
        .map_err(|e| e.to_string())?;
    }
    for (d, m, h, mae) in [
        ("web_01", "naive", 24, 3.0),
        ("web_01", "theta", 24, 2.0),
        ("web_01", "theta", 96, 4.0),
        ("eco_01", "naive", 96, 1.0),
        ("eco_01", "theta", 96, 1.5),
    ] {
        insert_result(
            &mut db,
            &ResultRow {
                dataset_id: d.into(),
                method: m.into(),
                strategy: "rolling".into(),
                horizon: h,
                mae: Some(mae),
                mse: Some(mae * mae),
                rmse: Some(mae),
                smape: Some(mae * 10.0),
                mase: Some(mae / 2.0),
                r2: None,
                runtime_ms: 1.0,
                windows: 4,
            },
        )
        .map_err(|e| e.to_string())?;
    }
    let (result, plan) = db
        .query_with_plan(
            "SELECT r.method, AVG(r.mae) AS m FROM results r \
             JOIN datasets d ON r.dataset_id = d.id \
             WHERE r.method = 'theta' AND r.horizon >= 90 \
             GROUP BY r.method ORDER BY m",
        )
        .map_err(|e| e.to_string())?;
    if result.rows.len() != 1 {
        return Err(format!("knowledge query returned {} rows, expected 1", result.rows.len()));
    }
    if !plan.contains("index-seek") {
        return Err(format!("knowledge query plan did not use an index seek:\n{plan}"));
    }
    Ok(())
}

fn fail(msg: &str) -> ExitCode {
    // lint: allow(print) — CI diagnostic output from a binary
    eprintln!("obs_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    easytime::obs::set_enabled(true);
    easytime::obs::reset();

    let root_id;
    {
        let mut root = easytime::obs::span("smoke.run");
        root.attr("purpose", "ci traced smoke evaluation");
        root_id = root.id().unwrap_or(0);

        let corpus = {
            let _sp = easytime::obs::span("smoke.build_corpus");
            experiment_corpus(1, 160, 7)
        };
        let config = EvalConfig {
            methods: fast_zoo(),
            strategy: Strategy::Fixed { horizon: 12 },
            ..EvalConfig::default()
        };
        easytime::obs::manifest_set("seed", 7_u64);
        easytime::obs::manifest_set("run", "obs_smoke");
        let registry = MetricRegistry::standard();
        let config = match config.into_validated(&registry) {
            Ok(c) => c,
            Err(e) => return fail(&format!("config validation failed: {e}")),
        };
        match evaluate_corpus(&corpus, &config, &registry) {
            Ok(records) => {
                easytime::obs::manifest_set("records", records.len() as u64);
            }
            Err(e) => return fail(&format!("evaluate_corpus failed: {e}")),
        }
        if let Err(e) = knowledge_segment() {
            return fail(&format!("knowledge segment failed: {e}"));
        }
    }

    let data = easytime::obs::drain();
    let coverage = data.child_coverage(root_id);
    if coverage < 0.95 {
        return fail(&format!("span coverage {coverage:.3} below the 0.95 floor"));
    }

    let paths = match easytime::obs::write_files(std::path::Path::new("results"), &data) {
        Ok(p) => p,
        Err(e) => return fail(&format!("writing results failed: {e}")),
    };

    // Validate the flushed metrics.json from disk, exactly as a consumer
    // would see it.
    let text = match std::fs::read_to_string(&paths.metrics) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {} failed: {e}", paths.metrics.display())),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("metrics.json is not valid JSON: {}", e.message)),
    };
    if doc.get("schema_version").and_then(Json::as_usize) != Some(2) {
        return fail("metrics.json schema_version != 2");
    }
    let Some(stages) = doc.get("stages") else {
        return fail("missing \"stages\" section");
    };
    for name in EXPECTED_STAGES {
        let Some(stage) = stages.get(name) else {
            return fail(&format!("missing stage {name:?}"));
        };
        for field in ["count", "total_ns", "min_ns", "max_ns"] {
            if stage.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!("stage {name:?} missing numeric field {field:?}"));
            }
        }
        if stage.get("count").and_then(Json::as_usize) == Some(0) {
            return fail(&format!("stage {name:?} recorded zero spans"));
        }
    }
    let Some(counters) = doc.get("counters") else {
        return fail("missing \"counters\" section");
    };
    let Json::Object(counter_map) = counters else {
        return fail("\"counters\" is not an object");
    };
    if !counter_map.keys().any(|k| k.starts_with("models.fit.")) {
        return fail("no models.fit.* counters recorded");
    }
    for name in EXPECTED_DB_COUNTERS {
        if counter_map.get(name).and_then(Json::as_f64).is_none_or(|v| v <= 0.0) {
            return fail(&format!("counter {name:?} missing or zero"));
        }
    }
    // Plan-span coverage: every planned query records exactly one db.plan
    // span under its db.query span.
    let span_count = |stage: &str| {
        stages.get(stage).and_then(|s| s.get("count")).and_then(Json::as_usize)
    };
    if span_count("db.plan") != span_count("db.query") {
        return fail(&format!(
            "db.plan spans ({:?}) != db.query spans ({:?}): a query ran unplanned",
            span_count("db.plan"),
            span_count("db.query")
        ));
    }
    let Some(manifest) = doc.get("manifest") else {
        return fail("missing \"manifest\" section");
    };
    for key in ["seed", "run", "config_hash", "dataset_ids", "methods", "workers"] {
        if manifest.get(key).is_none() {
            return fail(&format!("manifest missing {key:?}"));
        }
    }

    // Validate the flushed PROFILE.json the same way: schema pin, stage
    // fields, and the attribution invariants the design promises.
    let text = match std::fs::read_to_string(&paths.profile) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {} failed: {e}", paths.profile.display())),
    };
    let profile = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("PROFILE.json is not valid JSON: {}", e.message)),
    };
    let want = easytime_obs::PROFILE_SCHEMA_VERSION as usize;
    if profile.get("schema_version").and_then(Json::as_usize) != Some(want) {
        return fail(&format!("PROFILE.json schema_version != {want}"));
    }
    let (Some(total_ns), Some(self_total_ns)) = (
        profile.get("total_ns").and_then(Json::as_f64),
        profile.get("self_total_ns").and_then(Json::as_f64),
    ) else {
        return fail("PROFILE.json missing total_ns/self_total_ns");
    };
    // Exact partition: children are sequential same-thread scopes under a
    // monotonic clock, so self times sum to the root totals without loss.
    if total_ns != self_total_ns {
        return fail(&format!(
            "self-time partition broken: self_total_ns {self_total_ns} != total_ns {total_ns}"
        ));
    }
    let Some(stages) = profile.get("stages") else {
        return fail("PROFILE.json missing \"stages\" section");
    };
    let mut self_sum = 0.0;
    let Json::Object(stage_map) = stages else {
        return fail("PROFILE.json \"stages\" is not an object");
    };
    for (name, stage) in stage_map {
        for field in ["count", "total_ns", "self_ns", "min_ns", "max_ns", "allocs", "alloc_bytes"]
        {
            if stage.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!(
                    "PROFILE.json stage {name:?} missing numeric field {field:?}"
                ));
            }
        }
        for field in ["p50_ns", "p90_ns", "p95_ns", "p99_ns", "allocs_per_span"] {
            if stage.get(field).is_none() {
                return fail(&format!("PROFILE.json stage {name:?} missing field {field:?}"));
            }
        }
        self_sum += stage.get("self_ns").and_then(Json::as_f64).unwrap_or(f64::NAN);
    }
    if self_sum != total_ns {
        return fail(&format!(
            "stage self times sum to {self_sum}, expected total_ns {total_ns}"
        ));
    }
    let Some(root_stage) = stage_map.get("smoke.run") else {
        return fail("PROFILE.json missing the smoke.run stage");
    };
    let root_self = root_stage.get("self_ns").and_then(Json::as_f64).unwrap_or(f64::NAN);
    let root_total = root_stage.get("total_ns").and_then(Json::as_f64).unwrap_or(f64::NAN);
    if !(root_self <= 0.05 * root_total) {
        return fail(&format!(
            "smoke.run self time {root_self} exceeds 5% of its total {root_total}; \
             <95% of the run is attributed to named child stages"
        ));
    }
    if profile.get("flame").and_then(|f| f.get("smoke.run;smoke.build_corpus")).is_none() {
        return fail("PROFILE.json flame section is missing the smoke.run;smoke.build_corpus stack");
    }

    // lint: allow(print) — CI status output from a binary
    println!(
        "obs_smoke: OK (coverage {coverage:.3}, root self {:.1}%, {} spans, {} stages, \
         {} counters) -> {}",
        100.0 * root_self / root_total,
        data.spans.len(),
        stage_map.len(),
        counter_map.len(),
        paths.metrics.display()
    );
    ExitCode::SUCCESS
}
