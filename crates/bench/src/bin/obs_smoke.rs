//! Traced smoke evaluation for CI.
//!
//! Forces tracing on, runs a small `evaluate_corpus` under a root span,
//! flushes `results/trace.jsonl` + `results/metrics.json`, then re-reads
//! the metrics file and validates the schema: version pin, expected stage
//! keys, model-fit counters, and the ≥95% span coverage acceptance check.
//! Any drift exits nonzero so `scripts/ci.sh` fails loudly.

use easytime::json::Json;
use easytime::{EvalConfig, MetricRegistry, Strategy};
use easytime_bench::{experiment_corpus, fast_zoo};
use easytime_eval::evaluate_corpus;
use std::process::ExitCode;

/// Stages the traced evaluation must produce (schema contract with CI).
const EXPECTED_STAGES: [&str; 4] =
    ["eval.corpus", "eval.evaluate", "eval.run_windows", "eval.window"];

fn fail(msg: &str) -> ExitCode {
    // lint: allow(print) — CI diagnostic output from a binary
    eprintln!("obs_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    easytime::obs::set_enabled(true);
    easytime::obs::reset();

    let root_id;
    {
        let mut root = easytime::obs::span("smoke.run");
        root.attr("purpose", "ci traced smoke evaluation");
        root_id = root.id().unwrap_or(0);

        let corpus = {
            let _sp = easytime::obs::span("smoke.build_corpus");
            experiment_corpus(1, 160, 7)
        };
        let config = EvalConfig {
            methods: fast_zoo(),
            strategy: Strategy::Fixed { horizon: 12 },
            ..EvalConfig::default()
        };
        easytime::obs::manifest_set("seed", 7_u64);
        easytime::obs::manifest_set("run", "obs_smoke");
        let registry = MetricRegistry::standard();
        let config = match config.into_validated(&registry) {
            Ok(c) => c,
            Err(e) => return fail(&format!("config validation failed: {e}")),
        };
        match evaluate_corpus(&corpus, &config, &registry) {
            Ok(records) => {
                easytime::obs::manifest_set("records", records.len() as u64);
            }
            Err(e) => return fail(&format!("evaluate_corpus failed: {e}")),
        }
    }

    let data = easytime::obs::drain();
    let coverage = data.child_coverage(root_id);
    if coverage < 0.95 {
        return fail(&format!("span coverage {coverage:.3} below the 0.95 floor"));
    }

    let paths = match easytime::obs::write_files(std::path::Path::new("results"), &data) {
        Ok(p) => p,
        Err(e) => return fail(&format!("writing results failed: {e}")),
    };

    // Validate the flushed metrics.json from disk, exactly as a consumer
    // would see it.
    let text = match std::fs::read_to_string(&paths.metrics) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {} failed: {e}", paths.metrics.display())),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("metrics.json is not valid JSON: {}", e.message)),
    };
    if doc.get("schema_version").and_then(Json::as_usize) != Some(1) {
        return fail("schema_version != 1");
    }
    let Some(stages) = doc.get("stages") else {
        return fail("missing \"stages\" section");
    };
    for name in EXPECTED_STAGES {
        let Some(stage) = stages.get(name) else {
            return fail(&format!("missing stage {name:?}"));
        };
        for field in ["count", "total_ns", "min_ns", "max_ns"] {
            if stage.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!("stage {name:?} missing numeric field {field:?}"));
            }
        }
        if stage.get("count").and_then(Json::as_usize) == Some(0) {
            return fail(&format!("stage {name:?} recorded zero spans"));
        }
    }
    let Some(counters) = doc.get("counters") else {
        return fail("missing \"counters\" section");
    };
    let Json::Object(counter_map) = counters else {
        return fail("\"counters\" is not an object");
    };
    if !counter_map.keys().any(|k| k.starts_with("models.fit.")) {
        return fail("no models.fit.* counters recorded");
    }
    let Some(manifest) = doc.get("manifest") else {
        return fail("missing \"manifest\" section");
    };
    for key in ["seed", "run", "config_hash", "dataset_ids", "methods", "workers"] {
        if manifest.get(key).is_none() {
            return fail(&format!("manifest missing {key:?}"));
        }
    }

    // lint: allow(print) — CI status output from a binary
    println!(
        "obs_smoke: OK (coverage {coverage:.3}, {} spans, {} counters) -> {}",
        data.spans.len(),
        counter_map.len(),
        paths.metrics.display()
    );
    ExitCode::SUCCESS
}
