//! Experiment E11 — cost-based query planning on the benchmark knowledge
//! base.
//!
//! Builds a large seeded knowledge base (≥1M `results` rows in full mode),
//! then times the planned executor against the naive full-scan oracle on
//! the query shapes the Q&A module generates: an indexed point lookup, an
//! indexed range aggregate, an index-probe join, a sort-elided GROUP BY,
//! and a sort-elided ORDER BY … LIMIT. Every timed query is first checked
//! bit-identical between the two paths, and every explain is checked
//! byte-stable across calls.
//!
//! Writes `results/BENCH_db.json` (the `speedups` object is auto-gated by
//! `perf_report` as higher-is-better) and exits nonzero if the planner
//! misses its speedup floors or drops the expected plan shapes.
//! `EASYTIME_BENCH_FAST=1` shrinks the knowledge base.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_db
//! ```

use easytime_bench::print_table;
use easytime_db::knowledge::{
    create_knowledge_schema, insert_dataset, insert_result, DatasetRow, ResultRow,
};
use easytime_db::schema::{Column, ColumnType, Schema};
use easytime_db::{Database, QueryResult, Value};
use easytime_rng::StdRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const DOMAINS: [&str; 8] =
    ["web", "economic", "traffic", "energy", "health", "nature", "cloud", "finance"];

struct Case {
    name: &'static str,
    sql: String,
    /// Scan oracle runs against this table's query (the join case uses the
    /// `sample` sub-table so the naive cross product stays timeable).
    planner_s: f64,
    scan_s: f64,
    rows: usize,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.scan_s / self.planner_s
    }
}

/// Best per-execution seconds over `rounds` timed rounds of `reps`
/// executions, plus the last result.
fn best_secs<F: FnMut() -> QueryResult>(
    reps: usize,
    rounds: usize,
    mut f: F,
) -> (f64, QueryResult) {
    let mut out = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let started = Instant::now();
        for _ in 0..reps {
            out = f();
        }
        best = best.min(started.elapsed().as_secs_f64() / reps as f64);
    }
    black_box(&out);
    (best, out)
}

/// Canonical rendering with exact float bits (NaN-safe bit-identity).
fn canon(r: &QueryResult) -> String {
    let mut s = String::new();
    writeln!(s, "{:?}", r.columns).unwrap();
    for row in &r.rows {
        for v in row {
            match v {
                Value::Float(f) => write!(s, "F{:016x};", f.to_bits()).unwrap(),
                other => write!(s, "{other:?};").unwrap(),
            }
        }
        s.push('\n');
    }
    s
}

fn build_kb(fast: bool) -> (Database, usize, usize, usize) {
    let mut rng = StdRng::seed_from_u64(0xE11_DB);
    let mut db = Database::new();
    create_knowledge_schema(&mut db).expect("fresh database accepts the knowledge schema");
    // The naive-join sub-table: same join key, small enough that the scan
    // oracle's cross product stays timeable.
    db.create_table(
        "sample",
        Schema::new(vec![
            Column::new("dataset_id", ColumnType::Text),
            Column::new("method", ColumnType::Text),
            Column::new("horizon", ColumnType::Int),
            Column::new("mae", ColumnType::Float),
        ]),
    )
    .expect("sample table name is free");

    let (n_datasets, n_methods) = if fast { (600, 16) } else { (8_068, 32) };
    let horizons: [i64; 2] = [24, 96];
    let strategies: [&str; 2] = ["fixed", "rolling"];
    let mut ids = Vec::with_capacity(n_datasets);
    for i in 0..n_datasets {
        let domain = DOMAINS[i % DOMAINS.len()];
        let id = format!("{domain}_{i:05}");
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: id.clone(),
                domain: domain.into(),
                length: 400 + (i as i64 % 1600),
                frequency: "daily".into(),
                channels: 1 + (i as i64 % 7),
                seasonality: rng.gen_range_f64(0.0, 1.0),
                trend: rng.gen_range_f64(0.0, 1.0),
                transition: rng.gen_range_f64(0.0, 1.0),
                shifting: rng.gen_range_f64(0.0, 1.0),
                stationarity: rng.gen_range_f64(0.0, 1.0),
                correlation: rng.gen_range_f64(0.0, 1.0),
                period: 7,
            },
        )
        .expect("dataset row matches the schema");
        ids.push(id);
    }

    let total = n_datasets * n_methods * horizons.len() * strategies.len();
    let sample_target = if fast { 8_000 } else { 12_000 };
    let sample_every = (total / sample_target).max(1);
    let (mut results_rows, mut sample_rows) = (0usize, 0usize);
    for id in &ids {
        for m in 0..n_methods {
            let method = format!("m{m:02}");
            for &horizon in &horizons {
                for strategy in strategies {
                    let mae = rng.gen_range_f64(0.1, 9.0);
                    insert_result(
                        &mut db,
                        &ResultRow {
                            dataset_id: id.clone(),
                            method: method.clone(),
                            strategy: strategy.into(),
                            horizon,
                            mae: Some(mae),
                            mse: Some(mae * mae),
                            rmse: Some(mae * 0.9),
                            smape: Some(mae * 8.0),
                            mase: Some(mae / 2.0),
                            r2: Some(1.0 - mae / 10.0),
                            runtime_ms: rng.gen_range_f64(0.2, 50.0),
                            windows: 4,
                        },
                    )
                    .expect("result row matches the schema");
                    results_rows += 1;
                    if results_rows % sample_every == 0 {
                        db.insert_row(
                            "sample",
                            vec![
                                Value::Text(id.clone()),
                                Value::Text(method.clone()),
                                Value::Int(horizon),
                                Value::Float(mae),
                            ],
                        )
                        .expect("sample row matches the schema");
                        sample_rows += 1;
                    }
                }
            }
        }
    }
    (db, n_datasets, results_rows, sample_rows)
}

fn main() {
    let fast = std::env::var_os("EASYTIME_BENCH_FAST").is_some_and(|v| v != "0");
    println!("E11 query planning{}\n", if fast { " [fast mode]" } else { "" });

    let built = Instant::now();
    let (db, n_datasets, results_rows, sample_rows) = build_kb(fast);
    println!(
        "knowledge base: {n_datasets} datasets, {results_rows} results, \
         {sample_rows} sample rows (built in {:.1}s)\n",
        built.elapsed().as_secs_f64()
    );

    let point_id = format!("{}_{:05}", DOMAINS[17 % DOMAINS.len()], 17);
    let queries: [(&'static str, String, &'static str); 5] = [
        (
            "point",
            format!(
                "SELECT method, mae, rmse FROM results \
                 WHERE dataset_id = '{point_id}' AND horizon = 96 ORDER BY method"
            ),
            "index-seek ix_results_dataset",
        ),
        (
            "range",
            "SELECT COUNT(*), AVG(mae) FROM results WHERE mae <= 0.2".into(),
            "index-seek ix_results_mae",
        ),
        (
            "join",
            "SELECT s.method, COUNT(*) AS n FROM sample s \
             JOIN datasets d ON s.dataset_id = d.id \
             WHERE d.domain = 'web' GROUP BY s.method ORDER BY n DESC, s.method"
                .into(),
            "index-probe ix_datasets_id",
        ),
        (
            "group",
            "SELECT method, COUNT(*) AS n, AVG(mae) AS m FROM results \
             GROUP BY method ORDER BY method"
                .into(),
            "sort elided",
        ),
        (
            "ordered_limit",
            "SELECT dataset_id, method, mae FROM results ORDER BY mae LIMIT 10".into(),
            "sort elided",
        ),
    ];

    let mut cases: Vec<Case> = Vec::new();
    for (name, sql, want_plan) in queries {
        // Correctness + plan shape first, timing second.
        let explain = db.explain(&sql).expect("query plans");
        if db.explain(&sql).expect("query plans") != explain {
            eprintln!("FAIL: {name}: explain not byte-stable across calls");
            std::process::exit(1);
        }
        if !explain.contains(want_plan) {
            eprintln!("FAIL: {name}: plan lost its {want_plan:?} shape:\n{explain}");
            std::process::exit(1);
        }
        let planned = db.query(&sql).expect("planned query runs");
        let scanned = db.query_scan(&sql).expect("scan query runs");
        if canon(&planned) != canon(&scanned) {
            eprintln!("FAIL: {name}: planner result diverged from the scan oracle");
            std::process::exit(1);
        }

        let (planner_reps, scan_rounds) = match name {
            "join" => (if fast { 3 } else { 2 }, 1),
            _ => (if fast { 10 } else { 3 }, if fast { 3 } else { 2 }),
        };
        let (planner_s, planned) =
            best_secs(planner_reps, 3, || db.query(&sql).expect("planned query runs"));
        let (scan_s, _) = best_secs(1, scan_rounds, || {
            db.query_scan(&sql).expect("scan query runs")
        });
        println!("{name}: plan\n{explain}");
        cases.push(Case { name, sql, planner_s, scan_s, rows: planned.rows.len() });
    }

    let rows_out: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{}", c.rows),
                format!("{:.6}", c.planner_s),
                format!("{:.6}", c.scan_s),
                format!("{:.1}x", c.speedup()),
            ]
        })
        .collect();
    print_table(&["query", "rows", "planner s", "scan s", "speedup"], &rows_out);

    write_report(&cases, n_datasets, results_rows, sample_rows, fast);
    println!("\nwrote results/BENCH_db.json");
    println!(
        "Claim shape: on the {}-row knowledge base, indexed point/range queries \
         beat the full scan by >= {}x, the index-probe join by >= 2x, and \
         index-order GROUP BY / ORDER BY elide their sorts.",
        results_rows,
        if fast { 5 } else { 20 }
    );

    let floor = |name: &str| -> f64 {
        match name {
            "point" | "range" => {
                if fast {
                    5.0
                } else {
                    20.0
                }
            }
            "join" | "ordered_limit" => 2.0,
            // The grouped aggregate saves only the sort; it must simply not
            // regress below the scan path.
            _ => 0.5,
        }
    };
    let missed: Vec<String> = cases
        .iter()
        .filter(|c| !(c.speedup() >= floor(c.name)))
        .map(|c| format!("{} ({:.1}x < {:.1}x; {})", c.name, c.speedup(), floor(c.name), c.sql))
        .collect();
    if !missed.is_empty() {
        eprintln!("FAIL: planner below its speedup floor: {}", missed.join("; "));
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn write_report(
    cases: &[Case],
    n_datasets: usize,
    results_rows: usize,
    sample_rows: usize,
    fast: bool,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str("  \"kb\": {\n");
    out.push_str(&format!("    \"datasets_rows\": {n_datasets},\n"));
    out.push_str(&format!("    \"results_rows\": {results_rows},\n"));
    out.push_str(&format!("    \"sample_rows\": {sample_rows}\n"));
    out.push_str("  },\n");
    out.push_str("  \"queries\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"rows\": {}, \"planner_s\": {:.6}, \
             \"scan_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
            c.name,
            c.rows,
            c.planner_s,
            c.scan_s,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.2}{}\n",
            c.name,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_db.json", out))
    {
        eprintln!("FAIL: could not write results/BENCH_db.json: {e}");
        std::process::exit(1);
    }
}
