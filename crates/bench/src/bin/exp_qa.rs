//! Experiment E4 — natural-language Q&A accuracy (paper Fig. 3, Fig. 5, S3).
//!
//! Populates the knowledge base with real evaluation runs, then fires a
//! 35-question suite (plus out-of-scope prompts) at the Q&A module and measures:
//!
//! * parse rate (questions mapped to an intent),
//! * SQL validity (every generated statement passes verification and
//!   executes — the paper's two-step retrieval guarantee),
//! * execution accuracy (result rows match a hand-written ground-truth
//!   SQL query),
//! * rejection correctness on out-of-scope questions, and
//! * end-to-end latency.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_qa [--per-domain 3]
//! ```

use easytime::{CorpusConfig, EasyTime};
use easytime_bench::{arg_usize, print_table};
use std::time::Instant;

/// A suite entry: the NL question and a ground-truth SQL query whose
/// result the answer must match (None = only parse/verify is required).
struct Case {
    question: &'static str,
    truth_sql: Option<&'static str>,
}

fn suite() -> Vec<Case> {
    vec![
        // ---- the paper's own examples -------------------------------
        Case {
            question:
                "What are the top-8 methods (ordered by MAE) for long-term forecasting on all \
                 multivariate datasets with trends?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS mean_mae, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE r.horizon >= 96 AND d.multivariate = true AND d.trend >= 0.6 \
                 GROUP BY r.method ORDER BY mean_mae ASC LIMIT 8",
            ),
        },
        Case {
            question:
                "Which method is best for long term forecasting on time series with strong \
                 seasonality?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS mean_mae, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE r.horizon >= 96 AND d.seasonality >= 0.6 \
                 GROUP BY r.method ORDER BY mean_mae ASC LIMIT 1",
            ),
        },
        // ---- ranking variants ---------------------------------------
        Case {
            question: "top 5 methods by smape",
            truth_sql: Some(
                "SELECT r.method, AVG(r.smape) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id GROUP BY r.method ORDER BY s ASC LIMIT 5",
            ),
        },
        Case {
            question: "What are the top three methods by MASE on traffic data?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mase) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE d.domain = 'traffic' \
                 GROUP BY r.method ORDER BY s ASC LIMIT 3",
            ),
        },
        Case {
            question: "Best method for short-term forecasting by RMSE?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.rmse) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE r.horizon <= 24 \
                 GROUP BY r.method ORDER BY s ASC LIMIT 1",
            ),
        },
        Case {
            question: "top 4 methods by r2 on electricity datasets",
            truth_sql: Some(
                "SELECT r.method, AVG(r.r2) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE d.domain = 'electricity' \
                 GROUP BY r.method ORDER BY s DESC LIMIT 4",
            ),
        },
        Case {
            question: "Which methods perform best on non-stationary series? top 3 by mae",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE d.stationarity < 0.4 \
                 GROUP BY r.method ORDER BY s ASC LIMIT 3",
            ),
        },
        Case {
            question: "best 2 methods on datasets with shifting by smape",
            truth_sql: Some(
                "SELECT r.method, AVG(r.smape) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE d.shifting >= 0.6 \
                 GROUP BY r.method ORDER BY s ASC LIMIT 2",
            ),
        },
        Case {
            question: "top 3 statistical methods by mae",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id JOIN methods m ON r.method = m.name \
                 WHERE m.family = 'statistical' GROUP BY r.method ORDER BY s ASC LIMIT 3",
            ),
        },
        Case {
            question: "best machine learning method at horizon 24 by mae",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id JOIN methods m ON r.method = m.name \
                 WHERE r.horizon = 24 AND m.family = 'machine_learning' \
                 GROUP BY r.method ORDER BY s ASC LIMIT 1",
            ),
        },
        // ---- comparisons ---------------------------------------------
        Case {
            question: "Is theta better than naive by MAE?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.mae) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE r.method IN ('theta', 'naive') \
                 GROUP BY r.method ORDER BY s ASC",
            ),
        },
        Case {
            question: "compare seasonal naive and drift by smape on web data",
            truth_sql: Some(
                "SELECT r.method, AVG(r.smape) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id \
                 WHERE d.domain = 'web' AND r.method IN ('seasonal_naive', 'drift') \
                 GROUP BY r.method ORDER BY s ASC",
            ),
        },
        // ---- counts / lists / meta -----------------------------------
        Case {
            question: "How many datasets are in the benchmark?",
            truth_sql: Some("SELECT COUNT(*) AS n FROM datasets"),
        },
        Case {
            question: "How many multivariate datasets are there?",
            truth_sql: Some("SELECT COUNT(*) AS n FROM datasets WHERE multivariate = true"),
        },
        Case {
            question: "How many datasets have strong trends?",
            truth_sql: Some("SELECT COUNT(*) AS n FROM datasets WHERE trend >= 0.6"),
        },
        Case {
            question: "How many methods are registered?",
            truth_sql: Some("SELECT COUNT(*) AS n FROM methods"),
        },
        Case {
            question: "How many deep learning methods are there?",
            truth_sql: Some("SELECT COUNT(*) AS n FROM methods WHERE family = 'deep_learning'"),
        },
        Case {
            question: "Which domains does the benchmark cover?",
            truth_sql: Some(
                "SELECT domain, COUNT(*) AS n FROM datasets GROUP BY domain ORDER BY n DESC",
            ),
        },
        Case {
            question: "Tell me about theta",
            truth_sql: Some("SELECT name, family, description FROM methods WHERE name = 'theta'"),
        },
        Case {
            question: "What is seasonal naive?",
            truth_sql: Some(
                "SELECT name, family, description FROM methods WHERE name = 'seasonal_naive'",
            ),
        },
        // ---- runtime --------------------------------------------------
        Case {
            question: "What are the 3 fastest methods?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.runtime_ms) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id GROUP BY r.method ORDER BY s ASC LIMIT 3",
            ),
        },
        // ---- worst / profile intents -----------------------------------
        Case {
            question: "Which 3 methods struggle the most by smape?",
            truth_sql: Some(
                "SELECT r.method, AVG(r.smape) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id GROUP BY r.method ORDER BY s DESC LIMIT 3",
            ),
        },
        Case {
            question: "Where does theta perform best across domains?",
            truth_sql: Some(
                "SELECT d.domain, AVG(r.mae) AS s, COUNT(*) AS runs FROM results r \
                 JOIN datasets d ON r.dataset_id = d.id WHERE r.method = 'theta' \
                 GROUP BY d.domain ORDER BY s ASC",
            ),
        },
        Case { question: "what are the weakest performers on seasonal data?", truth_sql: None },
        Case { question: "per domain breakdown for seasonal naive by mase", truth_sql: None },
        // ---- paraphrases exercising the parser ------------------------
        Case { question: "rank the top ten methods by mean absolute error", truth_sql: None },
        Case { question: "which method wins on banking series?", truth_sql: None },
        Case { question: "best seasonal methods for monthly nature data", truth_sql: None },
        Case { question: "top 6 methods under rolling evaluation by mase", truth_sql: None },
        Case { question: "what method should I use for stock prices?", truth_sql: None },
        Case { question: "best performers on correlated multivariate datasets", truth_sql: None },
        Case { question: "top 2 methods by mse for health data", truth_sql: None },
        Case { question: "which methods are most accurate at horizon 48?", truth_sql: None },
        Case { question: "best univariate long-term method by smape", truth_sql: None },
        Case { question: "fastest statistical method", truth_sql: None },
    ]
}

/// Out-of-scope questions the module must *reject* rather than answer
/// arbitrarily.
const OUT_OF_SCOPE: &[&str] =
    &["sing me a song", "what's the weather tomorrow", "hello there", "2 + 2"];

fn main() {
    let per_domain = arg_usize("per-domain", 3);

    let platform = EasyTime::with_benchmark(&CorpusConfig {
        per_domain,
        length: 280,
        multivariate_per_domain: 1,
        channels: 3,
        seed: 13,
        ..CorpusConfig::default()
    })
    .expect("benchmark");
    for config in [
        r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "lag_ridge_16",
                        "dlinear_32", "gboost_12"],
            "strategy": {"type": "fixed", "horizon": 96}}"#,
        r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "lag_ridge_16",
                        "dlinear_32", "gboost_12"],
            "strategy": {"type": "fixed", "horizon": 24}}"#,
        r#"{"methods": ["naive", "seasonal_naive", "theta"],
            "strategy": {"type": "rolling", "horizon": 48, "stride": 48}}"#,
    ] {
        platform.one_click_json(config).expect("knowledge population");
    }
    let knowledge = platform.knowledge_snapshot();

    let cases = suite();
    println!("E4 Q&A accuracy: {} in-scope questions, {} out-of-scope\n", cases.len(), OUT_OF_SCOPE.len());

    let mut parsed = 0usize;
    let mut sql_ok = 0usize;
    let mut accurate = 0usize;
    let mut with_truth = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();

    for case in &cases {
        // Fresh session per question: the suite is single-turn.
        let mut session = platform.qa_session().expect("session");
        let started = Instant::now();
        match session.ask(case.question) {
            Ok(resp) => {
                parsed += 1;
                sql_ok += 1; // query() verified + executed successfully
                latencies.push(started.elapsed().as_secs_f64() * 1e3);
                if let Some(truth) = case.truth_sql {
                    with_truth += 1;
                    let expected = knowledge.query(truth).expect("ground-truth SQL is valid");
                    // Compare the (label, value) content, not column names.
                    let got: Vec<Vec<String>> = resp
                        .table
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|v| v.to_string()).collect())
                        .collect();
                    let want: Vec<Vec<String>> = expected
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|v| v.to_string()).collect())
                        .collect();
                    if got == want {
                        accurate += 1;
                    } else {
                        failures.push((
                            case.question.to_string(),
                            format!("rows {} vs expected {}", got.len(), want.len()),
                        ));
                    }
                }
            }
            Err(e) => failures.push((case.question.to_string(), e.to_string())),
        }
    }

    let mut rejected = 0usize;
    for q in OUT_OF_SCOPE {
        let mut session = platform.qa_session().expect("session");
        if session.ask(q).is_err() {
            rejected += 1;
        }
    }

    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    println!("── Results:");
    print_table(
        &["measure", "value"],
        &[
            vec!["questions parsed".into(), format!("{parsed}/{}", cases.len())],
            vec!["generated SQL verified & executed".into(), format!("{sql_ok}/{parsed}")],
            vec!["answers matching ground truth".into(), format!("{accurate}/{with_truth}")],
            vec!["out-of-scope correctly rejected".into(), format!("{rejected}/{}", OUT_OF_SCOPE.len())],
            vec!["mean end-to-end latency".into(), format!("{mean_latency:.2} ms")],
        ],
    );
    if !failures.is_empty() {
        println!("\nfailures:");
        for (q, why) in &failures {
            println!("  - {q}\n    {why}");
        }
    }
    println!("\nPaper claim shape: 100% of generated SQL passes verification; answers match the knowledge base.");
}
