//! CI perf-regression tracker.
//!
//! Flattens every numeric series in `results/PROFILE.json` and
//! `results/BENCH_*.json` into dotted names (`profile.stages.<name>.<field>`,
//! `rolling.speedups.<method>`, ...), compares them against the committed
//! baseline `scripts/perf-baseline.json`, appends one row to
//! `results/BENCH_trajectory.json`, and exits nonzero when a gated series
//! regressed.
//!
//! Gating policy (everything else is tracked but never fails the build):
//! - names ending `.speedup` or containing `.speedups.` are higher-is-better
//!   with a 40% band — these derive from wall-clock timing, so the band is
//!   wider than the design's 15% floor to absorb CI scheduler noise;
//! - names containing `allocs_per_span` are lower-is-better with the strict
//!   15% band (plus an absolute slack of 0.5 allocs) — allocation counts are
//!   deterministic, so drift there is a real regression.
//!
//! Flags:
//! - `--baseline PATH` — baseline file (default `scripts/perf-baseline.json`).
//! - `--results-dir DIR` — artifact directory (default `results`).
//! - `--write-perf-baseline` — regenerate the baseline from the current
//!   artifacts and exit (run after an intentional perf change).
//! - `--inject NAME=VALUE` — override one baseline entry in memory; CI uses
//!   this to prove the regression gate actually fails the build.
//! - `--no-trajectory` — skip appending the trajectory row.
//!
//! Trajectory rows are keyed by run index, not timestamps — the workspace
//! bans wall-clock reads outside the clock crate, and an index is all the
//! trend plot needs.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin perf_report
//! ```

use easytime::json::Json;
use easytime_bench::{arg, print_table};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How a series participates in the regression gate.
enum Gate {
    /// Timing-derived ratio: fail when current < baseline × (1 − tol).
    HigherBetter { tol: f64 },
    /// Deterministic count: fail when current > baseline × (1 + tol) + slack.
    LowerBetter { tol: f64, slack: f64 },
    /// Recorded in the baseline and trajectory, never gated.
    Track,
}

fn gate_for(name: &str) -> Gate {
    if name.ends_with(".speedup") || name.contains(".speedups.") {
        Gate::HigherBetter { tol: 0.40 }
    } else if name.contains("allocs_per_span") {
        Gate::LowerBetter { tol: 0.15, slack: 0.5 }
    } else {
        Gate::Track
    }
}

/// Recursively emits every finite number in `doc` as `prefix.path → value`.
fn flatten(doc: &Json, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match doc {
        Json::Number(v) => {
            if v.is_finite() {
                let _ = out.insert(prefix.to_string(), *v);
            }
        }
        Json::Object(map) => {
            for (k, v) in map {
                flatten(v, &format!("{prefix}.{k}"), out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}.{i}"), out);
            }
        }
        Json::Null | Json::Bool(_) | Json::String(_) => {}
    }
}

fn fail(msg: &str) -> ExitCode {
    // lint: allow(print) — CI diagnostic output from a binary
    eprintln!("perf_report: FAIL: {msg}");
    ExitCode::FAILURE
}

/// Loads and flattens one JSON artifact under `prefix`.
fn load_series(path: &Path, prefix: &str, out: &mut BTreeMap<String, f64>) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {} failed: {e}", path.display()))?;
    let doc = Json::parse(&text)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    flatten(&doc, prefix, out);
    Ok(())
}

/// The current run's series: PROFILE.json plus every BENCH_*.json except
/// the trajectory file itself, prefixed by file stem (minus `BENCH_`).
fn collect_current(results_dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let profile = results_dir.join("PROFILE.json");
    if !profile.is_file() {
        return Err(format!("{} missing — run exp_profile first", profile.display()));
    }
    load_series(&profile, "profile", &mut out)?;
    let entries = std::fs::read_dir(results_dir)
        .map_err(|e| format!("reading {} failed: {e}", results_dir.display()))?;
    let mut bench_files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("directory entry error: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && name != "BENCH_trajectory.json"
        {
            bench_files.push(entry.path());
        }
    }
    bench_files.sort();
    for path in &bench_files {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let prefix = stem.strip_prefix("BENCH_").unwrap_or(&stem).to_string();
        load_series(path, &prefix, &mut out)?;
    }
    Ok(out)
}

/// Renders a flat `name → value` map as a 2-space-indented JSON object.
fn render_flat(series: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in series.iter().enumerate() {
        out.push_str(&format!(
            "  \"{name}\": {value:?}{}\n",
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Appends one run row to `BENCH_trajectory.json`, preserving prior rows.
fn append_trajectory(
    path: &Path,
    gated: &BTreeMap<String, f64>,
    regressions: usize,
    total_series: usize,
) -> Result<usize, String> {
    let mut rows: Vec<String> = Vec::new();
    if path.is_file() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {} failed: {e}", path.display()))?;
        let doc = Json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        if let Some(runs) = doc.get("runs").and_then(Json::as_array) {
            rows.extend(runs.iter().map(std::string::ToString::to_string));
        }
    }
    let run = rows.len();
    let mut row = format!(
        "{{\"run\": {run}, \"series\": {total_series}, \"regressions\": {regressions}, \
         \"gated\": {{"
    );
    for (i, (name, value)) in gated.iter().enumerate() {
        row.push_str(&format!(
            "{}\"{name}\": {value:?}",
            if i > 0 { ", " } else { "" }
        ));
    }
    row.push_str("}}");
    rows.push(row);
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("    {r}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("writing {} failed: {e}", path.display()))?;
    Ok(run)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        PathBuf::from(arg("baseline").unwrap_or_else(|| "scripts/perf-baseline.json".into()));
    let results_dir = PathBuf::from(arg("results-dir").unwrap_or_else(|| "results".into()));
    let write_baseline = args.iter().any(|a| a == "--write-perf-baseline");
    let no_trajectory = args.iter().any(|a| a == "--no-trajectory");

    let current = match collect_current(&results_dir) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if current.is_empty() {
        return fail("no numeric series found in the artifacts");
    }

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, render_flat(&current)) {
            return fail(&format!("writing {} failed: {e}", baseline_path.display()));
        }
        // lint: allow(print) — CI status output from a binary
        println!(
            "perf_report: wrote {} ({} series)",
            baseline_path.display(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            return fail(&format!(
                "reading baseline {} failed: {e} (regenerate with --write-perf-baseline)",
                baseline_path.display()
            ))
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("baseline is not valid JSON: {e}")),
    };
    let mut baseline: BTreeMap<String, f64> = BTreeMap::new();
    flatten(&doc, "", &mut baseline);
    // flatten prefixes everything with "." when the prefix is empty.
    let mut baseline: BTreeMap<String, f64> = baseline
        .into_iter()
        .map(|(k, v)| (k.trim_start_matches('.').to_string(), v))
        .collect();

    // Injected overrides: `--inject name=value`, repeatable (CI self-test).
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == "--inject" {
            let Some((name, value)) = args[i + 1].split_once('=') else {
                return fail(&format!("--inject expects NAME=VALUE, got {:?}", args[i + 1]));
            };
            let Ok(value) = value.parse::<f64>() else {
                return fail(&format!("--inject value {value:?} is not a number"));
            };
            let _ = baseline.insert(name.to_string(), value);
        }
        i += 1;
    }

    let mut gated: BTreeMap<String, f64> = BTreeMap::new();
    let mut regressions: Vec<Vec<String>> = Vec::new();
    let mut new_series = 0usize;
    for (name, &value) in &current {
        let gate = gate_for(name);
        if matches!(gate, Gate::Track) {
            continue;
        }
        let _ = gated.insert(name.clone(), value);
        let Some(&base) = baseline.get(name) else {
            new_series += 1;
            continue;
        };
        let (regressed, bound) = match gate {
            Gate::HigherBetter { tol } => {
                let bound = base * (1.0 - tol);
                (base > 0.0 && value < bound, bound)
            }
            Gate::LowerBetter { tol, slack } => {
                let bound = base * (1.0 + tol) + slack;
                (value > bound, bound)
            }
            Gate::Track => (false, f64::NAN),
        };
        if regressed {
            regressions.push(vec![
                name.clone(),
                format!("{base:.3}"),
                format!("{value:.3}"),
                format!("{bound:.3}"),
            ]);
        }
    }
    let stale: Vec<&String> = baseline
        .keys()
        .filter(|k| !matches!(gate_for(k), Gate::Track) && !current.contains_key(*k))
        .collect();

    if !no_trajectory {
        match append_trajectory(
            &results_dir.join("BENCH_trajectory.json"),
            &gated,
            regressions.len(),
            current.len(),
        ) {
            // lint: allow(print) — CI status output from a binary
            Ok(run) => println!("perf_report: trajectory row {run} appended"),
            Err(e) => return fail(&e),
        }
    }

    // lint: allow(print) — CI status output from a binary
    println!(
        "perf_report: {} series ({} gated, {} new, {} stale baseline entries)",
        current.len(),
        gated.len(),
        new_series,
        stale.len()
    );
    for name in stale {
        // lint: allow(print) — CI status output from a binary
        println!("  note: baseline series {name} no longer produced");
    }
    if regressions.is_empty() {
        // lint: allow(print) — CI status output from a binary
        println!("perf_report: OK — no gated series regressed");
        return ExitCode::SUCCESS;
    }
    print_table(&["series", "baseline", "current", "allowed"], &regressions);
    fail(&format!("{} gated series regressed", regressions.len()))
}
