//! Experiment E6 — multivariate forecasting and the Correlation
//! characteristic (paper §II-A: 25 multivariate datasets; Correlation is
//! one of the six dataset characteristics the corpus is balanced on).
//!
//! Claim shape to reproduce: methods that exploit cross-channel structure
//! (VAR) beat channel-independent application of univariate methods on
//! *strongly correlated* multivariate data, while the advantage shrinks or
//! reverses when channels are (nearly) independent — which is exactly why
//! the benchmark needs Correlation as a first-class characteristic.
//!
//! ```sh
//! cargo run --release -p easytime-bench --bin exp_multivariate [--n 8]
//! ```

use easytime::{Domain, EvalConfig, Strategy};
use easytime_bench::{arg_usize, finite_mean, print_table};
use easytime_data::synthetic::{domain_spec, generate, generate_multivariate};
use easytime_data::{Frequency, MultiSeries};
use easytime_eval::{evaluate_multivariate, MetricRegistry};
use easytime_models::multivariate::MultiModelSpec;
use easytime_models::ModelSpec;

/// Builds a multivariate series with *independent* channels (each its own
/// seed), the contrast case to `generate_multivariate`'s shared factor.
fn independent_channels(domain: Domain, channels: usize, length: usize, seed: u64) -> MultiSeries {
    let spec = domain_spec(domain, 0, length);
    let names: Vec<String> = (0..channels).map(|c| format!("ch{c}")).collect();
    let data: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            generate("ch", &spec, seed.wrapping_add(1000 + c as u64))
                .expect("valid spec")
                .values()
                .to_vec()
        })
        .collect();
    MultiSeries::new("independent", names, data, spec.frequency)
        .unwrap_or_else(|_| panic!("independent channels are valid"))
}

fn lagged_coupled(length: usize, seed: u64) -> MultiSeries {
    // Channel 1 and 2 follow channel 0 with 1- and 2-step lags plus noise —
    // the cleanest cross-channel signal.
    let driver = generate("driver", &domain_spec(Domain::Traffic, 1, length), seed).unwrap();
    let d = driver.values();
    let mut state = seed | 1;
    let mut noise = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
    };
    let ch1: Vec<f64> = (0..length).map(|t| if t == 0 { d[0] } else { d[t - 1] } + noise()).collect();
    let ch2: Vec<f64> =
        (0..length).map(|t| if t < 2 { d[0] } else { d[t - 2] } + noise()).collect();
    MultiSeries::new(
        "coupled",
        vec!["driver".into(), "lag1".into(), "lag2".into()],
        vec![d.to_vec(), ch1, ch2],
        Frequency::Hourly,
    )
    .unwrap()
}

/// A regime generator: seed → multivariate dataset.
type RegimeGen = Box<dyn Fn(u64) -> MultiSeries>;

fn main() {
    let n = arg_usize("n", 8);
    let length = arg_usize("length", 400);
    let registry = MetricRegistry::standard();
    // Short horizons: cross-channel information (e.g. "the follower will
    // move where the driver just moved") is a one-to-few-step advantage;
    // long recursive horizons dilute it for every method alike.
    let config = EvalConfig {
        strategy: Strategy::Rolling { horizon: 2, stride: 12, max_windows: Some(8) },
        metrics: vec!["mae".into(), "smape".into()],
        ..EvalConfig::default()
    };
    let config = config.into_validated(&registry).expect("multivariate config is valid");
    let methods = [
        MultiModelSpec::Var { order: 4 },
        MultiModelSpec::PerChannel(ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 }),
        MultiModelSpec::PerChannel(ModelSpec::SeasonalNaive(None)),
        MultiModelSpec::PerChannel(ModelSpec::Naive),
    ];

    println!("E6 multivariate: {} datasets per regime, rolling h=2\n", n);
    let regimes: Vec<(&str, RegimeGen)> = vec![
        (
            "correlated (shared factor)",
            Box::new(move |seed| {
                generate_multivariate("mv", Domain::Traffic, 3, length, seed).unwrap()
            }),
        ),
        ("lag-coupled (driver + lags)", Box::new(move |seed| lagged_coupled(length, seed))),
        (
            "independent channels",
            Box::new(move |seed| independent_channels(Domain::Traffic, 3, length, seed)),
        ),
    ];

    for (regime, make) in &regimes {
        let mut rows = Vec::new();
        for spec in &methods {
            let mut maes = Vec::new();
            let mut smapes = Vec::new();
            for i in 0..n {
                let series = make(1000 + i as u64);
                let record =
                    evaluate_multivariate("mv", &series, spec, &config, &registry).unwrap();
                if record.is_ok() {
                    maes.push(record.score("mae"));
                    smapes.push(record.score("smape"));
                }
            }
            rows.push(vec![
                spec.name(),
                format!("{:.3}", finite_mean(&maes)),
                format!("{:.3}", finite_mean(&smapes)),
                maes.len().to_string(),
            ]);
        }
        println!("── {regime}:");
        print_table(&["method", "mean MAE", "mean sMAPE", "ok"], &rows);
        println!();
    }
    println!(
        "Claim shape: var_4 leads on lag-coupled data, is competitive on shared-factor data, \
         and loses its edge on independent channels."
    );
}
