//! Micro-bench: series embedding — the online-inference hot path of
//! the Automated Ensemble (Figure 2: "TS2Vec extracts features from X").

use easytime_bench::harness::{black_box, Harness};
use easytime_data::{Frequency, TimeSeries};
use easytime_repr::features::extract_features;
use easytime_repr::rocket::RocketEncoder;
use easytime_repr::{Embedder, EmbedderConfig};
use std::f64::consts::PI;

fn series(n: usize) -> TimeSeries {
    let values: Vec<f64> =
        (0..n).map(|t| 10.0 + 4.0 * (2.0 * PI * t as f64 / 24.0).sin() + (t as f64 * 0.01)).collect();
    TimeSeries::new("bench", values, Frequency::Hourly).unwrap()
}

fn bench_embedding(c: &mut Harness) {
    let s400 = series(400);
    let s2000 = series(2000);

    let rocket = RocketEncoder::new(96, 42);
    let mut group = c.benchmark_group("embedding");
    group.bench_function("rocket96_n400", |b| {
        b.iter(|| black_box(rocket.transform(s400.values())))
    });
    group.bench_function("rocket96_n2000", |b| {
        b.iter(|| black_box(rocket.transform(s2000.values())))
    });
    group.bench_function("stat_features_n400", |b| {
        b.iter(|| black_box(extract_features(s400.values(), Some(24))))
    });

    let mut embedder = Embedder::new(EmbedderConfig::default());
    let corpus: Vec<TimeSeries> = (0..20).map(|i| series(300 + i * 10)).collect();
    embedder.fit(&corpus);
    group.bench_function("full_embed_n400", |b| b.iter(|| black_box(embedder.embed(&s400))));
    group.finish();

    c.bench_function("embedder_fit_corpus20", |b| {
        b.iter(|| {
            let mut e = Embedder::new(EmbedderConfig::default());
            black_box(e.fit(&corpus))
        })
    });
}

fn main() {
    let mut c = Harness::new();
    bench_embedding(&mut c);
    c.finish();
}
