//! Micro-bench: the end-to-end one-click pipeline on a small corpus.

use easytime_bench::harness::{black_box, BatchSize, Harness};
use easytime::{CorpusConfig, Domain, EasyTime};
use easytime_bench::fast_zoo;
use easytime_data::synthetic::build_corpus;
use easytime_eval::{evaluate_corpus, EvalConfig, MetricRegistry, Strategy};

fn bench_pipeline(c: &mut Harness) {
    let corpus = build_corpus(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Web, Domain::Traffic],
        per_domain: 3,
        length: 240,
        ..CorpusConfig::default()
    })
    .unwrap();
    let registry = MetricRegistry::standard();

    c.bench_function("evaluate_corpus_9x8_fixed", |b| {
        let config = EvalConfig {
            methods: fast_zoo(),
            strategy: Strategy::Fixed { horizon: 24 },
            metrics: vec!["mae".into(), "smape".into()],
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        b.iter(|| black_box(evaluate_corpus(&corpus, &config, &registry).unwrap()))
    });

    c.bench_function("platform_one_click_json", |b| {
        b.iter_batched(
            || {
                EasyTime::with_benchmark(&CorpusConfig {
                    domains: vec![Domain::Nature],
                    per_domain: 3,
                    length: 200,
                    ..CorpusConfig::default()
                })
                .unwrap()
            },
            |platform| {
                black_box(
                    platform
                        .one_click_json(
                            r#"{"methods": ["naive", "seasonal_naive", "theta"],
                                "strategy": {"type": "fixed", "horizon": 12}}"#,
                        )
                        .unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("corpus_generation_30x240", |b| {
        b.iter(|| {
            black_box(
                build_corpus(&CorpusConfig {
                    domains: vec![Domain::Nature, Domain::Web, Domain::Traffic],
                    per_domain: 10,
                    length: 240,
                    ..CorpusConfig::default()
                })
                .unwrap(),
            )
        })
    });
}

fn main() {
    let mut c = Harness::new();
    bench_pipeline(&mut c);
    c.finish();
}
