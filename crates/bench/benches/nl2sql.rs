//! Micro-bench: NL2SQL parsing and the full Q&A turnaround.

use easytime_bench::harness::{black_box, BatchSize, Harness};
use easytime_db::knowledge::{
    create_knowledge_schema, insert_dataset, insert_method, insert_result, DatasetRow, MethodRow,
    ResultRow,
};
use easytime_db::Database;
use easytime_qa::nl2sql::{generate_sql, parse_question, Lexicon};
use easytime_qa::QaSession;

fn lexicon() -> Lexicon {
    Lexicon {
        methods: vec![
            "naive".into(),
            "seasonal_naive".into(),
            "theta".into(),
            "holt_winters".into(),
            "dlinear_32".into(),
        ],
        domains: vec!["traffic".into(), "web".into(), "economic".into(), "nature".into()],
    }
}

fn small_knowledge() -> Database {
    let mut db = Database::new();
    create_knowledge_schema(&mut db).unwrap();
    for d in 0..40 {
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: format!("d{d}"),
                domain: ["web", "traffic"][d % 2].into(),
                length: 300,
                frequency: "hourly".into(),
                channels: 1,
                seasonality: 0.7,
                trend: 0.5,
                transition: 0.1,
                shifting: 0.1,
                stationarity: 0.4,
                correlation: 0.0,
                period: 24,
            },
        )
        .unwrap();
        for m in ["naive", "theta", "dlinear_32"] {
            insert_result(
                &mut db,
                &ResultRow {
                    dataset_id: format!("d{d}"),
                    method: m.into(),
                    strategy: "fixed".into(),
                    horizon: 96,
                    mae: Some(1.0 + d as f64 / 40.0),
                    mse: None,
                    rmse: None,
                    smape: Some(10.0),
                    mase: Some(0.9),
                    r2: None,
                    runtime_ms: 1.0,
                    windows: 1,
                },
            )
            .unwrap();
        }
    }
    for m in ["naive", "theta", "dlinear_32"] {
        insert_method(
            &mut db,
            &MethodRow { name: m.into(), family: "statistical".into(), description: "x".into() },
        )
        .unwrap();
    }
    db
}

fn bench_nl2sql(c: &mut Harness) {
    let lex = lexicon();
    let question = "What are the top-8 methods (ordered by MAE) for long-term forecasting \
                    on all multivariate datasets with trends?";

    c.bench_function("nl2sql_parse", |b| {
        b.iter(|| black_box(parse_question(question, &lex).unwrap()))
    });
    let (intent, _) = parse_question(question, &lex).unwrap();
    c.bench_function("nl2sql_generate", |b| b.iter(|| black_box(generate_sql(&intent))));

    c.bench_function("qa_end_to_end", |b| {
        b.iter_batched(
            || QaSession::new(small_knowledge()).unwrap(),
            |mut session| black_box(session.ask("top 5 methods by mae on web data").unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn main() {
    let mut c = Harness::new();
    bench_nl2sql(&mut c);
    c.finish();
}
