//! Micro-bench: metric kernels on benchmark-scale windows.

use easytime_bench::harness::{black_box, Harness};
use easytime_eval::metrics::{mae, mase, mse, r2, rmse, smape, wape};
use easytime_eval::MetricContext;

fn bench_metrics(c: &mut Harness) {
    let actual: Vec<f64> = (0..1024).map(|t| 10.0 + (t as f64 * 0.1).sin() * 3.0).collect();
    let predicted: Vec<f64> = actual.iter().map(|v| v + 0.3).collect();
    let train: Vec<f64> = (0..4096).map(|t| 10.0 + (t as f64 * 0.1).sin() * 3.0).collect();
    let ctx = MetricContext::new(&actual, &predicted, &train, 24).unwrap();

    let mut group = c.benchmark_group("metrics");
    group.bench_function("mae_1k", |b| b.iter(|| black_box(mae(&ctx))));
    group.bench_function("mse_1k", |b| b.iter(|| black_box(mse(&ctx))));
    group.bench_function("rmse_1k", |b| b.iter(|| black_box(rmse(&ctx))));
    group.bench_function("smape_1k", |b| b.iter(|| black_box(smape(&ctx))));
    group.bench_function("wape_1k", |b| b.iter(|| black_box(wape(&ctx))));
    group.bench_function("mase_1k_train4k", |b| b.iter(|| black_box(mase(&ctx))));
    group.bench_function("r2_1k", |b| b.iter(|| black_box(r2(&ctx))));
    group.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_metrics(&mut c);
    c.finish();
}
