//! Micro-bench: fixed vs rolling strategy evaluation through the full
//! pipeline (split → scale → fit → forecast → metrics).

use easytime_bench::harness::{black_box, Harness};
use easytime_data::{Frequency, TimeSeries};
use easytime_eval::{evaluate, EvalConfig, MetricRegistry, Strategy};
use easytime_models::ModelSpec;
use std::f64::consts::PI;

fn series(n: usize) -> TimeSeries {
    let values: Vec<f64> =
        (0..n).map(|t| 10.0 + 4.0 * (2.0 * PI * t as f64 / 24.0).sin()).collect();
    TimeSeries::new("bench", values, Frequency::Hourly).unwrap()
}

fn bench_strategies(c: &mut Harness) {
    let registry = MetricRegistry::standard();
    let s = series(600);

    let mut group = c.benchmark_group("pipeline_strategies");
    group.bench_function("fixed_h24_theta", |b| {
        let config = EvalConfig {
            strategy: Strategy::Fixed { horizon: 24 },
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        b.iter(|| {
            black_box(
                evaluate("d", &s, &ModelSpec::Theta(None), &config, &registry).unwrap(),
            )
        })
    });
    group.bench_function("rolling_h24x5_theta", |b| {
        let config = EvalConfig {
            strategy: Strategy::Rolling { horizon: 24, stride: 24, max_windows: Some(5) },
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        b.iter(|| {
            black_box(
                evaluate("d", &s, &ModelSpec::Theta(None), &config, &registry).unwrap(),
            )
        })
    });
    group.bench_function("rolling_h24x5_seasonal_naive", |b| {
        let config = EvalConfig {
            strategy: Strategy::Rolling { horizon: 24, stride: 24, max_windows: Some(5) },
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        b.iter(|| {
            black_box(
                evaluate("d", &s, &ModelSpec::SeasonalNaive(None), &config, &registry)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_strategies(&mut c);
    c.finish();
}
