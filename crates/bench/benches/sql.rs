//! Micro-bench: the embedded SQL engine on knowledge-base-shaped data.

use easytime_bench::harness::{black_box, Harness};
use easytime_db::knowledge::{create_knowledge_schema, insert_dataset, insert_result, DatasetRow, ResultRow};
use easytime_db::Database;

/// Builds a knowledge base with `n_datasets × n_methods` result rows.
fn knowledge(n_datasets: usize, n_methods: usize) -> Database {
    let mut db = Database::new();
    create_knowledge_schema(&mut db).unwrap();
    for d in 0..n_datasets {
        insert_dataset(
            &mut db,
            &DatasetRow {
                id: format!("ds_{d:04}"),
                domain: ["web", "traffic", "nature", "stock"][d % 4].into(),
                length: 400,
                frequency: "hourly".into(),
                channels: if d % 5 == 0 { 3 } else { 1 },
                seasonality: (d % 10) as f64 / 10.0,
                trend: ((d * 3) % 10) as f64 / 10.0,
                transition: 0.1,
                shifting: 0.2,
                stationarity: 0.5,
                correlation: 0.0,
                period: 24,
            },
        )
        .unwrap();
        for m in 0..n_methods {
            insert_result(
                &mut db,
                &ResultRow {
                    dataset_id: format!("ds_{d:04}"),
                    method: format!("method_{m:02}"),
                    strategy: "fixed".into(),
                    horizon: if d % 2 == 0 { 24 } else { 96 },
                    mae: Some(1.0 + ((d * m) % 17) as f64 / 10.0),
                    mse: Some(2.0),
                    rmse: Some(1.4),
                    smape: Some(12.0),
                    mase: Some(0.9),
                    r2: Some(0.5),
                    runtime_ms: 1.0 + m as f64,
                    windows: 1,
                },
            )
            .unwrap();
        }
    }
    db
}

fn bench_sql(c: &mut Harness) {
    // 500 datasets × 20 methods = 10,000 result rows.
    let db = knowledge(500, 20);

    let mut group = c.benchmark_group("sql_10k_rows");
    group.bench_function("filter_scan", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT method, mae FROM results WHERE horizon = 96 AND mae < 1.5")
                    .unwrap(),
            )
        })
    });
    group.bench_function("group_by_aggregate", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "SELECT method, AVG(mae) AS m, COUNT(*) AS n FROM results \
                     GROUP BY method ORDER BY m LIMIT 8",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("join_filter_group", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "SELECT r.method, AVG(r.mae) AS m FROM results r \
                     JOIN datasets d ON r.dataset_id = d.id \
                     WHERE d.trend >= 0.6 AND r.horizon >= 96 \
                     GROUP BY r.method ORDER BY m LIMIT 8",
                )
                .unwrap(),
            )
        })
    });
    group.finish();

    c.bench_function("sql_parse_only", |b| {
        b.iter(|| {
            black_box(
                easytime_db::parser::parse(
                    "SELECT r.method, AVG(r.mae) AS m FROM results r \
                     JOIN datasets d ON r.dataset_id = d.id \
                     WHERE d.trend >= 0.6 GROUP BY r.method ORDER BY m LIMIT 8",
                )
                .unwrap(),
            )
        })
    });
}

fn main() {
    let mut c = Harness::new();
    bench_sql(&mut c);
    c.finish();
}
