//! Micro-bench: fit + forecast per model family on a 400-point series.

use easytime_bench::harness::{black_box, Harness};
use easytime_data::{Frequency, TimeSeries};
use easytime_models::{Forecaster, ModelSpec};
use std::f64::consts::PI;

fn series() -> TimeSeries {
    let values: Vec<f64> = (0..400)
        .map(|t| {
            20.0 + 0.05 * t as f64
                + 5.0 * (2.0 * PI * t as f64 / 24.0).sin()
                + ((t as f64 * 12.9898).sin() * 43758.5453).fract() * 0.5
        })
        .collect();
    TimeSeries::new("bench", values, Frequency::Hourly).unwrap()
}

fn bench_models(c: &mut Harness) {
    let train = series();
    let specs = [
        ModelSpec::Naive,
        ModelSpec::SeasonalNaive(None),
        ModelSpec::Ses(None),
        ModelSpec::Holt,
        ModelSpec::HoltWinters(None),
        ModelSpec::Theta(None),
        ModelSpec::ArAuto,
        ModelSpec::Arima(1, 1, 1),
        ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 },
        ModelSpec::DLinear { lookback: 32, kernel: 25 },
        ModelSpec::NLinear { lookback: 32 },
        ModelSpec::GradientBoost { lookback: 12, rounds: 60 },
    ];

    let mut group = c.benchmark_group("model_fit_forecast_h24");
    for spec in specs {
        group.bench_function(&spec.name(), |b| {
            b.iter(|| {
                let mut model = spec.build().unwrap();
                model.fit(&train).unwrap();
                black_box(model.forecast(24).unwrap())
            })
        });
    }
    group.finish();

    // Forecast-only cost for a fitted model (the online ensemble path).
    let mut fitted: Box<dyn Forecaster> =
        ModelSpec::LagRidge { lookback: 32, lambda: 1e-2 }.build().unwrap();
    fitted.fit(&train).unwrap();
    c.bench_function("forecast_only_lag_ridge_h96", |b| {
        b.iter(|| black_box(fitted.forecast(96).unwrap()))
    });
}

fn main() {
    let mut c = Harness::new();
    bench_models(&mut c);
    c.finish();
}
