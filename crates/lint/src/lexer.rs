//! A std-only Rust lexer for static analysis.
//!
//! Produces a token stream that *tiles* the input exactly: every byte of
//! the source belongs to exactly one token, tokens appear in source order,
//! and concatenating their spans reproduces the input verbatim. That
//! invariant is what lets rules reason about "the code" while never being
//! fooled by `.unwrap()` spelled inside a string literal or a comment —
//! and it is locked in by seeded property tests.
//!
//! The lexer is deliberately forgiving: it never fails. Malformed input
//! (unterminated strings or comments, stray punctuation, invalid escapes)
//! degrades into best-effort tokens rather than errors, because lint rules
//! must keep working on code that `rustc` itself would reject mid-edit.
//!
//! Handled Rust subtleties:
//!
//! * nested block comments (`/* /* */ */`) with doc-comment flavours;
//! * string, raw-string (`r#"…"#`), byte-string, and raw-byte-string
//!   literals, including hash-counted terminators;
//! * the lifetime-vs-char-literal ambiguity (`'a` vs `'a'` vs `'\n'`);
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`);
//! * numeric literals with fractions, exponents, radix prefixes, and type
//!   suffixes (`1_000`, `0xFF`, `2.5e-3`, `1f64`).

/// Doc-comment flavour of a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum Doc {
    /// A plain comment (`//`, `/* */`).
    None,
    /// An outer doc comment (`///`, `/** */`) — documents the next item.
    Outer,
    /// An inner doc comment (`//!`, `/*! */`) — documents the enclosing item.
    Inner,
}

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace.
    Whitespace,
    /// A line or block comment. `block` distinguishes `/* */` from `//`.
    Comment {
        /// True for `/* */`-style comments.
        block: bool,
        /// Doc-comment flavour.
        doc: Doc,
    },
    /// An identifier or keyword (keywords are not distinguished here).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// A numeric literal, including fraction/exponent/suffix.
    NumLit,
    /// A single punctuation character. Multi-character operators appear as
    /// adjacent `Punct` tokens; adjacency is checked via byte offsets.
    Punct,
}

/// One token: a kind plus a byte span and the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive); always a char boundary.
    pub start: usize,
    /// Byte offset one past the last byte (exclusive); a char boundary.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for whitespace and comments — tokens rules normally skip.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::Whitespace | TokenKind::Comment { .. })
    }
}

/// Internal cursor over the source's `char_indices`, so token boundaries
/// always land on UTF-8 char boundaries.
struct Cursor<'a> {
    src: &'a str,
    /// `(byte offset, char)` pairs.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    /// Current 1-based line.
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, chars: src.char_indices().collect(), pos: 0, line: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the current position (source length at EOF).
    fn offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(o, _)| o)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || !c.is_ascii()
}

/// Lexes `src` into a token stream that tiles the input exactly.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.at_end() {
        let start = cur.offset();
        let line = cur.line;
        let kind = next_kind(&mut cur);
        out.push(Token { kind, start, end: cur.offset(), line });
    }
    out
}

/// Consumes one token's worth of chars and returns its kind.
fn next_kind(cur: &mut Cursor<'_>) -> TokenKind {
    let Some(c) = cur.peek(0) else {
        return TokenKind::Whitespace;
    };
    if c.is_whitespace() {
        while cur.peek(0).is_some_and(char::is_whitespace) {
            cur.bump();
        }
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek(1) {
            Some('/') => return line_comment(cur),
            Some('*') => return block_comment(cur),
            _ => {
                cur.bump();
                return TokenKind::Punct;
            }
        }
    }
    if c == '"' {
        cur.bump();
        return string_body(cur, /* raw_hashes */ None);
    }
    // `r`/`b` may begin a raw string, byte string, byte char, or raw ident.
    if c == 'r' || c == 'b' {
        if let Some(kind) = raw_or_byte_prefix(cur, c) {
            return kind;
        }
    }
    if c == '\'' {
        return lifetime_or_char(cur);
    }
    if is_ident_start(c) {
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return number(cur);
    }
    cur.bump();
    TokenKind::Punct
}

fn line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    // `///…` outer doc, `//!…` inner doc, `////…` plain (rustc's rule).
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some('!'), _) => Doc::Inner,
        (Some('/'), Some('/')) => Doc::None,
        (Some('/'), _) => Doc::Outer,
        _ => Doc::None,
    };
    while cur.peek(0).is_some_and(|c| c != '\n') {
        cur.bump();
    }
    TokenKind::Comment { block: false, doc }
}

fn block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    // `/**…*/` outer doc, `/*!…*/` inner doc; `/**/` and `/***/` plain.
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some('!'), _) => Doc::Inner,
        (Some('*'), Some('*' | '/')) => Doc::None,
        (Some('*'), _) => Doc::Outer,
        _ => Doc::None,
    };
    cur.bump_n(2);
    let mut depth = 1usize;
    while !cur.at_end() && depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            _ => cur.bump(),
        }
    }
    TokenKind::Comment { block: true, doc }
}

/// Consumes a (possibly raw) string body. The opening quote is already
/// consumed. `raw_hashes = Some(n)` means a raw string terminated by
/// `"` + n `#`s with no escape processing; `None` means a normal string
/// with `\` escapes. Unterminated strings run to end of input.
fn string_body(cur: &mut Cursor<'_>, raw_hashes: Option<usize>) -> TokenKind {
    match raw_hashes {
        None => {
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    cur.bump_n(2);
                } else if c == '"' {
                    cur.bump();
                    break;
                } else {
                    cur.bump();
                }
            }
        }
        Some(hashes) => {
            while let Some(c) = cur.peek(0) {
                if c == '"' && (1..=hashes).all(|k| cur.peek(k) == Some('#')) {
                    cur.bump_n(1 + hashes);
                    break;
                }
                cur.bump();
            }
        }
    }
    TokenKind::StrLit
}

/// Disambiguates tokens starting with `r` or `b`: raw strings (`r"`,
/// `r#"`), byte strings (`b"`, `br#"`), byte chars (`b'x'`), and raw
/// identifiers (`r#name`). Returns `None` when the token is a plain
/// identifier beginning with that letter.
fn raw_or_byte_prefix(cur: &mut Cursor<'_>, first: char) -> Option<TokenKind> {
    // Byte char: b'x'.
    if first == 'b' && cur.peek(1) == Some('\'') {
        cur.bump(); // consume `b`; the quote handler does the rest
        cur.bump(); // opening quote
        return Some(char_body(cur));
    }
    // Candidate prefixes, longest first: br#*", b", r#*", r#ident.
    let raw_start = if first == 'b' && cur.peek(1) == Some('r') { 2 } else { 1 };
    if first == 'b' && raw_start == 1 {
        // b"…": byte string with escapes.
        if cur.peek(1) == Some('"') {
            cur.bump_n(2);
            return Some(string_body(cur, None));
        }
        return None;
    }
    // `r…` or `br…`: count hashes after the prefix.
    let mut hashes = 0;
    while cur.peek(raw_start + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(raw_start + hashes) == Some('"') {
        cur.bump_n(raw_start + hashes + 1);
        return Some(string_body(cur, Some(hashes)));
    }
    // Raw identifier r#name.
    if first == 'r'
        && raw_start == 1
        && hashes == 1
        && cur.peek(2).is_some_and(is_ident_start)
    {
        cur.bump_n(2);
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return Some(TokenKind::Ident);
    }
    None
}

/// Consumes a char-literal body after the opening quote; stops at the
/// closing quote, a newline (malformed literal), or end of input.
fn char_body(cur: &mut Cursor<'_>) -> TokenKind {
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump_n(2);
        } else if c == '\'' {
            cur.bump();
            break;
        } else if c == '\n' {
            break;
        } else {
            cur.bump();
        }
    }
    TokenKind::CharLit
}

/// `'…`: a lifetime (`'a`), a char literal (`'x'`, `'\n'`), or a stray
/// quote. The grammar rule mirrors rustc: a quote followed by exactly one
/// non-quote char and another quote is a char literal; a quote followed by
/// a backslash is a char literal; otherwise an ident-start char begins a
/// lifetime.
fn lifetime_or_char(cur: &mut Cursor<'_>) -> TokenKind {
    let next = cur.peek(1);
    let is_char = match next {
        Some('\\') => true,
        Some(c) => c != '\'' && cur.peek(2) == Some('\''),
        None => false,
    };
    if is_char {
        cur.bump();
        return char_body(cur);
    }
    if next.is_some_and(is_ident_start) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Lifetime;
    }
    cur.bump();
    TokenKind::Punct
}

/// Consumes a numeric literal: optional radix prefix, digits, optional
/// fraction, optional exponent, optional type suffix. `1.max(2)` lexes the
/// `1` alone (a dot followed by an identifier is a method call), while
/// `1.5`, `1.`, and `2.5e-3` stay single tokens.
fn number(cur: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefixed {
        cur.bump_n(2);
        while cur.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            cur.bump();
        }
        return TokenKind::NumLit;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // Fraction: `.` followed by a digit, or a trailing `.` that is not a
    // range (`1..2`) or a method call (`1.max(2)`).
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(c) if c.is_ascii_digit() => {
                cur.bump();
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    cur.bump();
                }
            }
            Some(c) if c == '.' || is_ident_start(c) => {}
            _ => cur.bump(),
        }
    }
    // Exponent: e/E, optional sign, at least one digit.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            cur.bump_n(digit_at);
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Type suffix (f64, u32, usize, …) glues onto the literal.
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::NumLit
}

/// True when a numeric-literal text denotes a float (fraction, exponent,
/// or an `f32`/`f64` suffix) — radix-prefixed literals are never floats.
pub(crate) fn num_is_float(text: &str) -> bool {
    let t = text.trim();
    if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0o") || t.starts_with("0b") {
        return false;
    }
    t.contains('.')
        || t.ends_with("f32")
        || t.ends_with("f64")
        || t.bytes().any(|b| b == b'e' || b == b'E')
}

/// Parses a float-literal text to its value, ignoring `_` separators and a
/// type suffix. Returns `None` for non-float or malformed text.
pub(crate) fn float_value(text: &str) -> Option<f64> {
    let mut t: String = text.chars().filter(|&c| c != '_').collect();
    for suffix in ["f32", "f64"] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            t = stripped.to_string();
            if t.is_empty() {
                return None;
            }
        }
    }
    t.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "gap before {t:?} in {src:?}");
            assert!(t.end >= t.start);
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens must cover {src:?}");
        let joined: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn tiles_basic_sources() {
        for src in [
            "",
            "fn main() { let x = 1; }",
            "let s = \"a \\\" b\"; // trailing",
            "/* nested /* deep */ still */ code",
            "r#\"raw with \" inside\"# b\"bytes\" br##\"double\"##",
            "'a 'static 'x' '\\n' b'q'",
            "1_000 0xFF_u8 2.5e-3 1. 1..2 1.max(2) 3f64",
            "emoji: \"🦀\" and idents_🦀",
            "unterminated \"string never closes",
            "unterminated /* comment never closes",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn strings_and_comments_are_single_tokens() {
        let ks = kinds("let s = \".unwrap()\"; // panic! here");
        let strs: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokenKind::StrLit).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].1, "\".unwrap()\"");
        let comments: Vec<_> = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Comment { .. }))
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].1.contains("panic!"));
    }

    #[test]
    fn raw_strings_and_raw_idents_disambiguate() {
        let ks = kinds("r#\"has .unwrap() inside\"#");
        assert_eq!(ks[0].0, TokenKind::StrLit);
        let ks = kinds("r#match");
        assert_eq!(ks[0], (TokenKind::Ident, "r#match".into()));
        let ks = kinds("br#\"bytes\"#");
        assert_eq!(ks[0].0, TokenKind::StrLit);
        let ks = kinds("rate");
        assert_eq!(ks[0], (TokenKind::Ident, "rate".into()));
        let ks = kinds("b\"escaped \\\" quote\"");
        assert_eq!(ks[0].0, TokenKind::StrLit);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("<'a>('x')('\\'')'static");
        let lifetimes: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].1, "'a");
        assert_eq!(lifetimes[1].1, "'static");
        let chars: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokenKind::CharLit).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "'\\''");
    }

    #[test]
    fn numbers_with_fractions_exponents_suffixes() {
        let ks = kinds("1.5 2.5e-3 1_000u64 0xFF 1. 1..2 1.max(2)");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5", "2.5e-3", "1_000u64", "0xFF", "1.", "1", "2", "1", "2"]);
        assert!(num_is_float("1.5"));
        assert!(num_is_float("2e9"));
        assert!(num_is_float("3f64"));
        assert!(!num_is_float("0xFF"));
        assert!(!num_is_float("1_000u64"));
        assert_eq!(float_value("0.0"), Some(0.0));
        assert_eq!(float_value("1_0.5f64"), Some(10.5));
    }

    #[test]
    fn doc_comment_flavours() {
        let src = "/// outer\n//! inner\n// plain\n//// plain too\n/** outer */ /*! inner */ /* plain */ /**/";
        let docs: Vec<Doc> = lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Comment { doc, .. } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(
            docs,
            vec![
                Doc::Outer,
                Doc::Inner,
                Doc::None,
                Doc::None,
                Doc::Outer,
                Doc::Inner,
                Doc::None,
                Doc::None,
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").copied();
        assert_eq!(b.map(|t| t.line), Some(6));
    }
}
