//! Workspace lint driver.
//!
//! ```text
//! easytime-lint [--format text|json] [--baseline PATH] [--write-baseline PATH]
//!               [--api-baseline PATH] [--write-api-baseline PATH]
//!               [--semantic-out PATH] [--effects-out PATH]
//!               [--severity CODE=LEVEL]... [--explain RULE] [--out PATH]
//! ```
//!
//! Phase 1 (per-file rules R1–R13) always runs; phases 2 and 3 (the
//! workspace model with semantic rules R15–R17 — plus R14 when
//! `--api-baseline` is given — and the effect rules R18–R20) run on the
//! same path-sorted source set. `--semantic-out` writes the semantic size
//! stats as JSON; `--effects-out` writes the closed per-function effect
//! table. Exits non-zero iff any non-baselined diagnostic has `error`
//! severity.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use easytime_lint::{
    analyze_workspace, api, apply_severities, collect_workspace_sources, diagnostics_to_json,
    lint_sources, model, rule_doc, semantic_stats_to_json, workspace_effect_table_json, Baseline,
    Severity,
};

enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    api_baseline: Option<PathBuf>,
    write_api_baseline: Option<PathBuf>,
    semantic_out: Option<PathBuf>,
    effects_out: Option<PathBuf>,
    out: Option<PathBuf>,
    severities: Vec<(String, Severity)>,
    explain: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        api_baseline: None,
        write_api_baseline: None,
        semantic_out: None,
        effects_out: None,
        out: None,
        severities: Vec::new(),
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value_for = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--format" => {
                opts.format = match value_for("--format", &mut args)?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (want text|json)")),
                };
            }
            "--baseline" => opts.baseline = Some(value_for("--baseline", &mut args)?.into()),
            "--write-baseline" => {
                opts.write_baseline = Some(value_for("--write-baseline", &mut args)?.into());
            }
            "--api-baseline" => {
                opts.api_baseline = Some(value_for("--api-baseline", &mut args)?.into());
            }
            "--write-api-baseline" => {
                opts.write_api_baseline =
                    Some(value_for("--write-api-baseline", &mut args)?.into());
            }
            "--semantic-out" => {
                opts.semantic_out = Some(value_for("--semantic-out", &mut args)?.into());
            }
            "--effects-out" => {
                opts.effects_out = Some(value_for("--effects-out", &mut args)?.into());
            }
            "--out" => opts.out = Some(value_for("--out", &mut args)?.into()),
            "--severity" => {
                let spec = value_for("--severity", &mut args)?;
                let (code, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--severity wants CODE=LEVEL, got `{spec}`"))?;
                let sev = Severity::parse(level)
                    .ok_or_else(|| format!("unknown severity `{level}` (want error|warn)"))?;
                opts.severities.push((code.to_string(), sev));
            }
            "--explain" => opts.explain = Some(value_for("--explain", &mut args)?),
            "--help" | "-h" => {
                println!(
                    "usage: easytime-lint [--format text|json] [--baseline PATH]\n\
                     \x20                    [--write-baseline PATH] [--api-baseline PATH]\n\
                     \x20                    [--write-api-baseline PATH] [--semantic-out PATH]\n\
                     \x20                    [--effects-out PATH] [--severity CODE=LEVEL]...\n\
                     \x20                    [--explain RULE] [--out PATH]"
                );
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Prints one rule's documentation from the shared [`easytime_lint::RULE_DOCS`]
/// table (the same source the README rule table is generated from).
fn explain(code: &str) -> ExitCode {
    let Some(doc) = rule_doc(code) else {
        eprintln!(
            "easytime-lint: no rule `{code}`; known rules: {}",
            easytime_lint::RULE_DOCS.iter().map(|d| d.code).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{} — {}", doc.code, doc.enforces);
    println!();
    println!("rationale: {}", doc.rationale);
    println!("scope:     {}", doc.scope);
    println!("hatch:     // lint: allow({}) — <written justification>", doc.allow);
    ExitCode::SUCCESS
}

fn workspace_root() -> PathBuf {
    // The crate lives at <root>/crates/lint, so the workspace root is two
    // levels up from the manifest dir baked in at compile time. Fall back to
    // the current directory for out-of-tree invocations of the raw binary.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e.is_empty() => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("easytime-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(code) = &opts.explain {
        return explain(code);
    }

    let root = workspace_root();
    let sources = match collect_workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("easytime-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let checked = sources.len();

    // Deliberate API-baseline regeneration: build the model, write the
    // snapshot, and stop — the R14 comparison would be vacuously clean.
    if let Some(path) = &opts.write_api_baseline {
        let ws = model::WorkspaceModel::build(&sources);
        let entries = api::api_entries(&ws);
        let content = api::render_api_baseline(&entries);
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("easytime-lint: cannot write API baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "easytime-lint: wrote API baseline with {} entries to {}",
            entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut diags = lint_sources(&sources);

    let api_text = match &opts.api_baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => Some((path.clone(), t)),
            Err(e) => {
                eprintln!("easytime-lint: cannot read API baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let api_ref = api_text
        .as_ref()
        .map(|(p, t)| (p.display().to_string(), t.as_str()));
    let (semantic_diags, stats) =
        analyze_workspace(&sources, api_ref.as_ref().map(|(p, t)| (p.as_str(), *t)));
    diags.extend(semantic_diags);
    diags.sort_by(|a, b| {
        (a.file.display().to_string(), a.line, a.rule.code(), a.message.as_str()).cmp(&(
            b.file.display().to_string(),
            b.line,
            b.rule.code(),
            b.message.as_str(),
        ))
    });
    apply_severities(&mut diags, &opts.severities);

    if let Some(path) = &opts.semantic_out {
        if let Err(e) = std::fs::write(path, semantic_stats_to_json(&stats)) {
            eprintln!("easytime-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.effects_out {
        if let Err(e) = std::fs::write(path, workspace_effect_table_json(&sources)) {
            eprintln!("easytime-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        let content = Baseline::render(&diags);
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("easytime-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "easytime-lint: wrote baseline with {} entr{} to {}",
            diags.len(),
            if diags.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut suppressed = 0;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("easytime-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (kept, n) = Baseline::parse(&text).apply(diags);
        diags = kept;
        suppressed = n;
    }

    let rendered = match opts.format {
        Format::Json => diagnostics_to_json(&diags),
        Format::Text => {
            let mut out = String::new();
            for d in &diags {
                out.push_str(&format!("{} [{}]\n", d, d.severity.as_str()));
            }
            out
        }
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("easytime-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }

    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warns = diags.len() - errors;
    eprintln!(
        "easytime-lint: checked {checked} files: {errors} error(s), {warns} warning(s), \
         {suppressed} baselined"
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
