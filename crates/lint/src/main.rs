//! `easytime-lint` — run the workspace invariant checks.
//!
//! Usage: `cargo run -p easytime-lint` (from anywhere in the workspace).
//! Prints `file:line: R# message` diagnostics and exits non-zero when any
//! violation is found.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The crate lives at <root>/crates/lint, so the workspace root is two
    // levels up from the manifest dir baked in at compile time. Fall back to
    // the current directory for out-of-tree invocations of the raw binary.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let root = workspace_root();
    let (mut diags, checked) = match easytime_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("easytime-lint: failed to scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    // The root manifest's [workspace.dependencies] is the chokepoint where
    // external crates would re-enter; lint it alongside the member manifests.
    match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(toml) => diags.extend(easytime_lint::lint_manifest(Path::new("Cargo.toml"), &toml)),
        Err(err) => {
            eprintln!("easytime-lint: failed to read root Cargo.toml: {err}");
            return ExitCode::FAILURE;
        }
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("easytime-lint: OK — {checked} files checked, 0 violations");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "easytime-lint: {} violation(s) across {checked} checked files",
            diags.len()
        );
        ExitCode::FAILURE
    }
}
