//! Workspace lint driver.
//!
//! ```text
//! easytime-lint [--format text|json] [--baseline PATH] [--write-baseline PATH]
//!               [--severity CODE=LEVEL]... [--out PATH]
//! ```
//!
//! Exits non-zero iff any non-baselined diagnostic has `error` severity.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use easytime_lint::{apply_severities, diagnostics_to_json, lint_workspace, Baseline, Severity};

enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    severities: Vec<(String, Severity)>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        out: None,
        severities: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value_for = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--format" => {
                opts.format = match value_for("--format", &mut args)?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (want text|json)")),
                };
            }
            "--baseline" => opts.baseline = Some(value_for("--baseline", &mut args)?.into()),
            "--write-baseline" => {
                opts.write_baseline = Some(value_for("--write-baseline", &mut args)?.into());
            }
            "--out" => opts.out = Some(value_for("--out", &mut args)?.into()),
            "--severity" => {
                let spec = value_for("--severity", &mut args)?;
                let (code, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--severity wants CODE=LEVEL, got `{spec}`"))?;
                let sev = Severity::parse(level)
                    .ok_or_else(|| format!("unknown severity `{level}` (want error|warn)"))?;
                opts.severities.push((code.to_string(), sev));
            }
            "--help" | "-h" => {
                println!(
                    "usage: easytime-lint [--format text|json] [--baseline PATH]\n\
                     \x20                    [--write-baseline PATH] [--severity CODE=LEVEL]...\n\
                     \x20                    [--out PATH]"
                );
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn workspace_root() -> PathBuf {
    // The crate lives at <root>/crates/lint, so the workspace root is two
    // levels up from the manifest dir baked in at compile time. Fall back to
    // the current directory for out-of-tree invocations of the raw binary.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e.is_empty() => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("easytime-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = workspace_root();
    let (mut diags, checked) = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("easytime-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    apply_severities(&mut diags, &opts.severities);

    if let Some(path) = &opts.write_baseline {
        let content = Baseline::render(&diags);
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("easytime-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "easytime-lint: wrote baseline with {} entr{} to {}",
            diags.len(),
            if diags.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut suppressed = 0;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("easytime-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (kept, n) = Baseline::parse(&text).apply(diags);
        diags = kept;
        suppressed = n;
    }

    let rendered = match opts.format {
        Format::Json => diagnostics_to_json(&diags),
        Format::Text => {
            let mut out = String::new();
            for d in &diags {
                out.push_str(&format!("{} [{}]\n", d, d.severity.as_str()));
            }
            out
        }
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("easytime-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }

    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warns = diags.len() - errors;
    eprintln!(
        "easytime-lint: checked {checked} files: {errors} error(s), {warns} warning(s), \
         {suppressed} baselined"
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
