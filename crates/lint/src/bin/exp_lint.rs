//! Experiment E-lint — linter throughput across all three phases.
//!
//! Times workspace discovery, the phase-1 per-file rules (R1–R13), the
//! phase-2+3 semantic analysis (model build, R14–R17, effect closure,
//! R18–R20), and effect-table serialization over the *real* workspace
//! tree, then writes `results/BENCH_lint.json`.
//!
//! The point of the budget gate is to keep the linter cheap enough to run
//! on every CI invocation: if a refactor makes any phase blow past the
//! generous wall-clock budget, this experiment exits nonzero and CI stops
//! the regression. `EASYTIME_BENCH_FAST=1` drops to a single repetition.
//!
//! ```sh
//! cargo run --release -p easytime-lint --bin exp_lint
//! ```

use easytime_lint::{
    analyze_workspace, collect_workspace_sources, lint_sources, workspace_effect_table_json,
};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Whole-run wall-clock budget in nanoseconds. Deliberately generous —
/// the gate exists to catch order-of-magnitude regressions (an accidental
/// quadratic fixpoint, re-lexing per rule), not scheduler jitter.
const BUDGET_NS: u128 = 20_000_000_000;

/// Best-of-`reps` wall time of one call to `f`, in nanoseconds.
fn time_best<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (T, u128) {
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = f();
        best = best.min(started.elapsed().as_nanos());
        last = Some(out);
    }
    (last.expect("reps >= 1"), best)
}

fn main() -> ExitCode {
    let fast = std::env::var("EASYTIME_BENCH_FAST").is_ok_and(|v| v != "0" && v != "false");
    let reps = if fast { 1 } else { 3 };
    let root = Path::new(".");

    let (sources, discover_ns) = time_best(reps, || match collect_workspace_sources(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_lint: cannot discover workspace sources: {e}");
            std::process::exit(2);
        }
    });
    let files = sources.len();
    let (phase1_diags, phase1_ns) = time_best(reps, || lint_sources(&sources));
    let ((semantic_diags, stats), semantic_ns) =
        time_best(reps, || analyze_workspace(&sources, None));
    let (effects_json, effects_ns) = time_best(reps, || workspace_effect_table_json(&sources));

    let total_ns = discover_ns + phase1_ns + semantic_ns + effects_ns;
    let files_per_sec = files as f64 / (total_ns as f64 / 1e9);

    println!("exp_lint: {files} files");
    println!("  discover  {:>12} ns", discover_ns);
    println!("  phase1    {:>12} ns  ({} findings)", phase1_ns, phase1_diags.len());
    println!(
        "  semantic  {:>12} ns  ({} findings, {} items, {} hot fns)",
        semantic_ns,
        semantic_diags.len(),
        stats.items,
        stats.hot_fns
    );
    println!("  effects   {:>12} ns  ({} bytes)", effects_ns, effects_json.len());
    println!("  total     {total_ns:>12} ns  ({files_per_sec:.1} files/s)");

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"fast_mode\": {fast},\n  \"files\": {files},\n  \
         \"phases\": {{\n    \"discover_ns\": {discover_ns},\n    \"phase1_ns\": {phase1_ns},\n    \
         \"semantic_ns\": {semantic_ns},\n    \"effects_json_ns\": {effects_ns}\n  }},\n  \
         \"total_ns\": {total_ns},\n  \"files_per_sec\": {files_per_sec:.1},\n  \
         \"budget_ns\": {BUDGET_NS},\n  \"within_budget\": {}\n}}\n",
        total_ns <= BUDGET_NS
    );
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_lint.json", &json))
    {
        eprintln!("exp_lint: cannot write results/BENCH_lint.json: {e}");
        return ExitCode::from(2);
    }
    println!("wrote results/BENCH_lint.json");

    if total_ns > BUDGET_NS {
        eprintln!(
            "exp_lint: BUDGET EXCEEDED — {total_ns} ns > {BUDGET_NS} ns; \
             a linter phase regressed by an order of magnitude"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
