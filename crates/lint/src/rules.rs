//! The token-level lint rules (R1, R3–R9, R11, R12, R13).
//!
//! Every rule here runs over a [`SourceFile`] token stream, so string
//! literals and comments can never produce false positives, and
//! `#[cfg(test)]` exemption follows real item boundaries. R2 (dependency
//! allowlist) lints `Cargo.toml` manifests and lives in the crate root.

use crate::engine::SourceFile;
use crate::lexer::{float_value, num_is_float, TokenKind};
use crate::{Diagnostic, FileClass, Rule};
use std::collections::BTreeSet;
use std::path::Path;

/// Panicking macros flagged by R1.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Panicking methods flagged by R1.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Narrowing cast targets flagged by R3 (`as f64` widening is fine).
const LOSSY_TARGETS: [&str; 11] =
    ["f32", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8"];
/// Order-revealing methods on hash containers flagged by R8.
const HASH_ITER_METHODS: [&str; 7] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];
/// The one crate allowed to read the wall clock (R8); everything else —
/// including the `easytime-obs` span internals — goes through
/// `easytime_clock::{Stopwatch, Clock}`.
const CLOCK_DIR: &str = "crates/clock/src/";
/// Console print macros flagged by R11 in library code.
const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];
/// The observability crate is the sanctioned event/metrics sink (R11).
const OBS_DIR: &str = "crates/obs/src/";
/// Scrutinee identifiers that mark a `match` as refit-policy dispatch
/// (R12): such matches must stay exhaustive so new `RefitPolicy` variants
/// break the build instead of falling through a `_` arm.
const POLICY_IDENTS: [&str; 3] = ["refit", "refit_policy", "RefitPolicy"];

/// Shared reporting context: applies escape-hatch annotations and collects
/// diagnostics (including malformed-annotation reports).
struct Reporter<'a, 'b> {
    sf: &'b SourceFile<'a>,
    path: &'b Path,
    diags: Vec<Diagnostic>,
}

impl Reporter<'_, '_> {
    /// Reports `rule` at `line` unless a justified annotation waives it; a
    /// bare (unjustified) annotation is itself reported as R0.
    fn report(&mut self, rule: Rule, line: usize, message: String) {
        if let Some(mark) = self.sf.allow_on(line, rule.allow_name()) {
            if !mark.justified {
                self.diags.push(Diagnostic::new(
                    self.path,
                    mark.marker_line,
                    Rule::BadAnnotation,
                    format!(
                        "escape hatch `lint: allow({})` requires a written justification",
                        rule.allow_name()
                    ),
                ));
            }
            return;
        }
        self.diags.push(Diagnostic::new(self.path, line, rule, message));
    }
}

/// Runs all token-level rules over one Rust source file.
pub(crate) fn lint_tokens(rel_path: &Path, class: FileClass, sf: &SourceFile<'_>) -> Vec<Diagnostic> {
    let mut r = Reporter { sf, path: rel_path, diags: Vec::new() };
    let n = sf.code.len();
    let in_test = |k: usize| sf.ct(k).is_some_and(|t| sf.in_test_region(t.start));
    let path_str = rel_path.to_string_lossy().replace('\\', "/");

    let hash_names = if class.is_library { hash_container_names(sf) } else { BTreeSet::new() };

    for k in 0..n {
        let line = sf.ct(k).map_or(1, |t| t.line);

        // ---- R1: no panicking constructs in library code. ----
        if class.is_library && !in_test(k) {
            for m in PANIC_MACROS {
                if sf.is_ident(k, m) && sf.is_punct(k + 1, '!') {
                    r.report(
                        Rule::NoPanic,
                        line,
                        format!(
                            "`{m}!` in library code; return the crate's typed error instead \
                             (or annotate with `// lint: allow(panic) — <why>`)"
                        ),
                    );
                }
            }
            for m in PANIC_METHODS {
                if k > 0
                    && sf.is_punct(k - 1, '.')
                    && sf.is_ident(k, m)
                    && sf.is_punct(k + 1, '(')
                {
                    r.report(
                        Rule::NoPanic,
                        line,
                        format!(
                            "`{m}` in library code; return the crate's typed error instead \
                             (or annotate with `// lint: allow(panic) — <why>`)"
                        ),
                    );
                }
            }
        }

        // ---- R3: lossy `as` casts in numeric hot paths. ----
        if class.is_hot_numeric && !in_test(k) && sf.is_ident(k, "as") {
            let target = sf.ctext(k + 1);
            if sf.ct(k + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && LOSSY_TARGETS.contains(&target)
            {
                let target = target.to_string();
                r.report(
                    Rule::LossyCast,
                    line,
                    format!(
                        "potentially lossy `as {target}` cast in a numeric hot path; use a \
                         checked conversion or annotate with `// lint: allow(lossy-cast) — <why>`"
                    ),
                );
            }
        }

        // ---- R4: public Result APIs must use typed errors. ----
        if class.is_library && !in_test(k) && sf.is_ident(k, "pub") {
            if let Some(msg) = boxed_error_fn(sf, k) {
                r.report(Rule::TypedError, line, msg);
            }
        }

        // ---- R5: no process::exit outside binaries. ----
        if !class.is_bin
            && sf.is_ident(k, "process")
            && sf.is_punct_seq(k + 1, "::")
            && sf.is_ident(k + 3, "exit")
        {
            r.report(
                Rule::ProcessExit,
                line,
                "`std::process::exit` outside `src/bin`; return an error and let the binary \
                 decide the exit code"
                    .into(),
            );
        }

        // ---- R6: NaN-unsafe float ordering (applies everywhere — tests
        // and binaries rank things too, and rankings must be
        // deterministic). ----
        if sf.is_ident(k, "partial_cmp") && k > 0 && sf.is_punct(k - 1, '.') {
            if let Some(what) = nan_unsafe_ordering(sf, k) {
                r.report(
                    Rule::FloatOrdering,
                    line,
                    format!(
                        "NaN-unsafe comparator: `partial_cmp(..).{what}` violates strict weak \
                         ordering when a value is NaN, making sorts panic-prone and rankings \
                         non-deterministic; use `f64::total_cmp` (or annotate with \
                         `// lint: allow(float-ordering) — <why>`)"
                    ),
                );
            }
        }

        // ---- R7: float `==`/`!=` outside zero-guard idioms in the
        // numeric crates. ----
        if class.is_float_path && !in_test(k) {
            if let Some(lit) = non_zero_float_eq(sf, k) {
                r.report(
                    Rule::FloatEq,
                    line,
                    format!(
                        "float equality against `{lit}`: exact comparison with a non-zero float \
                         is almost always a rounding bug; compare with a tolerance (zero guards \
                         like `x == 0.0` are exempt, or annotate with \
                         `// lint: allow(float-eq) — <why>`)"
                    ),
                );
            }
        }

        // ---- R8a: unordered hash-container iteration. ----
        if class.is_library && !in_test(k) {
            if let Some((name, how)) = hash_iteration(sf, k, &hash_names) {
                r.report(
                    Rule::HashOrder,
                    line,
                    format!(
                        "iteration over hash container `{name}` ({how}) observes \
                         nondeterministic order; use `BTreeMap`/`BTreeSet`, sort before use, \
                         or annotate with `// lint: allow(hash-order) — <why>`"
                    ),
                );
            }
        }

        // ---- R8b: wall-clock reads outside the one timing helper. ----
        if class.is_library && !in_test(k) && !path_str.starts_with(CLOCK_DIR) {
            let instant_now = sf.is_ident(k, "Instant")
                && sf.is_punct_seq(k + 1, "::")
                && sf.is_ident(k + 3, "now");
            let system_time = sf.is_ident(k, "SystemTime");
            if instant_now || system_time {
                let what = if instant_now { "Instant::now" } else { "SystemTime" };
                r.report(
                    Rule::WallClock,
                    line,
                    format!(
                        "direct wall-clock read (`{what}`) in library code; route timing \
                         through `easytime_clock::Stopwatch` so it stays auditable and \
                         mockable (or annotate with `// lint: allow(wall-clock) — <why>`)"
                    ),
                );
            }
        }

        // ---- R9: exported items need `///` docs. ----
        if class.is_library && !in_test(k) && sf.is_ident(k, "pub") {
            if let Some((kind, name)) = undocumented_pub_item(sf, k) {
                r.report(
                    Rule::MissingDocs,
                    line,
                    format!(
                        "exported {kind} `{name}` has no doc comment; add `///` documentation \
                         (or annotate with `// lint: allow(missing-docs) — <why>`)"
                    ),
                );
            }
        }

        // ---- R11: no console print macros in library code; structured
        // events go through `easytime-obs` (which is itself exempt, as
        // are binaries, tests, benches, and examples). ----
        if class.is_library && !in_test(k) && !path_str.starts_with(OBS_DIR) {
            for m in PRINT_MACROS {
                if sf.is_ident(k, m) && sf.is_punct(k + 1, '!') {
                    r.report(
                        Rule::PrintMacro,
                        line,
                        format!(
                            "`{m}!` in library code; emit an `easytime_obs` event (or move the \
                             output to `src/bin`, or annotate with `// lint: allow(print) — <why>`)"
                        ),
                    );
                }
            }
        }

        // ---- R13: materialized transpose feeding a product in library
        // code. `Option::transpose()` chains are naturally exempt: their
        // continuation is `?` / `.ok_or(..)`, never `.matmul(`. ----
        if class.is_library && !in_test(k) {
            if let Some(method) = transpose_product(sf, k) {
                r.report(
                    Rule::MaterializedTranspose,
                    line,
                    format!(
                        "`.transpose().{method}(..)` materializes the transposed matrix only to \
                         stream through it once; use the fused `Matrix::tr_{method}` kernel \
                         (or annotate with `// lint: allow(materialized-transpose) — <why>`)"
                    ),
                );
            }
        }

        // ---- R12: refit-policy matches must stay exhaustive (applies
        // everywhere — binaries and tests dispatch on the policy too, and
        // a new variant must be handled, not silently defaulted). ----
        if sf.is_ident(k, "match") {
            if let Some(arm_line) = policy_wildcard_arm(sf, k) {
                r.report(
                    Rule::PolicyWildcard,
                    arm_line,
                    "`_` arm in a `RefitPolicy` match; spell every variant out so adding a \
                     policy is a compile error at each dispatch site (or annotate with \
                     `// lint: allow(policy-wildcard) — <why>`)"
                        .into(),
                );
            }
        }
    }

    r.diags
}

/// R13 helper: when code index `k` is a `.transpose()` call whose result
/// immediately feeds `.matmul(` / `.matvec(`, returns the product method
/// name.
fn transpose_product(sf: &SourceFile<'_>, k: usize) -> Option<&'static str> {
    if !(k > 0 && sf.is_punct(k - 1, '.') && sf.is_ident(k, "transpose") && sf.is_punct(k + 1, '('))
    {
        return None;
    }
    let close = sf.matching_close(k + 1)?;
    if !sf.is_punct(close + 1, '.') {
        return None;
    }
    for method in ["matmul", "matvec"] {
        if sf.is_ident(close + 2, method) && sf.is_punct(close + 3, '(') {
            return Some(method);
        }
    }
    None
}

/// R12 helper: when the `match` at code index `k` scrutinizes a refit
/// policy (any scrutinee identifier in [`POLICY_IDENTS`]) and its body
/// contains a top-level `_` arm, returns the arm's line.
fn policy_wildcard_arm(sf: &SourceFile<'_>, k: usize) -> Option<usize> {
    // Scrutinee: tokens up to the body `{` at paren/bracket depth 0. Rust
    // forbids bare struct literals in match scrutinees, so the first
    // top-level `{` opens the body.
    let mut is_policy = false;
    let mut depth = 0i64;
    let mut j = k + 1;
    let body_open = loop {
        let t = sf.ct(j)?;
        if j > k + 200 {
            return None;
        }
        if depth == 0 && sf.is_punct(j, '{') {
            break j;
        }
        if sf.is_punct(j, '(') || sf.is_punct(j, '[') {
            depth += 1;
        } else if sf.is_punct(j, ')') || sf.is_punct(j, ']') {
            depth -= 1;
        } else if t.kind == TokenKind::Ident && POLICY_IDENTS.contains(&t.text(sf.src)) {
            is_policy = true;
        }
        j += 1;
    };
    if !is_policy {
        return None;
    }
    // A top-level arm pattern sits at brace depth 1 with no surrounding
    // parens/brackets; `_` bindings inside patterns like `Some(_)` or
    // nested bodies are deeper and never flagged.
    let body_close = sf.matching_close(body_open)?;
    let mut brace = 1i64;
    let mut other = 0i64;
    for q in body_open + 1..body_close {
        if sf.is_punct(q, '{') {
            brace += 1;
        } else if sf.is_punct(q, '}') {
            brace -= 1;
        } else if sf.is_punct(q, '(') || sf.is_punct(q, '[') {
            other += 1;
        } else if sf.is_punct(q, ')') || sf.is_punct(q, ']') {
            other -= 1;
        } else if brace == 1
            && other == 0
            && sf.is_ident(q, "_")
            && (sf.is_punct_seq(q + 1, "=>") || sf.is_ident(q + 1, "if"))
        {
            return Some(sf.ct(q).map_or(1, |t| t.line));
        }
    }
    None
}

/// R4 helper: when code index `k` (`pub`) heads a function whose return
/// type contains `Box<dyn … Error …>`, returns the diagnostic message.
fn boxed_error_fn(sf: &SourceFile<'_>, k: usize) -> Option<String> {
    let mut j = k + 1;
    // Restricted visibility: pub(crate), pub(super), pub(in path).
    if sf.is_punct(j, '(') {
        j = sf.matching_close(j)? + 1;
    }
    // Qualifiers before `fn`.
    loop {
        let t = sf.ctext(j);
        if matches!(t, "const" | "async" | "unsafe" | "extern")
            || sf.ct(j).is_some_and(|t| t.kind == TokenKind::StrLit)
        {
            j += 1;
        } else {
            break;
        }
    }
    if !sf.is_ident(j, "fn") {
        return None;
    }
    // Scan the signature up to the body `{` or a `;`.
    let mut arrow = None;
    let mut end = j + 1;
    let mut m = j + 1;
    while sf.ct(m).is_some() && m < j + 400 {
        if sf.is_punct(m, '{') || sf.is_punct(m, ';') {
            end = m;
            break;
        }
        if sf.is_punct_seq(m, "->") {
            arrow = Some(m);
        }
        m += 1;
        end = m;
    }
    let arrow = arrow?;
    let mut saw_box = false;
    let mut saw_dyn = false;
    let mut saw_error = false;
    for q in arrow..end {
        if sf.is_ident(q, "Box") {
            saw_box = true;
        }
        if sf.is_ident(q, "dyn") {
            saw_dyn = true;
        }
        if sf.ct(q).is_some_and(|t| t.kind == TokenKind::Ident) && sf.ctext(q).contains("Error")
        {
            saw_error = true;
        }
    }
    (saw_box && saw_dyn && saw_error).then(|| {
        "public API returns `Box<dyn Error>`; use the crate's typed error enum".to_string()
    })
}

/// R6 helper: when the `partial_cmp` call at code index `k` is chained
/// into `.unwrap()` / `.unwrap_or(Equal)` / `.unwrap_or_else(|| Equal)`,
/// returns the offending continuation for the message.
fn nan_unsafe_ordering(sf: &SourceFile<'_>, k: usize) -> Option<&'static str> {
    if !sf.is_punct(k + 1, '(') {
        return None;
    }
    let close = sf.matching_close(k + 1)?;
    if !sf.is_punct(close + 1, '.') {
        return None;
    }
    let m = close + 2;
    if sf.is_ident(m, "unwrap") && sf.is_punct(m + 1, '(') {
        return Some("unwrap()");
    }
    for (method, label) in [
        ("unwrap_or", "unwrap_or(Ordering::Equal)"),
        ("unwrap_or_else", "unwrap_or_else(.. Ordering::Equal)"),
    ] {
        if sf.is_ident(m, method) && sf.is_punct(m + 1, '(') {
            let argc = sf.matching_close(m + 1)?;
            for q in m + 2..argc {
                if sf.is_ident(q, "Equal") {
                    return Some(label);
                }
            }
        }
    }
    None
}

/// R7 helper: when code index `k` starts a `==`/`!=` whose left or right
/// operand is a non-zero float literal, returns that literal's text.
fn non_zero_float_eq(sf: &SourceFile<'_>, k: usize) -> Option<String> {
    if !(sf.is_punct_seq(k, "==") || sf.is_punct_seq(k, "!=")) {
        return None;
    }
    // Reject `<=` / `>=` (their `=` would otherwise match at `k+1`).
    if k > 0 && sf.ct(k).is_some_and(|t| t.kind == TokenKind::Punct) {
        let prev = sf.ctext(k.wrapping_sub(1));
        if matches!(prev, "<" | ">" | "=" | "!")
            && sf.ct(k - 1).zip(sf.ct(k)).is_some_and(|(a, b)| a.end == b.start)
        {
            return None;
        }
    }
    let float_lit = |idx: usize| -> Option<String> {
        let t = sf.ct(idx)?;
        if t.kind != TokenKind::NumLit {
            return None;
        }
        let text = t.text(sf.src);
        if !num_is_float(text) {
            return None;
        }
        // Zero guards (`x == 0.0`) are the accepted idiom.
        match float_value(text) {
            Some(v) if v == 0.0 => None,
            _ => Some(text.to_string()),
        }
    };
    if k > 0 {
        if let Some(lit) = float_lit(k - 1) {
            return Some(lit);
        }
    }
    // Right operand sits after both punct chars; tolerate a unary minus.
    let rhs = if sf.is_punct(k + 2, '-') { k + 3 } else { k + 2 };
    float_lit(rhs)
}

/// R8a helper, pass 1: names bound to `HashMap`/`HashSet` in this file —
/// `let name: HashMap<..>`, `name: HashSet<..>` fields, and
/// `let name = HashMap::new()` initialisers.
fn hash_container_names(sf: &SourceFile<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for k in 0..sf.code.len() {
        if !(sf.is_ident(k, "HashMap") || sf.is_ident(k, "HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix.
        let mut b = k;
        while b >= 3 && sf.is_punct_seq(b - 2, "::") {
            if sf.ct(b - 3).is_some_and(|t| t.kind == TokenKind::Ident) {
                b -= 3;
            } else {
                break;
            }
        }
        // ... and over reference sigils in types like `&'a mut HashMap<..>`.
        while b >= 1
            && (sf.is_punct(b - 1, '&')
                || sf.is_ident(b - 1, "mut")
                || sf.ct(b - 1).is_some_and(|t| t.kind == TokenKind::Lifetime))
        {
            b -= 1;
        }
        if b >= 2
            && sf.is_punct(b - 1, ':')
            && !sf.is_punct(b - 2, ':')
            && sf.ct(b - 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            // `name : [path::]HashMap` — a typed binding or field.
            names.insert(sf.ctext(b - 2).to_string());
        } else if b >= 2
            && sf.is_punct(b - 1, '=')
            && sf.ct(b - 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            // `let name = HashMap::new()`.
            names.insert(sf.ctext(b - 2).to_string());
        }
    }
    names
}

/// R8a helper, pass 2: when code index `k` iterates one of the collected
/// hash containers, returns `(name, how)` for the message.
fn hash_iteration(
    sf: &SourceFile<'_>,
    k: usize,
    names: &BTreeSet<String>,
) -> Option<(String, &'static str)> {
    let t = sf.ct(k)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    let name = t.text(sf.src);
    if !names.contains(name) {
        return None;
    }
    // `name.iter()` and friends.
    if sf.is_punct(k + 1, '.') && sf.is_punct(k + 3, '(') {
        let method = sf.ctext(k + 2);
        if let Some(m) = HASH_ITER_METHODS.iter().find(|&&m| m == method) {
            return Some((name.to_string(), m));
        }
    }
    // `for x in &name {` / `for x in name {`.
    if sf.is_punct(k + 1, '{') {
        let mut b = k;
        while b > 0 && (sf.is_punct(b - 1, '&') || sf.is_ident(b - 1, "mut")) {
            b -= 1;
        }
        if b > 0 && sf.is_ident(b - 1, "in") {
            return Some((name.to_string(), "for-in"));
        }
    }
    None
}

/// R9 helper: when code index `k` (`pub`) heads an exported item that
/// needs documentation and has none, returns `(item kind, name)`.
fn undocumented_pub_item(sf: &SourceFile<'_>, k: usize) -> Option<(String, String)> {
    // Restricted visibility (`pub(crate)` …) is not exported API.
    if sf.is_punct(k + 1, '(') {
        return None;
    }
    let mut j = k + 1;
    while matches!(sf.ctext(j), "async" | "unsafe" | "extern")
        || sf.ct(j).is_some_and(|t| t.kind == TokenKind::StrLit)
    {
        j += 1;
    }
    let (kind, name_at) = match sf.ctext(j) {
        "const" if sf.is_ident(j + 1, "fn") => ("fn", j + 2),
        kw @ ("fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" | "union") => {
            (kw, j + 1)
        }
        // `pub use` / `pub mod` are documented at their definition site.
        _ => return None,
    };
    // `static mut NAME` (unsafe, but still nameable).
    let name_at = if sf.is_ident(name_at, "mut") { name_at + 1 } else { name_at };
    let name = sf.ctext(name_at).to_string();
    let raw = sf.raw_index(k)?;
    if sf.has_doc_before(raw) {
        return None;
    }
    Some((kind.to_string(), name))
}
