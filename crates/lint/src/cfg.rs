//! Phase 3, step 1: per-function **control-flow sketches**.
//!
//! A [`CfgSketch`] is the region tree of one function body: every brace
//! group inside the body becomes a [`Region`] classified as a loop body,
//! branch body, match body, or plain block from the tokens of its header,
//! plus the statement boundaries (`;` at the region's own depth). The
//! sketch is deliberately *total*: it is built from the same lexed token
//! stream the rest of the analyzer uses, never panics on malformed input
//! (an unbalanced group clamps to its enclosing region), and is locked in
//! by the seeded token-soup suite in `crates/lint/tests/cfg_properties.rs`.
//!
//! The effect pass ([`crate::effects`]) consumes one question from the
//! sketch: *is this code index in loop position* — inside the body of a
//! `loop` / `while` / `for` — which is what gives R18 its
//! one-time-setup-outside-loops exemption. Closure bodies passed to
//! iterator combinators (`.for_each(|x| { … })`) classify as plain blocks,
//! an accepted false negative documented in DESIGN.md §Effect analysis.

use crate::engine::SourceFile;
use crate::lexer::TokenKind;

/// What introduced a region's brace group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// The function body itself (always region 0).
    Body,
    /// A `loop` / `while` / `for` body.
    Loop,
    /// An `if` / `else` body.
    Branch,
    /// A `match` body (the arm blocks inside are separate regions).
    Match,
    /// Any other brace group: plain blocks, closures, struct literals,
    /// match-arm blocks.
    Block,
}

/// One brace-delimited region of a function body, in code-token indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region kind derived from the header tokens before the `{`.
    pub kind: RegionKind,
    /// Code index of the opening `{` (the body's own `{` for region 0).
    pub open: usize,
    /// Code index of the matching `}`, clamped to the enclosing region's
    /// close when the group is unbalanced (totality on token soup).
    pub close: usize,
    /// Index of the enclosing region in [`CfgSketch::regions`]; `None`
    /// only for the root body region.
    pub parent: Option<usize>,
    /// Code indices of `;` statement boundaries directly in this region
    /// (boundaries inside child regions belong to the children).
    pub stmts: Vec<usize>,
}

/// The region tree of one function body. `regions[0]` is always the body
/// itself; children strictly nest inside their parent and siblings never
/// overlap — the tiling invariant the property suite checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgSketch {
    /// All regions, root first, in opening order.
    pub regions: Vec<Region>,
}

impl CfgSketch {
    /// True when code index `k` lies strictly inside the body of a
    /// `loop` / `while` / `for` region.
    pub fn in_loop(&self, k: usize) -> bool {
        self.regions.iter().any(|r| r.kind == RegionKind::Loop && r.open < k && k < r.close)
    }

    /// Index into [`Self::regions`] of the tightest region containing
    /// code index `k` (region 0 when no nested group does).
    pub fn innermost(&self, k: usize) -> usize {
        let mut best = 0usize;
        let mut best_span = usize::MAX;
        for (i, r) in self.regions.iter().enumerate() {
            if r.open <= k && k <= r.close {
                let span = r.close - r.open;
                if span < best_span {
                    best_span = span;
                    best = i;
                }
            }
        }
        best
    }
}

/// One named function's control-flow sketch, as found by the lightweight
/// `fn`-scan of [`file_cfgs`] — the public entry the token-soup property
/// tests drive.
#[derive(Debug, Clone)]
pub struct FnCfg {
    /// Function name as written (soup names are opaque strings).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The region tree of the body.
    pub sketch: CfgSketch,
}

/// Builds a [`FnCfg`] for every `fn name … { … }` found in `src`,
/// including functions nested inside other bodies. Total by construction:
/// any input yields a (possibly empty) list and every returned sketch
/// satisfies the tiling invariants checked by the property suite.
pub fn file_cfgs(src: &str) -> Vec<FnCfg> {
    let sf = SourceFile::parse(src);
    let n = sf.code.len();
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < n {
        let named = sf.is_ident(k, "fn")
            && sf.ct(k + 1).is_some_and(|t| t.kind == TokenKind::Ident);
        if !named {
            k += 1;
            continue;
        }
        // Find the body `{` before any `;` terminator (trait method decls
        // have no body); bounded so soup cannot stall the scan.
        let mut m = k + 2;
        let mut body: Option<(usize, usize)> = None;
        while m < n && m < k + 600 {
            if sf.is_punct(m, '{') {
                let close = sf.matching_close(m).unwrap_or(n.saturating_sub(1)).max(m);
                body = Some((m, close));
                break;
            }
            if sf.is_punct(m, ';') {
                break;
            }
            m += 1;
        }
        let Some((open, close)) = body else {
            k += 1;
            continue;
        };
        let line = sf.ct(k).map_or(1, |t| t.line);
        out.push(FnCfg {
            name: sf.ctext(k + 1).to_string(),
            line,
            sketch: sketch_body(&sf, open, close),
        });
        // Continue just past the `{` so nested fns are sketched too.
        k = open + 1;
    }
    out
}

/// Builds the region tree for the body delimited by the braces at code
/// indices `open` and `close`. Never panics: malformed nesting clamps to
/// the enclosing region and the walk is a single bounded pass.
pub(crate) fn sketch_body(sf: &SourceFile<'_>, open: usize, close: usize) -> CfgSketch {
    let close = close.max(open);
    let mut regions = vec![Region {
        kind: RegionKind::Body,
        open,
        close,
        parent: None,
        stmts: Vec::new(),
    }];
    let mut stack: Vec<usize> = vec![0];
    let mut q = open + 1;
    while q < close {
        // Leave every region that ends at or before this token.
        while stack.len() > 1 {
            let top = *stack.last().unwrap_or(&0);
            if regions[top].close <= q {
                stack.pop();
            } else {
                break;
            }
        }
        let top = *stack.last().unwrap_or(&0);
        if sf.is_punct(q, '{') {
            let parent_close = regions[top].close;
            let rclose = sf.matching_close(q).unwrap_or(parent_close).min(parent_close);
            let kind = classify_open(sf, q, regions[top].open);
            regions.push(Region {
                kind,
                open: q,
                close: rclose,
                parent: Some(top),
                stmts: Vec::new(),
            });
            stack.push(regions.len() - 1);
        } else if sf.is_punct(q, ';') {
            regions[top].stmts.push(q);
        }
        q += 1;
    }
    CfgSketch { regions }
}

/// Classifies the brace at code index `brace` by scanning its header
/// backwards to the nearest statement boundary: a control keyword at
/// group depth 0 names the region; hitting `{` / `}` / `;` or an
/// unmatched `(` / `[` first (the brace is an argument or closure body)
/// makes it a plain block.
fn classify_open(sf: &SourceFile<'_>, brace: usize, floor: usize) -> RegionKind {
    let mut p = brace;
    let mut depth = 0i64;
    let mut hops = 0usize;
    while p > floor && hops < 120 {
        p -= 1;
        hops += 1;
        if sf.is_punct(p, ')') || sf.is_punct(p, ']') {
            depth += 1;
            continue;
        }
        if sf.is_punct(p, '(') || sf.is_punct(p, '[') {
            depth -= 1;
            if depth < 0 {
                return RegionKind::Block;
            }
            continue;
        }
        if depth > 0 {
            continue;
        }
        if sf.is_punct(p, '{') || sf.is_punct(p, '}') || sf.is_punct(p, ';') {
            return RegionKind::Block;
        }
        if sf.is_ident(p, "loop") || sf.is_ident(p, "while") || sf.is_ident(p, "for") {
            return RegionKind::Loop;
        }
        if sf.is_ident(p, "if") || sf.is_ident(p, "else") {
            return RegionKind::Branch;
        }
        if sf.is_ident(p, "match") {
            return RegionKind::Match;
        }
    }
    RegionKind::Block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(src: &str) -> CfgSketch {
        let cfgs = file_cfgs(src);
        assert_eq!(cfgs.len(), 1, "expected exactly one fn in {src:?}");
        cfgs[0].sketch.clone()
    }

    fn kinds(s: &CfgSketch) -> Vec<RegionKind> {
        s.regions.iter().map(|r| r.kind).collect()
    }

    #[test]
    fn loops_branches_and_matches_classify_from_headers() {
        let s = sketch_of(
            "fn f(xs: &[u32]) {\n\
             \x20   for x in xs.iter() { touch(x); }\n\
             \x20   while ready() { step(); }\n\
             \x20   loop { break; }\n\
             \x20   if xs.is_empty() { a(); } else { b(); }\n\
             \x20   match xs.len() { 0 => {} _ => { c(); } }\n\
             }\n",
        );
        use RegionKind::*;
        assert_eq!(
            kinds(&s),
            vec![Body, Loop, Loop, Loop, Branch, Branch, Match, Block, Block]
        );
    }

    #[test]
    fn in_loop_is_strict_and_ignores_setup_positions() {
        let src = "fn f(n: usize) {\n\
                   \x20   let setup = prepare(n);\n\
                   \x20   for i in 0..n {\n\
                   \x20       hot(i, &setup);\n\
                   \x20   }\n\
                   \x20   teardown(setup);\n\
                   }\n";
        let sf = SourceFile::parse(src);
        let s = sketch_of(src);
        let at = |name: &str| {
            (0..sf.code.len()).find(|&k| sf.is_ident(k, name)).unwrap_or(usize::MAX)
        };
        assert!(s.in_loop(at("hot")));
        assert!(!s.in_loop(at("prepare")));
        assert!(!s.in_loop(at("teardown")));
    }

    #[test]
    fn statement_boundaries_attach_to_their_innermost_region() {
        let src = "fn f() { a(); if x { b(); c(); } }\n";
        let s = sketch_of(src);
        assert_eq!(s.regions[0].stmts.len(), 1, "only `a();` is at body depth");
        assert_eq!(s.regions[1].stmts.len(), 2, "`b();` and `c();` sit in the branch");
        for (i, r) in s.regions.iter().enumerate() {
            for &st in &r.stmts {
                assert_eq!(s.innermost(st), i);
            }
        }
    }

    #[test]
    fn unbalanced_braces_clamp_to_the_enclosing_region() {
        // The inner `{` never closes; its region must clamp to the body.
        let cfgs = file_cfgs("fn f() { if x { a(); }\n");
        assert_eq!(cfgs.len(), 1);
        let s = &cfgs[0].sketch;
        for r in &s.regions[1..] {
            let p = r.parent.unwrap_or(0);
            assert!(r.open > s.regions[p].open);
            assert!(r.close <= s.regions[p].close);
        }
    }

    #[test]
    fn closure_bodies_are_plain_blocks() {
        let s = sketch_of("fn f(xs: &[u32]) { xs.iter().for_each(|x| { touch(x); }); }\n");
        assert!(s.regions[1..].iter().all(|r| r.kind == RegionKind::Block));
        // Deliberate false negative: combinator bodies are not loop regions.
        assert!(!s.in_loop(s.regions[1].open + 1));
    }

    #[test]
    fn nested_fns_are_sketched_separately() {
        let cfgs = file_cfgs("fn outer() { fn inner() { loop {} } inner(); }\n");
        let names: Vec<&str> = cfgs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
