//! Phase 3, step 2: interprocedural **effect analysis** (R18–R20).
//!
//! Each function body contributes local effect sites — heap allocation,
//! lock acquisition, panic-family calls, clock reads, file IO — tagged
//! with loop position from the control-flow sketch ([`crate::cfg`]). This
//! module closes those sites transitively over the PR-6 call graph (the
//! same per-crate dependency-restricted, name-based resolution as
//! [`crate::locks`]) into a deterministic BTree-backed [`EffectTable`],
//! then runs three rules on top:
//!
//! - **R18 `hot-path-alloc`** — a function declared hot with
//!   `// lint: hot(<why>)` must not reach an allocating effect from loop
//!   position: direct in-loop allocation sites, in-loop calls whose closed
//!   summary allocates, and straight-line calls whose own loops allocate
//!   all fire; one-time setup outside loops is exempt.
//! - **R19 `swallowed-result`** — a discarded `Result` in library code:
//!   `let _ = call(…)` and `call(…).unwrap_or_default()` when the call
//!   resolves to a workspace function whose signature returns a `Result`,
//!   plus any whole-statement `….ok();`.
//! - **R20 `lock-while-heavy`** — a held lock region (the R16 let-bound /
//!   temporary analysis) spanning a call whose closed summary allocates or
//!   does file IO.
//!
//! Closure resolution skips [`UBIQUITOUS`] names (`new`, `clone`,
//! `insert`, …) that collide with std methods on nearly every call site —
//! an accepted false-negative trade documented in DESIGN.md §Effect
//! analysis. The hot-list sync test uses [`reachable_from`], which applies
//! no such filter, so static coverage is bound to the runtime
//! counting-allocator suites conservatively.

use crate::engine::SourceFile;
use crate::lexer::TokenKind;
use crate::locks::{build_index, FnKey};
use crate::model::{FileModel, FnSummary, ItemKind, WorkspaceModel, NON_CALL_KEYWORDS};
use crate::resolve::push_allowed;
use crate::{json_escape, Diagnostic, Rule, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One coordinate of the effect lattice: the five observable side-effect
/// families the phase-3 analysis tracks per function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Heap allocation (`vec!`, `format!`, `Vec::new`, `.collect()`, …).
    Alloc,
    /// Lock acquisition (the same identities as the R16 analysis).
    Lock,
    /// Panic family (`panic!`, `assert!`, `.unwrap()`, `.expect()`, …).
    Panic,
    /// Wall-clock read (`Instant::now` / `SystemTime::now`).
    Clock,
    /// File IO (`File::open`, `fs::read_to_string`, …).
    Io,
}

impl Effect {
    /// Lower-case label used in the JSON effect table and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Alloc => "alloc",
            Effect::Lock => "lock",
            Effect::Panic => "panic",
            Effect::Clock => "clock",
            Effect::Io => "io",
        }
    }
}

/// One local effect site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct EffectSite {
    /// Which effect family the marker belongs to.
    pub effect: Effect,
    /// The concrete marker matched (`format!`, `Vec::new`, `.collect()`).
    pub what: String,
    /// 1-based line of the site.
    pub line: usize,
    /// True when the site sits inside a `loop`/`while`/`for` body.
    pub in_loop: bool,
}

/// One call site inside a function body, with loop position.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct CallSite {
    /// Callee name as written (`r#` stripped).
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// True when the call sits inside a `loop`/`while`/`for` body.
    pub in_loop: bool,
}

/// How a `Result` value was discarded (R19).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through DiscardSite's pub `kind` field, which R17's item-signature scan does not cover
pub enum DiscardKind {
    /// `let _ = call(…);`
    LetUnderscore,
    /// A whole statement of the form `….ok();`.
    StatementOk,
    /// `call(…).unwrap_or_default()` — errors silently become defaults.
    UnwrapOrDefault,
}

/// One discarded-result candidate site. R19 decides via the workspace
/// signature table whether the discarded call actually returns a `Result`
/// (except [`DiscardKind::StatementOk`], which is `Result`-only by
/// construction: `Option` has no `.ok()` method).
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct DiscardSite {
    /// The call whose result is discarded (empty when unresolvable).
    pub call: String,
    /// Discard shape.
    pub kind: DiscardKind,
    /// 1-based line of the site.
    pub line: usize,
}

/// Panic-family macro names.
const PANIC_MACROS: [&str; 10] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];
/// Macro names that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
/// Method names that allocate a fresh owned value. `reserve` / `extend` /
/// `clear` / `push` are deliberately absent: the workspace's scratch-reuse
/// convention amortizes them to zero in steady state, which is exactly
/// what the runtime counting-allocator tests verify.
const ALLOC_METHODS: [&str; 5] = ["clone", "collect", "to_vec", "to_string", "to_owned"];
/// `Base::name` associated-function pairs that allocate.
const ALLOC_PATHS: [(&str, &str); 7] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Panic-family method names.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// `fs::…` free functions counted as file IO.
const FS_IO: [&str; 10] = [
    "read_to_string",
    "read",
    "write",
    "create_dir_all",
    "read_dir",
    "remove_file",
    "remove_dir_all",
    "copy",
    "rename",
    "metadata",
];

/// Call names excluded from effect-closure resolution because they
/// collide with std inherent/trait methods on practically every call site
/// (`new`, `clone`, `insert`, `get`, …). Skipping them keeps one
/// `BTreeMap::insert` from smearing a same-named workspace function's
/// effects across the whole graph. The cost is a false-negative class
/// (a workspace fn deliberately named `get` never contributes to closures)
/// accepted and documented in DESIGN.md §Effect analysis.
const UBIQUITOUS: [&str; 112] = [
    "new",
    "abs", "all", "and_then", "any", "bytes", "ceil", "chain", "chars", "chunks",
    "chunks_exact", "clear", "clone", "cloned", "cmp", "collect", "contains",
    "contains_key", "copied", "copy_from_slice", "count", "default", "drain", "entry",
    "enumerate", "eq", "err", "exp", "expect", "extend", "extend_from_slice", "fill",
    "filter", "find", "first", "flat_map", "flatten", "floor", "flush", "fmt", "fold",
    "from", "get", "get_mut", "hash", "insert", "into", "into_inner", "into_iter",
    "is_empty", "is_err", "is_none", "is_ok", "is_some", "iter", "iter_mut", "join",
    "last", "len", "lines", "ln", "map", "max", "min", "mul_add", "ne", "next", "ok",
    "ok_or", "ok_or_else", "or_insert", "or_insert_with", "parse", "partial_cmp",
    "position", "powf", "powi", "product", "push", "pop", "remove", "reserve", "resize",
    "rev", "round", "skip", "sort", "sort_by", "sort_unstable", "sort_unstable_by",
    "split", "split_whitespace", "sqrt", "sum", "swap", "take", "to_owned", "to_string",
    "to_vec", "total_cmp", "trim", "truncate", "trunc", "unwrap", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "windows", "wrapping_add", "wrapping_mul",
    "write", "zip",
];

/// When the identifier at code index `q` is a local effect marker, returns
/// the effect and the concrete marker text for diagnostics.
pub(crate) fn local_effect_at(sf: &SourceFile<'_>, q: usize) -> Option<(Effect, String)> {
    let name = sf.ctext(q);
    // Macro form: `name!(…)` / `name![…]` / `name!{…}`.
    if sf.is_punct(q + 1, '!')
        && (sf.is_punct(q + 2, '(') || sf.is_punct(q + 2, '[') || sf.is_punct(q + 2, '{'))
    {
        if ALLOC_MACROS.contains(&name) {
            return Some((Effect::Alloc, format!("{name}!")));
        }
        if PANIC_MACROS.contains(&name) {
            return Some((Effect::Panic, format!("{name}!")));
        }
        return None;
    }
    if !sf.is_punct(q + 1, '(') {
        return None;
    }
    // Method form: `.name(…)`.
    if q > 0 && sf.is_punct(q - 1, '.') {
        if ALLOC_METHODS.contains(&name) {
            return Some((Effect::Alloc, format!(".{name}()")));
        }
        if PANIC_METHODS.contains(&name) {
            return Some((Effect::Panic, format!(".{name}()")));
        }
        return None;
    }
    // Path form: `Base::name(…)` (turbofish `Vec::<T>::new` is a known
    // miss — the base sits further back than one path segment).
    if q >= 3 && sf.is_punct_seq(q - 2, "::") {
        let base = sf.ctext(q - 3);
        if ALLOC_PATHS.contains(&(base, name)) {
            return Some((Effect::Alloc, format!("{base}::{name}")));
        }
        if (base == "Instant" || base == "SystemTime") && name == "now" {
            return Some((Effect::Clock, format!("{base}::now")));
        }
        if base == "File" && (name == "open" || name == "create") {
            return Some((Effect::Io, format!("File::{name}")));
        }
        if base == "fs" && FS_IO.contains(&name) {
            return Some((Effect::Io, format!("fs::{name}")));
        }
    }
    None
}

/// When the identifier at code index `q` starts (or completes) a
/// discarded-result shape, returns the candidate site.
pub(crate) fn discard_at(
    sf: &SourceFile<'_>,
    q: usize,
    body_open: usize,
) -> Option<DiscardSite> {
    let name = sf.ctext(q);
    let line = sf.ct(q).map_or(1, |t| t.line);
    // `let _ = …;` — the first top-level call in the initializer is the
    // candidate whose signature R19 looks up.
    if name == "let" && sf.is_ident(q + 1, "_") && sf.is_punct(q + 2, '=') {
        let call = initializer_call(sf, q + 3);
        return call.map(|call| DiscardSite { call, kind: DiscardKind::LetUnderscore, line });
    }
    if q == 0 || !sf.is_punct(q - 1, '.') || !sf.is_punct(q + 1, '(') {
        return None;
    }
    // Whole-statement `….ok();`.
    if name == "ok" {
        let close = sf.matching_close(q + 1)?;
        if sf.is_punct(close + 1, ';') && statement_position(sf, q - 1, body_open) {
            let call = receiver_call_name(sf, q - 1).unwrap_or_default();
            return Some(DiscardSite { call, kind: DiscardKind::StatementOk, line });
        }
        return None;
    }
    // `call(…).unwrap_or_default()` in any position.
    if name == "unwrap_or_default" {
        let call = receiver_call_name(sf, q - 1)?;
        return Some(DiscardSite { call, kind: DiscardKind::UnwrapOrDefault, line });
    }
    None
}

/// First call name at delimiter depth 0 in the initializer starting at
/// code index `from` (bounded scan to the statement's `;`).
fn initializer_call(sf: &SourceFile<'_>, from: usize) -> Option<String> {
    let mut depth = 0i64;
    let mut p = from;
    let mut hops = 0usize;
    while hops < 200 {
        hops += 1;
        let t = sf.ct(p)?;
        if sf.is_punct(p, '(') || sf.is_punct(p, '[') || sf.is_punct(p, '{') {
            depth += 1;
        } else if sf.is_punct(p, ')') || sf.is_punct(p, ']') || sf.is_punct(p, '}') {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        } else if depth == 0 && sf.is_punct(p, ';') {
            return None;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && sf.is_punct(p + 1, '(')
            && !NON_CALL_KEYWORDS.contains(&sf.ctext(p))
        {
            return Some(sf.ctext(p).to_string());
        }
        p += 1;
    }
    None
}

/// True when the expression ending at the `.` at code index `from` started
/// a statement: walking back at delimiter depth 0 reaches `;`, `{`, or `}`
/// before any `let`, `=`, `return`, `,`, or an unmatched opener (which
/// would mean the value is consumed).
fn statement_position(sf: &SourceFile<'_>, from: usize, floor: usize) -> bool {
    let mut p = from;
    let mut depth = 0i64;
    let mut hops = 0usize;
    while p > floor && hops < 120 {
        p -= 1;
        hops += 1;
        if sf.is_punct(p, ')') || sf.is_punct(p, ']') {
            depth += 1;
            continue;
        }
        if sf.is_punct(p, '(') || sf.is_punct(p, '[') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
            continue;
        }
        if depth > 0 {
            continue;
        }
        if sf.is_punct(p, ';') || sf.is_punct(p, '{') || sf.is_punct(p, '}') {
            return true;
        }
        if sf.is_punct(p, '=')
            || sf.is_punct(p, ',')
            || sf.is_ident(p, "let")
            || sf.is_ident(p, "return")
            || sf.is_ident(p, "match")
            || sf.is_ident(p, "if")
            || sf.is_ident(p, "while")
        {
            return false;
        }
    }
    true
}

/// When the token before the `.` at code index `dot` closes a call,
/// returns the called name (`try_io` for `try_io(…).ok()`).
fn receiver_call_name(sf: &SourceFile<'_>, dot: usize) -> Option<String> {
    if dot == 0 || !sf.is_punct(dot - 1, ')') {
        return None;
    }
    let mut p = dot - 1;
    let mut depth = 1i64;
    let mut hops = 0usize;
    while p > 0 && depth > 0 && hops < 200 {
        p -= 1;
        hops += 1;
        if sf.is_punct(p, ')') {
            depth += 1;
        } else if sf.is_punct(p, '(') {
            depth -= 1;
        }
    }
    if depth != 0 || p == 0 {
        return None;
    }
    let cand = p - 1;
    if sf.ct(cand).is_some_and(|t| t.kind == TokenKind::Ident)
        && !NON_CALL_KEYWORDS.contains(&sf.ctext(cand))
    {
        return Some(sf.ctext(cand).to_string());
    }
    None
}

/// One function's effect summary: representative definition site, local
/// (direct) effects, and the two transitive closures.
#[derive(Debug, Clone, Default)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct FnEffects {
    /// Representative definition file (lexicographically first path).
    pub file: String,
    /// 1-based line of the representative definition.
    pub line: usize,
    /// True when a `// lint: hot(…)` marker targets this function.
    pub hot: bool,
    /// Effects from the function's own body.
    pub direct: BTreeSet<Effect>,
    /// Effects reachable through any call chain, any loop position.
    pub closed: BTreeSet<Effect>,
    /// Effects that recur per iteration when the function runs: direct
    /// loop-position sites, full closures of loop-position callees, and
    /// the loop closures of straight-line callees.
    pub loop_closed: BTreeSet<Effect>,
    /// One representative origin per closed effect, propagated from the
    /// first contributor in deterministic key order.
    pub witness: BTreeMap<Effect, String>,
}

/// The effect lattice closed over the call graph, keyed like the R16 lock
/// analysis by `(crate package name, function name)` — same-name functions
/// within a crate merge conservatively.
#[derive(Debug, Clone, Default)]
pub struct EffectTable {
    /// Per-function summaries in deterministic key order.
    pub fns: BTreeMap<FnKey, FnEffects>,
}

/// Resolves each `// lint: hot(…)` marker in `file` to the function whose
/// head is the first at or below the marker's target line. `None` entries
/// are dangling markers (reported as R0 by [`check_effects`]).
fn hot_targets<'a>(file: &'a FileModel) -> Vec<(Option<&'a FnSummary>, &'a crate::engine::HotMark)> {
    file.hots
        .iter()
        .map(|mark| {
            let target = file
                .fns
                .iter()
                .filter(|s| s.line >= mark.target_line)
                .min_by_key(|s| s.line);
            (target, mark)
        })
        .collect()
}

/// Builds the closed effect table for the whole workspace: direct effects
/// per `(crate, fn)` key, then the `closed` fixpoint over all calls, then
/// the `loop_closed` fixpoint that distinguishes loop-position callees.
pub fn build_effect_table(ws: &WorkspaceModel) -> EffectTable {
    let idx = build_index(ws);
    let empty = BTreeSet::new();

    // Hot keys from marker targets.
    let mut hot_keys: BTreeSet<FnKey> = BTreeSet::new();
    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        for (target, _) in hot_targets(f) {
            if let Some(s) = target {
                if !s.in_test {
                    hot_keys.insert((f.crate_name.clone(), s.name.clone()));
                }
            }
        }
    }

    // Direct effects, witnesses, and loop-position seeds.
    let mut table = EffectTable::default();
    let mut closed: BTreeMap<FnKey, BTreeSet<Effect>> = BTreeMap::new();
    let mut loop_closed: BTreeMap<FnKey, BTreeSet<Effect>> = BTreeMap::new();
    let mut witness: BTreeMap<FnKey, BTreeMap<Effect, String>> = BTreeMap::new();
    for (key, sums) in &idx.fns {
        let mut fe = FnEffects { hot: hot_keys.contains(key), ..FnEffects::default() };
        if let Some((path, s)) = sums.first() {
            fe.file = path.to_string();
            fe.line = s.line;
        }
        let mut loop_direct = BTreeSet::new();
        let mut wit = BTreeMap::new();
        for (path, s) in sums {
            for site in &s.effects {
                fe.direct.insert(site.effect);
                wit.entry(site.effect)
                    .or_insert_with(|| format!("`{}` at {}:{}", site.what, path, site.line));
                if site.in_loop {
                    loop_direct.insert(site.effect);
                }
            }
        }
        closed.insert(key.clone(), fe.direct.clone());
        loop_closed.insert(key.clone(), loop_direct);
        witness.insert(key.clone(), wit);
        table.fns.insert(key.clone(), fe);
    }

    // Fixpoint 1: closed(f) = direct(f) ∪ ⋃ closed(callee).
    loop {
        let mut changed = false;
        for (key, sums) in &idx.fns {
            let visible = idx.reachable.get(key.0.as_str()).unwrap_or(&empty);
            let mut add: Vec<(Effect, String)> = Vec::new();
            for (_, s) in sums {
                for call in &s.calls {
                    if UBIQUITOUS.contains(&call.as_str()) {
                        continue;
                    }
                    for target in visible {
                        let ckey = (target.to_string(), call.clone());
                        if let Some(ce) = closed.get(&ckey) {
                            for &e in ce {
                                let w = witness
                                    .get(&ckey)
                                    .and_then(|m| m.get(&e))
                                    .cloned()
                                    .unwrap_or_else(|| format!("via `{target}::{call}`"));
                                add.push((e, w));
                            }
                        }
                    }
                }
            }
            let own = closed.entry(key.clone()).or_default();
            let own_wit = witness.entry(key.clone()).or_default();
            for (e, w) in add {
                if own.insert(e) {
                    changed = true;
                    own_wit.entry(e).or_insert(w);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Fixpoint 2: loop_closed(f) = direct loop sites ∪ closed(in-loop
    // callees) ∪ loop_closed(straight-line callees).
    loop {
        let mut changed = false;
        for (key, sums) in &idx.fns {
            let visible = idx.reachable.get(key.0.as_str()).unwrap_or(&empty);
            let mut add: Vec<Effect> = Vec::new();
            for (_, s) in sums {
                for c in &s.call_sites {
                    if UBIQUITOUS.contains(&c.name.as_str()) {
                        continue;
                    }
                    for target in visible {
                        let ckey = (target.to_string(), c.name.clone());
                        let src = if c.in_loop { &closed } else { &loop_closed };
                        if let Some(ce) = src.get(&ckey) {
                            add.extend(ce.iter().copied());
                        }
                    }
                }
            }
            let own = loop_closed.entry(key.clone()).or_default();
            for e in add {
                changed |= own.insert(e);
            }
        }
        if !changed {
            break;
        }
    }

    for (key, fe) in &mut table.fns {
        if let Some(c) = closed.remove(key) {
            fe.closed = c;
        }
        if let Some(l) = loop_closed.remove(key) {
            fe.loop_closed = l;
        }
        if let Some(w) = witness.remove(key) {
            fe.witness = w;
        }
    }
    table
}

/// Renders a closed effect set as a JSON array of labels.
fn effect_set_json(set: &BTreeSet<Effect>) -> String {
    let labels: Vec<String> = set.iter().map(|e| format!("\"{}\"", e.name())).collect();
    labels.join(", ")
}

/// Renders the effect table as schema-versioned JSON — the
/// `--effects-out results/lint_effects.json` artifact, byte-identical for
/// any file-discovery order because every map is a BTree keyed by
/// `(crate, fn)`.
pub(crate) fn effect_table_to_json(table: &EffectTable) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"functions\": [");
    let mut first = true;
    for ((krate, name), fe) in &table.fns {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"crate\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"hot\": {}, \"direct\": [{}], \"closed\": [{}], \"loop_closed\": [{}]}}",
            json_escape(krate),
            json_escape(name),
            json_escape(&fe.file),
            fe.line,
            fe.hot,
            effect_set_json(&fe.direct),
            effect_set_json(&fe.closed),
            effect_set_json(&fe.loop_closed),
        ));
    }
    out.push_str(if table.fns.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
    out
}

/// All `(crate, fn)` keys reachable from any function named in `entries`,
/// over the same dependency-restricted call graph as the effect closure
/// but with **no** ubiquitous-name filtering — deliberately conservative
/// in the more-reachable direction, so the hot-list sync test never
/// under-approximates what the runtime counting-allocator suites drive.
pub fn reachable_from(ws: &WorkspaceModel, entries: &[&str]) -> BTreeSet<FnKey> {
    let idx = build_index(ws);
    let empty = BTreeSet::new();
    let mut seen: BTreeSet<FnKey> = BTreeSet::new();
    let mut stack: Vec<FnKey> = idx
        .fns
        .keys()
        .filter(|k| entries.contains(&k.1.as_str()))
        .cloned()
        .collect();
    while let Some(key) = stack.pop() {
        if !seen.insert(key.clone()) {
            continue;
        }
        let Some(sums) = idx.fns.get(&key) else { continue };
        let visible = idx.reachable.get(key.0.as_str()).unwrap_or(&empty);
        for (_, s) in sums {
            for call in &s.calls {
                for target in visible {
                    let ckey = (target.to_string(), call.clone());
                    if idx.fns.contains_key(&ckey) && !seen.contains(&ckey) {
                        stack.push(ckey);
                    }
                }
            }
        }
    }
    seen
}

/// True when a normalized item signature declares a `Result` return type
/// (`io::Result`, `EvalResult` aliases included — substring after `->`).
fn returns_result(signature: &str) -> bool {
    signature.find("->").is_some_and(|p| signature[p..].contains("Result"))
}

/// Counts alphanumeric characters — the same justification bar the allow
/// hatches use (≥ 8 means a real reason was written).
fn alnum_len(text: &str) -> usize {
    text.chars().filter(|c| c.is_alphanumeric()).count()
}

/// Runs R18/R19/R20 (plus R0 for malformed hot markers) against the
/// closed effect table. Every diagnostic goes through the shared
/// [`push_allowed`] path, so `// lint: allow(<rule>) — <why>` hatches,
/// `--severity` overrides, and `--baseline` suppression apply uniformly.
pub(crate) fn check_effects(ws: &WorkspaceModel, table: &EffectTable) -> Vec<Diagnostic> {
    let idx = build_index(ws);
    let empty = BTreeSet::new();
    let mut diags = Vec::new();

    // Workspace functions whose signature returns a Result (for R19).
    let mut result_fns: BTreeSet<FnKey> = BTreeSet::new();
    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        for i in &f.items {
            if i.kind == ItemKind::Fn && !i.in_test && returns_result(&i.signature) {
                result_fns.insert((f.crate_name.clone(), i.name.clone()));
            }
        }
    }

    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        let visible = idx.reachable.get(f.crate_name.as_str()).unwrap_or(&empty);

        // R18 (+ R0 for malformed markers): hot functions must not reach
        // an allocating effect from loop position.
        for (target, mark) in hot_targets(f) {
            let Some(s) = target else {
                let mut d = Diagnostic::new(
                    Path::new(&f.path),
                    mark.marker_line,
                    Rule::BadAnnotation,
                    "dangling `lint: hot(…)` marker: no function definition follows it"
                        .to_string(),
                );
                d.severity = Severity::Error;
                diags.push(d);
                continue;
            };
            if alnum_len(&mark.why) < 8 {
                let mut d = Diagnostic::new(
                    Path::new(&f.path),
                    mark.marker_line,
                    Rule::BadAnnotation,
                    "hot-path marker `lint: hot(<why>)` requires a written reason why the \
                     path is latency-critical"
                        .to_string(),
                );
                d.severity = Severity::Error;
                diags.push(d);
            }
            if s.in_test {
                continue;
            }
            for site in &s.effects {
                if site.effect == Effect::Alloc && site.in_loop {
                    push_allowed(
                        &mut diags,
                        &f.allows,
                        Rule::HotPathAlloc,
                        Severity::Error,
                        &f.path,
                        site.line,
                        format!(
                            "hot path `{}` allocates in loop position via `{}`; hoist the \
                             allocation out of the loop or justify the site",
                            s.name, site.what
                        ),
                    );
                }
            }
            for c in &s.call_sites {
                if UBIQUITOUS.contains(&c.name.as_str()) {
                    continue;
                }
                for target_crate in visible {
                    let ckey = (target_crate.to_string(), c.name.clone());
                    let Some(fe) = table.fns.get(&ckey) else { continue };
                    let wit = fe
                        .witness
                        .get(&Effect::Alloc)
                        .cloned()
                        .unwrap_or_else(|| format!("via `{}`", c.name));
                    if c.in_loop && fe.closed.contains(&Effect::Alloc) {
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::HotPathAlloc,
                            Severity::Error,
                            &f.path,
                            c.line,
                            format!(
                                "hot path `{}` calls `{}` in loop position, which can \
                                 allocate ({wit}); make the callee allocation-free or \
                                 justify the site",
                                s.name, c.name
                            ),
                        );
                        break;
                    }
                    if !c.in_loop && fe.loop_closed.contains(&Effect::Alloc) {
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::HotPathAlloc,
                            Severity::Error,
                            &f.path,
                            c.line,
                            format!(
                                "hot path `{}` calls `{}`, whose own loops allocate per \
                                 iteration ({wit}); make the callee allocation-free or \
                                 justify the site",
                                s.name, c.name
                            ),
                        );
                        break;
                    }
                }
            }
        }

        // R19: discarded Results in library code.
        if f.class.is_library {
            for s in &f.fns {
                if s.in_test {
                    continue;
                }
                for d in &s.discards {
                    let (fires, message) = match d.kind {
                        DiscardKind::StatementOk => (
                            true,
                            format!(
                                "statement-position `.ok()` discards the `Result` of \
                                 `{}`; handle or propagate the error, or justify the \
                                 discard",
                                if d.call.is_empty() { "this call" } else { &d.call }
                            ),
                        ),
                        DiscardKind::LetUnderscore => (
                            visible.iter().any(|t| {
                                result_fns.contains(&(t.to_string(), d.call.clone()))
                            }),
                            format!(
                                "`let _ =` discards the `Result` returned by `{}`; \
                                 handle or propagate the error, or justify the discard",
                                d.call
                            ),
                        ),
                        DiscardKind::UnwrapOrDefault => (
                            visible.iter().any(|t| {
                                result_fns.contains(&(t.to_string(), d.call.clone()))
                            }),
                            format!(
                                "`unwrap_or_default()` on the `Result` returned by `{}` \
                                 silently maps errors to a default; handle the error or \
                                 justify the fallback",
                                d.call
                            ),
                        ),
                    };
                    if fires {
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::SwallowedResult,
                            Severity::Error,
                            &f.path,
                            d.line,
                            message,
                        );
                    }
                }
            }
        }

        // R20: a held lock region spanning a call whose closed summary
        // allocates or does file IO. Same scope as R16: non-test code
        // (a stretched critical section in a test harness hurts nobody).
        if f.class.is_test_like {
            continue;
        }
        for s in &f.fns {
            if s.in_test {
                continue;
            }
            for a in &s.acquires {
                for (call, line) in &a.held_calls {
                    if UBIQUITOUS.contains(&call.as_str()) {
                        continue;
                    }
                    for target_crate in visible {
                        let ckey = (target_crate.to_string(), call.clone());
                        let Some(fe) = table.fns.get(&ckey) else { continue };
                        let heavy_alloc = fe.closed.contains(&Effect::Alloc);
                        let heavy_io = fe.closed.contains(&Effect::Io);
                        if !heavy_alloc && !heavy_io {
                            continue;
                        }
                        let what = match (heavy_alloc, heavy_io) {
                            (true, true) => "allocates and does file IO",
                            (true, false) => "can allocate",
                            _ => "does file IO",
                        };
                        let wit = fe
                            .witness
                            .get(if heavy_alloc { &Effect::Alloc } else { &Effect::Io })
                            .cloned()
                            .unwrap_or_else(|| format!("via `{call}`"));
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::LockWhileHeavy,
                            Severity::Error,
                            &f.path,
                            *line,
                            format!(
                                "lock `{}.{}` (taken at line {}) is held across a call \
                                 to `{call}`, which {what} ({wit}); move the heavy work \
                                 outside the critical section or justify the hold",
                                f.crate_name, a.target, a.line
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceEntry;

    fn site_of(src: &str, ident: &str) -> Option<(Effect, String)> {
        let sf = SourceFile::parse(src);
        let k = (0..sf.code.len()).find(|&k| sf.is_ident(k, ident))?;
        local_effect_at(&sf, k)
    }

    #[test]
    fn local_effect_markers_cover_the_lattice() {
        assert_eq!(site_of("let v = vec![1];", "vec"), Some((Effect::Alloc, "vec!".into())));
        assert_eq!(
            site_of("let s = format!(\"x\");", "format"),
            Some((Effect::Alloc, "format!".into()))
        );
        assert_eq!(
            site_of("let v = Vec::with_capacity(4);", "with_capacity"),
            Some((Effect::Alloc, "Vec::with_capacity".into()))
        );
        assert_eq!(site_of("let b = Box::new(1);", "new"), Some((Effect::Alloc, "Box::new".into())));
        assert_eq!(site_of("let c = x.clone();", "clone"), Some((Effect::Alloc, ".clone()".into())));
        assert_eq!(site_of("let u = x.unwrap();", "unwrap"), Some((Effect::Panic, ".unwrap()".into())));
        assert_eq!(site_of("assert_eq!(a, b);", "assert_eq"), Some((Effect::Panic, "assert_eq!".into())));
        assert_eq!(site_of("let t = Instant::now();", "now"), Some((Effect::Clock, "Instant::now".into())));
        assert_eq!(
            site_of("let s = fs::read_to_string(p);", "read_to_string"),
            Some((Effect::Io, "fs::read_to_string".into()))
        );
        // Scratch-reuse methods are deliberately not markers.
        assert_eq!(site_of("out.reserve(n);", "reserve"), None);
        assert_eq!(site_of("scratch.clear();", "clear"), None);
        // `Vec::new` in type position (no call parens) is not a site.
        assert_eq!(site_of("let v: Vec<f64> = Vec::new();", "new"), Some((Effect::Alloc, "Vec::new".into())));
    }

    fn discards_of(src: &str) -> Vec<DiscardSite> {
        let full = format!("fn f() {{ {src} }}");
        let sf = SourceFile::parse(&full);
        let open = (0..sf.code.len())
            .find(|&k| sf.is_punct(k, '{'))
            .unwrap_or(0);
        let close = sf.matching_close(open).unwrap_or(sf.code.len());
        let mut out = Vec::new();
        for q in open + 1..close {
            if let Some(d) = discard_at(&sf, q, open) {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn discard_shapes_are_detected_with_their_calls() {
        let d = discards_of("let _ = try_io();");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].call.as_str(), d[0].kind), ("try_io", DiscardKind::LetUnderscore));

        let d = discards_of("try_io().ok();");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].call.as_str(), d[0].kind), ("try_io", DiscardKind::StatementOk));

        let d = discards_of("let n = count().unwrap_or_default();");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].call.as_str(), d[0].kind), ("count", DiscardKind::UnwrapOrDefault));

        // A used `.ok()` (bound, returned, or an argument) is not a discard.
        assert!(discards_of("let v = try_io().ok();").is_empty());
        assert!(discards_of("take(try_io().ok());").is_empty());
        assert!(discards_of("return try_io().ok();").is_empty());
    }

    fn demo_ws(lib: &str) -> WorkspaceModel {
        WorkspaceModel::build(&[
            SourceEntry::new("crates/demo/Cargo.toml", "[package]\nname = \"easytime-demo\"\n"),
            SourceEntry::new("crates/demo/src/lib.rs", lib.to_string()),
        ])
    }

    #[test]
    fn closure_propagates_transitive_allocation() {
        let ws = demo_ws(
            "pub fn leaf() -> Vec<f64> { let v = Vec::new(); v }\n\
             pub fn caller() { leaf(); }\n\
             pub fn clean(x: f64) -> f64 { x }\n",
        );
        let t = build_effect_table(&ws);
        let caller = &t.fns[&("easytime-demo".into(), "caller".into())];
        assert!(caller.direct.is_empty());
        assert!(caller.closed.contains(&Effect::Alloc));
        let clean = &t.fns[&("easytime-demo".into(), "clean".into())];
        assert!(clean.closed.is_empty());
    }

    #[test]
    fn loop_closure_distinguishes_setup_from_per_iteration_work() {
        let ws = demo_ws(
            "pub fn setup_only(n: usize) {\n\
             \x20   let v = Vec::with_capacity(n);\n\
             \x20   for x in &v { touch(x); }\n\
             }\n\
             pub fn loopy(n: usize) {\n\
             \x20   for i in 0..n { let s = format!(\"{i}\"); touch(&s); }\n\
             }\n",
        );
        let t = build_effect_table(&ws);
        let setup = &t.fns[&("easytime-demo".into(), "setup_only".into())];
        assert!(setup.direct.contains(&Effect::Alloc));
        assert!(!setup.loop_closed.contains(&Effect::Alloc), "setup alloc is not per-iteration");
        let loopy = &t.fns[&("easytime-demo".into(), "loopy".into())];
        assert!(loopy.loop_closed.contains(&Effect::Alloc));
    }

    #[test]
    fn call_graph_cycles_converge() {
        let ws = demo_ws(
            "pub fn ping(n: u32) { if n > 0 { pong(n - 1); } }\n\
             pub fn pong(n: u32) { let s = format!(\"{n}\"); touch(&s); if n > 0 { ping(n - 1); } }\n",
        );
        let t = build_effect_table(&ws);
        assert!(t.fns[&("easytime-demo".into(), "ping".into())].closed.contains(&Effect::Alloc));
        assert!(t.fns[&("easytime-demo".into(), "pong".into())].closed.contains(&Effect::Alloc));
    }

    #[test]
    fn hot_fn_calling_allocating_callee_in_loop_is_r18() {
        let ws = demo_ws(
            "pub fn build_row() -> Vec<f64> { let v = Vec::new(); v }\n\
             // lint: hot(steady-state scoring loop for the demo)\n\
             pub fn hot_loop(n: usize) {\n\
             \x20   for _i in 0..n { build_row(); }\n\
             }\n",
        );
        let t = build_effect_table(&ws);
        assert!(t.fns[&("easytime-demo".into(), "hot_loop".into())].hot);
        let diags = check_effects(&ws, &t);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::HotPathAlloc);
        assert!(diags[0].message.contains("build_row"));
    }

    #[test]
    fn hot_setup_outside_loops_is_exempt_and_hatches_waive() {
        let clean = demo_ws(
            "// lint: hot(kernel inner product on the serving path)\n\
             pub fn dot(a: &[f64], b: &[f64]) -> f64 {\n\
             \x20   let mut acc = 0.0;\n\
             \x20   for i in 0..a.len() { acc += a[i] * b[i]; }\n\
             \x20   acc\n\
             }\n",
        );
        let t = build_effect_table(&clean);
        assert!(check_effects(&clean, &t).is_empty());

        let hatched = demo_ws(
            "// lint: hot(steady-state scoring loop for the demo)\n\
             pub fn hot_loop(n: usize) {\n\
             \x20   for i in 0..n {\n\
             \x20       // lint: allow(hot-path-alloc) — cold diagnostic branch, taken at most once per run\n\
             \x20       let s = format!(\"{i}\");\n\
             \x20       touch(&s);\n\
             \x20   }\n\
             }\n",
        );
        let t = build_effect_table(&hatched);
        assert!(check_effects(&hatched, &t).is_empty());
    }

    #[test]
    fn bare_hot_marker_and_dangling_marker_are_r0() {
        let ws = demo_ws("// lint: hot(x)\npub fn f() {}\n// lint: hot(left at end of file)\n");
        let t = build_effect_table(&ws);
        let diags = check_effects(&ws, &t);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::BadAnnotation));
        assert!(diags.iter().any(|d| d.message.contains("written reason")));
        assert!(diags.iter().any(|d| d.message.contains("dangling")));
    }

    #[test]
    fn swallowed_results_resolve_through_the_signature_table() {
        let ws = demo_ws(
            "pub fn try_io() -> Result<(), String> { Err(\"x\".to_string()) }\n\
             pub fn ignores() { let _ = try_io(); }\n\
             pub fn statement_ok() { try_io().ok(); }\n\
             pub fn defaults() -> usize { count().unwrap_or_default() }\n\
             pub fn count() -> Result<usize, String> { Ok(1) }\n\
             pub fn fine() { let _ = not_a_result(); }\n\
             pub fn not_a_result() -> usize { 1 }\n",
        );
        let t = build_effect_table(&ws);
        let diags: Vec<_> = check_effects(&ws, &t)
            .into_iter()
            .filter(|d| d.rule == Rule::SwallowedResult)
            .collect();
        assert_eq!(diags.len(), 3, "{diags:?}");
    }

    #[test]
    fn lock_held_over_allocating_call_is_r20() {
        let ws = demo_ws(
            "pub fn heavy() -> String { let s = format!(\"x\"); s }\n\
             pub fn locked(&self) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   apply(heavy());\n\
             }\n",
        );
        let t = build_effect_table(&ws);
        let diags: Vec<_> = check_effects(&ws, &t)
            .into_iter()
            .filter(|d| d.rule == Rule::LockWhileHeavy)
            .collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("easytime-demo.state"));
        assert!(diags[0].message.contains("heavy"));
    }

    #[test]
    fn reachability_for_the_sync_test_ignores_the_skip_list() {
        let ws = demo_ws(
            "pub fn entry() { helper(); }\n\
             pub fn helper() { get(); }\n\
             pub fn get() -> usize { 1 }\n\
             pub fn unrelated() {}\n",
        );
        let reach = reachable_from(&ws, &["entry"]);
        assert!(reach.contains(&("easytime-demo".into(), "helper".into())));
        assert!(reach.contains(&("easytime-demo".into(), "get".into())), "no UBIQUITOUS filter");
        assert!(!reach.contains(&("easytime-demo".into(), "unrelated".into())));
    }
}
