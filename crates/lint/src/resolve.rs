//! Phase 2, step 2: cross-crate resolution rules.
//!
//! **R15 crate-layering** enforces the declared layer policy against the
//! real Cargo dependency graph *and* against `easytime_*::` path tokens in
//! library code, so both manifest drift and path-qualified back-doors are
//! caught. **R17 dead-pub** warns on `pub` items in non-facade crates that
//! no other crate (and none of the defining crate's own bins/tests/benches)
//! ever mentions.

use crate::engine::AllowMark;
use crate::model::{ItemKind, Vis, WorkspaceModel};
use crate::{Diagnostic, Rule, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Where a crate sits in the declared layering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layer {
    /// Layered crate: may depend only on strictly lower layers.
    Level(u32),
    /// Leaf tool (`lint`, `bench`): may depend on any layered crate, but
    /// nothing may depend on it and it may not depend on another leaf.
    Leaf,
}

/// The declared layering policy, by package name. Order is bottom-up:
/// `rng`/`clock` underpin everything, the `easytime` facade sits on top,
/// and the tooling crates are leaves outside the layer stack entirely.
/// Every workspace crate must appear here — an unknown crate is an R15
/// error, which forces new crates to take an explicit layering decision.
pub(crate) const LAYERS: &[(&str, Layer)] = &[
    ("easytime-rng", Layer::Level(0)),
    ("easytime-clock", Layer::Level(0)),
    ("easytime-obs", Layer::Level(1)),
    ("easytime-linalg", Layer::Level(1)),
    ("easytime-data", Layer::Level(2)),
    ("easytime-db", Layer::Level(2)),
    ("easytime-models", Layer::Level(3)),
    ("easytime-repr", Layer::Level(3)),
    ("easytime-eval", Layer::Level(4)),
    ("easytime-qa", Layer::Level(4)),
    ("easytime-automl", Layer::Level(5)),
    ("easytime", Layer::Level(6)),
    ("easytime-serve", Layer::Level(7)),
    ("easytime-bench", Layer::Leaf),
    ("easytime-lint", Layer::Leaf),
];

/// The facade crate whose whole purpose is re-exporting: exempt from R17.
pub(crate) const FACADE: &str = "easytime";

/// Looks up a crate's declared layer.
pub(crate) fn layer_of(package: &str) -> Option<Layer> {
    LAYERS.iter().find(|(n, _)| *n == package).map(|&(_, l)| l)
}

/// True when `from` (at `from_layer`) may depend on `to` (at `to_layer`)
/// under the policy.
fn edge_allowed(from_layer: Layer, to_layer: Layer) -> bool {
    match (from_layer, to_layer) {
        // Nothing may depend on a leaf — leaves included.
        (_, Layer::Leaf) => false,
        // Layered crates look strictly downward.
        (Layer::Level(f), Layer::Level(t)) => t < f,
        // Leaves may use any layered crate.
        (Layer::Leaf, Layer::Level(_)) => true,
    }
}

/// Renders a layer for diagnostics.
fn layer_name(l: Layer) -> String {
    match l {
        Layer::Level(n) => format!("layer {n}"),
        Layer::Leaf => "leaf".to_string(),
    }
}

/// Runs R15 over the Cargo dependency graph and the `easytime_*::` path
/// tokens of library code.
pub fn check_layering(ws: &WorkspaceModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Lib-name → package-name map for token-level checks.
    let mut by_lib: BTreeMap<&str, &str> = BTreeMap::new();
    for c in ws.crates.values() {
        by_lib.insert(&c.lib_name, &c.name);
    }

    for c in ws.crates.values() {
        let Some(from_layer) = layer_of(&c.name) else {
            diags.push(Diagnostic::new(
                Path::new(&c.manifest_path),
                1,
                Rule::CrateLayering,
                format!(
                    "crate `{}` has no layer assignment in the layering policy; add it to \
                     `LAYERS` in crates/lint/src/resolve.rs with a deliberate layer choice",
                    c.name
                ),
            ));
            continue;
        };
        // Manifest edges. Dev-dependencies are exempt: cargo permits dev
        // cycles, and test-only upward edges (obs exercising the stack it
        // instruments) are deliberate.
        for (dep, line) in &c.deps {
            if !ws.crates.contains_key(dep) {
                continue; // External deps are R2's business.
            }
            let Some(to_layer) = layer_of(dep) else { continue };
            if !edge_allowed(from_layer, to_layer) {
                diags.push(Diagnostic::new(
                    Path::new(&c.manifest_path),
                    *line,
                    Rule::CrateLayering,
                    format!(
                        "layering violation: `{}` ({}) must not depend on `{dep}` ({}); \
                         layered crates depend only on strictly lower layers and nothing \
                         depends on a leaf",
                        c.name,
                        layer_name(from_layer),
                        layer_name(to_layer),
                    ),
                ));
            }
        }
    }

    // Token-level back-doors: `easytime_x::` in library, non-test code of a
    // crate that is not allowed to depend on `easytime-x`. Catches paths
    // that compile via an undeclared transitive route or sneak in later.
    for f in &ws.files {
        if !f.class.is_library || f.crate_name.is_empty() {
            continue;
        }
        let Some(from_layer) = layer_of(&f.crate_name) else { continue };
        let own_lib = ws.crates.get(&f.crate_name).map(|c| c.lib_name.as_str()).unwrap_or("");
        for r in &f.ext_refs {
            if r.in_test || r.lib_name == own_lib || r.lib_name == "crate" {
                continue;
            }
            let Some(&to_pkg) = by_lib.get(r.lib_name.as_str()) else { continue };
            let Some(to_layer) = layer_of(to_pkg) else { continue };
            if !edge_allowed(from_layer, to_layer) {
                push_allowed(
                    &mut diags,
                    &f.allows,
                    Rule::CrateLayering,
                    Severity::Error,
                    &f.path,
                    r.line,
                    format!(
                        "layering violation: `{}` ({}) references `{}::` ({}) — this \
                         path-qualified use bypasses the declared layer policy",
                        f.crate_name,
                        layer_name(from_layer),
                        r.lib_name,
                        layer_name(to_layer),
                    ),
                );
            }
        }
    }
    diags
}

/// Counts workspace-internal `[dependencies]` edges (for the stats).
pub fn dep_edge_count(ws: &WorkspaceModel) -> usize {
    ws.crates
        .values()
        .flat_map(|c| &c.deps)
        .filter(|(dep, _)| ws.crates.contains_key(dep))
        .count()
}

/// Counts distinct crate→crate reference pairs from `easytime_*::` tokens
/// (for the stats).
pub fn use_edge_count(ws: &WorkspaceModel) -> usize {
    let mut by_lib: BTreeMap<&str, &str> = BTreeMap::new();
    for c in ws.crates.values() {
        by_lib.insert(&c.lib_name, &c.name);
    }
    let mut pairs: BTreeSet<(&str, &str)> = BTreeSet::new();
    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        for r in &f.ext_refs {
            if let Some(&to) = by_lib.get(r.lib_name.as_str()) {
                if to != f.crate_name {
                    pairs.insert((f.crate_name.as_str(), to));
                }
            }
        }
    }
    pairs.len()
}

/// Runs R17: `pub` items in non-facade library code that no other crate
/// mentions and that the defining crate's own non-library targets (bins,
/// tests, benches, examples) never use either. Liveness propagates
/// through signatures: a type named in the signature of a live export is
/// itself live (callers hold it without ever writing its name).
pub fn check_dead_pub(ws: &WorkspaceModel) -> Vec<Diagnostic> {
    // Mention sets: per crate split into library vs non-library targets.
    let mut lib_mentions: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut other_target_mentions: BTreeSet<&str> = BTreeSet::new();
    for f in &ws.files {
        if f.class.is_library {
            lib_mentions
                .entry(f.crate_name.as_str())
                .or_default()
                .extend(f.mentions.iter().map(String::as_str));
        } else {
            other_target_mentions.extend(f.mentions.iter().map(String::as_str));
        }
    }

    // A direct use is: a mention in another crate's library code, or a
    // mention in ANY non-library target (the defining crate's own
    // bins/tests/benches/examples included).
    let used_directly = |krate: &str, name: &str| {
        lib_mentions.iter().any(|(&c, names)| c != krate && names.contains(name))
            || other_target_mentions.contains(name)
    };

    let mut diags = Vec::new();
    for (krate, _) in ws.crates.iter() {
        if krate == FACADE {
            continue;
        }
        // Candidate pub items of this crate's library code, in file order.
        let mut candidates: Vec<(&crate::model::FileModel, &crate::model::Item)> = Vec::new();
        for f in &ws.files {
            if !f.class.is_library || f.crate_name != *krate {
                continue;
            }
            for item in &f.items {
                if item.vis != Vis::Pub
                    || item.in_test
                    || item.in_trait_impl
                    || item.name.is_empty()
                    || item.name == "_"
                    || matches!(item.kind, ItemKind::Mod | ItemKind::Use)
                {
                    continue;
                }
                candidates.push((f, item));
            }
        }
        // Liveness fixpoint: seeds are directly-used items; every ident in
        // a live non-Use item's signature is live too (a struct returned
        // by a live fn is held by callers who never write its name).
        let mut alive: BTreeSet<&str> = BTreeSet::new();
        for (_, item) in &candidates {
            if used_directly(krate, &item.name) {
                alive.insert(item.name.as_str());
            }
        }
        loop {
            let mut changed = false;
            for (_, item) in &candidates {
                if !alive.contains(item.name.as_str()) {
                    continue;
                }
                for ident in item
                    .signature
                    .split(|c: char| !c.is_alphanumeric() && c != '_')
                    .filter(|s| !s.is_empty())
                {
                    changed |= alive.insert(ident);
                }
            }
            if !changed {
                break;
            }
        }
        for (f, item) in candidates {
            if alive.contains(item.name.as_str()) {
                continue;
            }
            push_allowed(
                &mut diags,
                &f.allows,
                Rule::DeadPub,
                Severity::Warn,
                &f.path,
                item.line,
                format!(
                    "pub {} `{}` has no user outside `{}`'s library code; demote it to \
                     pub(crate), delete it, or annotate with \
                     `// lint: allow(dead-pub) — <why>`",
                    item.kind.label(),
                    item.name,
                    f.crate_name,
                ),
            );
        }
    }
    diags
}

/// Shared escape-hatch handling for semantic rules, mirroring the phase-1
/// `Reporter`: a justified `// lint: allow(<name>)` on the finding's line
/// waives it; a bare one is itself an R0 error.
pub(crate) fn push_allowed(
    diags: &mut Vec<Diagnostic>,
    allows: &[AllowMark],
    rule: Rule,
    severity: Severity,
    path: &str,
    line: usize,
    message: String,
) {
    let name = rule.allow_name();
    if let Some(mark) = allows.iter().find(|a| a.target_line == line && a.name == name) {
        if !mark.justified {
            diags.push(Diagnostic::new(
                Path::new(path),
                mark.marker_line,
                Rule::BadAnnotation,
                format!("escape hatch `lint: allow({name})` requires a written justification"),
            ));
        }
        return;
    }
    let mut d = Diagnostic::new(Path::new(path), line, rule, message);
    d.severity = severity;
    diags.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceEntry;

    fn manifest(name: &str, deps: &[&str]) -> String {
        let mut t = format!("[package]\nname = \"{name}\"\n\n[dependencies]\n");
        for d in deps {
            t.push_str(&format!("{d}.workspace = true\n"));
        }
        t
    }

    fn dir_of(name: &str) -> &str {
        name.strip_prefix("easytime-").unwrap_or("core")
    }

    fn ws(crates: &[(&str, &[&str])], files: &[(&str, &str)]) -> WorkspaceModel {
        let mut sources = Vec::new();
        for (name, deps) in crates {
            sources.push(SourceEntry::new(
                format!("crates/{}/Cargo.toml", dir_of(name)),
                manifest(name, deps),
            ));
        }
        for (path, text) in files {
            sources.push(SourceEntry::new(path.to_string(), text.to_string()));
        }
        WorkspaceModel::build(&sources)
    }

    #[test]
    fn clean_layering_passes() {
        let model = ws(
            &[
                ("easytime-rng", &[]),
                ("easytime-obs", &["easytime-clock"]),
                ("easytime-clock", &[]),
                ("easytime-eval", &["easytime-obs", "easytime-rng"]),
            ],
            &[],
        );
        assert!(check_layering(&model).is_empty());
    }

    #[test]
    fn upward_and_leafward_manifest_edges_are_flagged() {
        let model = ws(
            &[
                ("easytime-clock", &["easytime-eval"]), // upward: 0 → 4
                ("easytime-eval", &[]),
                ("easytime-obs", &["easytime-lint"]), // into a leaf
                ("easytime-lint", &[]),
            ],
            &[],
        );
        let diags = check_layering(&model);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::CrateLayering));
        assert!(diags.iter().any(|d| d.message.contains("`easytime-clock`")));
        assert!(diags.iter().any(|d| d.message.contains("`easytime-lint`")));
    }

    #[test]
    fn same_layer_edge_is_flagged() {
        let model =
            ws(&[("easytime-rng", &["easytime-clock"]), ("easytime-clock", &[])], &[]);
        let diags = check_layering(&model);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("strictly lower"));
    }

    #[test]
    fn unknown_crate_requires_a_layer_decision() {
        let model = ws(&[("easytime-sketch", &[])], &[]);
        let diags = check_layering(&model);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no layer assignment"));
    }

    #[test]
    fn token_backdoor_is_flagged_but_tests_and_declared_edges_are_not() {
        let model = ws(
            &[("easytime-clock", &[]), ("easytime-eval", &[])],
            &[
                // clock (layer 0) reaching up into eval (layer 4) by path.
                (
                    "crates/clock/src/lib.rs",
                    "pub fn f() { easytime_eval::run(); }\n\
                     #[cfg(test)]\nmod t { fn g() { easytime_eval::run(); } }\n",
                ),
                // eval using clock is fine even without checking Cargo.toml.
                ("crates/eval/src/lib.rs", "pub fn g() { easytime_clock::now(); }\n"),
            ],
        );
        let diags = check_layering(&model);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].file.display().to_string(), "crates/clock/src/lib.rs");
        assert!(diags[0].message.contains("path-qualified"));
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let toml = "[package]\nname = \"easytime-obs\"\n\n[dev-dependencies]\n\
                    easytime-eval.workspace = true\n";
        let model = WorkspaceModel::build(&[
            SourceEntry::new("crates/obs/Cargo.toml", toml),
            SourceEntry::new(
                "crates/eval/Cargo.toml",
                manifest("easytime-eval", &[]),
            ),
        ]);
        assert!(check_layering(&model).is_empty());
    }

    #[test]
    fn dead_pub_flags_unused_exports_only() {
        let model = ws(
            &[("easytime-rng", &[]), ("easytime-eval", &[])],
            &[
                (
                    "crates/rng/src/lib.rs",
                    "/// Used downstream.\npub fn seed_from(x: u64) -> u64 { x }\n\
                     /// Nobody calls this.\npub fn orphan_helper() -> u64 { 0 }\n",
                ),
                ("crates/eval/src/lib.rs", "fn f() { easytime_rng::seed_from(1); }\n"),
            ],
        );
        let diags = check_dead_pub(&model);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::DeadPub);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].message.contains("orphan_helper"));
    }

    #[test]
    fn own_crate_tests_and_bins_count_as_users() {
        let model = ws(
            &[("easytime-rng", &[])],
            &[
                ("crates/rng/src/lib.rs", "/// Exercised by the test below.\npub fn h() {}\n"),
                ("crates/rng/tests/t.rs", "fn t() { easytime_rng::h(); }\n"),
            ],
        );
        assert!(check_dead_pub(&model).is_empty());
    }

    #[test]
    fn facade_and_hatched_items_are_exempt() {
        let model = ws(
            &[("easytime", &[]), ("easytime-rng", &[])],
            &[
                ("crates/core/src/lib.rs", "/// Facade re-export surface.\npub fn unused() {}\n"),
                (
                    "crates/rng/src/lib.rs",
                    "// lint: allow(dead-pub) — speculative API for the serving engine\n\
                     pub fn speculative() {}\n",
                ),
            ],
        );
        assert!(check_dead_pub(&model).is_empty());
    }

    #[test]
    fn bare_dead_pub_hatch_is_r0() {
        let model = ws(
            &[("easytime-rng", &[])],
            &[(
                "crates/rng/src/lib.rs",
                "// lint: allow(dead-pub)\npub fn speculative() {}\n",
            )],
        );
        let diags = check_dead_pub(&model);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAnnotation);
    }

    #[test]
    fn edge_counts_are_stable() {
        let model = ws(
            &[("easytime-clock", &[]), ("easytime-eval", &["easytime-clock"])],
            &[(
                "crates/eval/src/lib.rs",
                "pub fn g() { easytime_clock::now(); easytime_clock::later(); }\n",
            )],
        );
        assert_eq!(dep_edge_count(&model), 1);
        assert_eq!(use_edge_count(&model), 1);
    }
}
