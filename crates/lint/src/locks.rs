//! Phase 2, step 3: lock-discipline analysis (R16).
//!
//! From the per-function acquisition summaries in the workspace model this
//! module builds a **lock-order graph**: an edge `A → B` means some
//! function acquires lock `B` (directly, or any number of calls away)
//! while holding lock `A`. Call resolution is name-based and restricted
//! to each caller's crate plus its transitive Cargo dependencies, so a
//! common method name in an unrelated crate cannot create phantom edges.
//!
//! Two deadlock shapes are errors:
//!
//! 1. **Same-lock reacquisition** — a lock held across a call into a
//!    function that (transitively) acquires the same lock identity, or a
//!    direct second acquisition in the held region. `std::sync::Mutex` is
//!    not reentrant: this self-deadlocks on the spot.
//! 2. **Lock-order cycles** — a cycle between two or more distinct lock
//!    identities in the transitively-closed lock-order graph: two threads
//!    taking the locks in opposite orders deadlock each other.
//!
//! A lock identity is `(crate, field name)` — `self.records.lock()` in
//! `easytime-eval` is `easytime-eval.records`. Two different mutexes
//! behind the same field name in one crate collapse into one identity
//! (conservative: may merge, never splits), and a guard passed directly as
//! a call argument (`f(&self.x.lock())`) escapes the held-region scan —
//! both limits are documented in DESIGN.md.

use crate::model::{FnSummary, WorkspaceModel};
use crate::resolve::push_allowed;
use crate::{Diagnostic, Rule, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// A lock identity rendered as `crate.field`.
pub(crate) type LockId = String;

/// The transitively-closed lock-order graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock identity seen at any acquisition site.
    pub identities: BTreeSet<LockId>,
    /// `held → acquired` edges, each with one representative site
    /// `(file, line)` — the lexicographically first contributor.
    pub edges: BTreeMap<(LockId, LockId), (String, usize)>,
}

/// Per-function index key: `(crate, fn name)`. Methods share the key with
/// free functions of the same name — name-based resolution is deliberately
/// conservative (may merge, never misses a same-crate callee).
pub(crate) type FnKey = (String, String);

/// Everything the checker needs precomputed from the model. The phase-3
/// effect pass ([`crate::effects`]) reuses the same index so both analyses
/// resolve calls identically.
pub(crate) struct Index<'a> {
    /// Function summaries by `(crate, name)`.
    pub(crate) fns: BTreeMap<FnKey, Vec<(&'a str, &'a FnSummary)>>,
    /// For each crate: itself plus its transitive normal dependencies.
    pub(crate) reachable: BTreeMap<&'a str, BTreeSet<&'a str>>,
    /// Transitive lock acquisitions per `(crate, fn name)` key.
    trans_acquires: BTreeMap<FnKey, BTreeSet<LockId>>,
}

/// Builds the `(crate, fn)` index and the transitive-acquisition fixpoint.
pub(crate) fn build_index<'a>(ws: &'a WorkspaceModel) -> Index<'a> {
    let mut fns: BTreeMap<FnKey, Vec<(&str, &FnSummary)>> = BTreeMap::new();
    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        for s in &f.fns {
            if s.in_test {
                continue;
            }
            fns.entry((f.crate_name.clone(), s.name.clone()))
                .or_default()
                .push((f.path.as_str(), s));
        }
    }

    // Reachability: crate → {itself + transitive normal deps}.
    let mut reachable: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for name in ws.crates.keys() {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![name.as_str()];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            if let Some(info) = ws.crates.get(c) {
                for (dep, _) in &info.deps {
                    if ws.crates.contains_key(dep) {
                        stack.push(dep.as_str());
                    }
                }
            }
        }
        reachable.insert(name.as_str(), seen);
    }

    // Fixpoint: trans_acquires(f) = direct(f) ∪ ⋃ trans_acquires(callee)
    // over callees resolved within the caller's reachable crates.
    let mut trans: BTreeMap<FnKey, BTreeSet<LockId>> = BTreeMap::new();
    for ((krate, name), sums) in &fns {
        let mut direct = BTreeSet::new();
        for (_, s) in sums {
            for a in &s.acquires {
                direct.insert(format!("{krate}.{}", a.target));
            }
        }
        trans.insert((krate.clone(), name.clone()), direct);
    }
    loop {
        let mut changed = false;
        for ((krate, name), sums) in &fns {
            let mut add: BTreeSet<LockId> = BTreeSet::new();
            let empty = BTreeSet::new();
            let visible = reachable.get(krate.as_str()).unwrap_or(&empty);
            for (_, s) in sums {
                for call in &s.calls {
                    for target in visible {
                        let key = (target.to_string(), call.clone());
                        if let Some(acq) = trans.get(&key) {
                            add.extend(acq.iter().cloned());
                        }
                    }
                }
            }
            let own = trans.entry((krate.clone(), name.clone())).or_default();
            for id in add {
                changed |= own.insert(id);
            }
        }
        if !changed {
            break;
        }
    }
    Index { fns, reachable, trans_acquires: trans }
}

/// Builds the transitively-closed lock-order graph for the whole
/// workspace (reported in the stats; cycles in it are R16 errors).
pub fn build_lock_graph(ws: &WorkspaceModel) -> LockGraph {
    let idx = build_index(ws);
    let mut graph = LockGraph::default();
    let empty = BTreeSet::new();
    for ((krate, _name), sums) in &idx.fns {
        let visible = idx.reachable.get(krate.as_str()).unwrap_or(&empty);
        for (path, s) in sums {
            for a in &s.acquires {
                let held: LockId = format!("{krate}.{}", a.target);
                graph.identities.insert(held.clone());
                let mut record = |to: LockId, line: usize| {
                    let site = (path.to_string(), line);
                    graph
                        .edges
                        .entry((held.clone(), to))
                        .and_modify(|existing| {
                            if site < *existing {
                                *existing = site.clone();
                            }
                        })
                        .or_insert(site);
                };
                for (target, line) in &a.held_acquires {
                    let to = format!("{krate}.{target}");
                    graph.identities.insert(to.clone());
                    if to != held {
                        record(to, *line);
                    }
                }
                for (call, line) in &a.held_calls {
                    for target in visible {
                        let key = (target.to_string(), call.clone());
                        if let Some(acq) = idx.trans_acquires.get(&key) {
                            for to in acq {
                                graph.identities.insert(to.clone());
                                if *to != held {
                                    record(to.clone(), *line);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    graph
}

/// Runs R16: same-lock reacquisition at each site, then cycles across the
/// closed lock-order graph.
pub fn check_locks(ws: &WorkspaceModel, graph: &LockGraph) -> Vec<Diagnostic> {
    let idx = build_index(ws);
    let mut diags = Vec::new();
    let empty = BTreeSet::new();

    // Shape 1: same-lock reacquisition, per acquisition site.
    for f in &ws.files {
        if f.crate_name.is_empty() {
            continue;
        }
        let visible = idx.reachable.get(f.crate_name.as_str()).unwrap_or(&empty);
        for s in &f.fns {
            if s.in_test {
                continue;
            }
            for a in &s.acquires {
                let held: LockId = format!("{}.{}", f.crate_name, a.target);
                for (target, line) in &a.held_acquires {
                    if *target == a.target {
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::LockDiscipline,
                            Severity::Error,
                            &f.path,
                            *line,
                            format!(
                                "lock `{held}` acquired again while already held (taken at \
                                 line {}); std mutexes are not reentrant — this \
                                 self-deadlocks",
                                a.line
                            ),
                        );
                    }
                }
                for (call, line) in &a.held_calls {
                    let mut reacquires = false;
                    for target in visible {
                        let key = (target.to_string(), call.clone());
                        if idx.trans_acquires.get(&key).is_some_and(|acq| acq.contains(&held)) {
                            reacquires = true;
                        }
                    }
                    if reacquires {
                        push_allowed(
                            &mut diags,
                            &f.allows,
                            Rule::LockDiscipline,
                            Severity::Error,
                            &f.path,
                            *line,
                            format!(
                                "lock `{held}` (taken at line {}) is held across a call to \
                                 `{call}`, which can reacquire it; std mutexes are not \
                                 reentrant — restructure so the guard is dropped first",
                                a.line
                            ),
                        );
                    }
                }
            }
        }
    }

    // Shape 2: cycles between distinct identities. Find strongly connected
    // components of the edge graph; any component with ≥2 nodes is a
    // deadlock-capable ordering cycle. (Self-loops never enter the graph —
    // shape 1 reports those per site.)
    for component in sccs(graph) {
        if component.len() < 2 {
            continue;
        }
        // Anchor at the lexicographically first edge site inside the
        // component for a deterministic, clickable diagnostic.
        let in_comp: BTreeSet<&LockId> = component.iter().collect();
        let site = graph
            .edges
            .iter()
            .filter(|((a, b), _)| in_comp.contains(a) && in_comp.contains(b))
            .map(|(_, site)| site)
            .min()
            .cloned()
            .unwrap_or_else(|| ("<unknown>".to_string(), 1));
        let names = component.iter().cloned().collect::<Vec<_>>().join(" -> ");
        let mut d = Diagnostic::new(
            std::path::Path::new(&site.0),
            site.1,
            Rule::LockDiscipline,
            format!(
                "lock-order cycle between {{{names}}}: two threads taking these locks in \
                 different orders can deadlock; impose one global acquisition order"
            ),
        );
        d.severity = Severity::Error;
        diags.push(d);
    }
    diags
}

/// Strongly connected components of the lock-order graph, each returned
/// sorted, in deterministic order (iterative Tarjan over sorted nodes).
fn sccs(graph: &LockGraph) -> Vec<Vec<LockId>> {
    let nodes: Vec<&LockId> = graph.identities.iter().collect();
    let index_of: BTreeMap<&LockId, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in graph.edges.keys() {
        if let (Some(&i), Some(&j)) = (index_of.get(a), index_of.get(b)) {
            succ[i].push(j);
        }
    }

    // Iterative Tarjan.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<LockId>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Work frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < succ[v].len() {
                let w = succ[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            // All children done: close the frame.
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut component = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    component.push(nodes[w].clone());
                    if w == v {
                        break;
                    }
                }
                component.sort();
                out.push(component);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceEntry, WorkspaceModel};

    fn ws(files: &[(&str, &str)]) -> WorkspaceModel {
        let mut sources = vec![SourceEntry::new(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"easytime-demo\"\n",
        )];
        for (path, text) in files {
            sources.push(SourceEntry::new(path.to_string(), text.to_string()));
        }
        WorkspaceModel::build(&sources)
    }

    #[test]
    fn sequential_temporary_locks_are_clean() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   self.a.lock().push(1);\n\
             \x20   self.b.lock().push(2);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        assert!(graph.edges.is_empty());
        assert!(check_locks(&model, &graph).is_empty());
    }

    #[test]
    fn nested_distinct_locks_make_an_edge_but_no_error() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             \x20   use_both(a, b);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        assert!(graph
            .edges
            .contains_key(&("easytime-demo.alpha".into(), "easytime-demo.beta".into())));
        assert!(check_locks(&model, &graph).is_empty());
    }

    #[test]
    fn opposite_order_nesting_is_a_cycle() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             \x20   use_both(a, b);\n\
             }\n\
             pub fn g(&self) {\n\
             \x20   let b = self.beta.lock();\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   use_both(a, b);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        let diags = check_locks(&model, &graph);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LockDiscipline);
        assert!(diags[0].message.contains("lock-order cycle"));
        assert!(diags[0].message.contains("easytime-demo.alpha"));
        assert!(diags[0].message.contains("easytime-demo.beta"));
    }

    #[test]
    fn direct_reacquisition_is_flagged() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   let a = self.state.lock();\n\
             \x20   let b = self.state.lock();\n\
             \x20   use_both(a, b);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        let diags = check_locks(&model, &graph);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("acquired again while already held"));
    }

    #[test]
    fn transitive_reacquisition_through_a_helper_is_flagged() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn outer(&self) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   helper(&g);\n\
             }\n\
             fn helper(&self) {\n\
             \x20   self.state.lock().touch();\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        let diags = check_locks(&model, &graph);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("held across a call to `helper`"));
    }

    #[test]
    fn cross_crate_resolution_requires_a_dependency_edge() {
        // demo has NO dependency on easytime-other, so `helper` must not
        // resolve into it even though the names collide.
        let mut sources = vec![
            SourceEntry::new("crates/demo/Cargo.toml", "[package]\nname = \"easytime-demo\"\n"),
            SourceEntry::new(
                "crates/other/Cargo.toml",
                "[package]\nname = \"easytime-other\"\n",
            ),
            SourceEntry::new(
                "crates/demo/src/lib.rs",
                "pub fn outer(&self) {\n\
                 \x20   let g = self.state.lock();\n\
                 \x20   helper(&g);\n\
                 }\n",
            ),
            SourceEntry::new(
                "crates/other/src/lib.rs",
                "pub fn helper(x: &X) { x.state.lock().touch(); }\n",
            ),
        ];
        let model = WorkspaceModel::build(&sources);
        let graph = build_lock_graph(&model);
        assert!(check_locks(&model, &graph).is_empty());

        // Now declare the edge: `helper` resolves, identities differ by
        // crate, so an order edge appears but no same-lock error.
        sources[0] = SourceEntry::new(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"easytime-demo\"\n\n[dependencies]\n\
             easytime-other.workspace = true\n",
        );
        let model = WorkspaceModel::build(&sources);
        let graph = build_lock_graph(&model);
        assert!(graph
            .edges
            .contains_key(&("easytime-demo.state".into(), "easytime-other.state".into())));
        assert!(check_locks(&model, &graph).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n\
             \x20   fn t(&self) { let a = self.s.lock(); let b = self.s.lock(); use2(a, b); }\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        assert!(check_locks(&model, &graph).is_empty());
    }

    #[test]
    fn justified_hatch_waives_and_bare_hatch_is_r0() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   let a = self.state.lock();\n\
             \x20   // lint: allow(lock-discipline) — same thread re-entry impossible here\n\
             \x20   let b = self.state.lock();\n\
             \x20   use_both(a, b);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        assert!(check_locks(&model, &graph).is_empty());

        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn f(&self) {\n\
             \x20   let a = self.state.lock();\n\
             \x20   // lint: allow(lock-discipline)\n\
             \x20   let b = self.state.lock();\n\
             \x20   use_both(a, b);\n\
             }\n",
        )]);
        let graph = build_lock_graph(&model);
        let diags = check_locks(&model, &graph);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAnnotation);
    }
}
