//! Token-stream analysis infrastructure shared by all lint rules.
//!
//! [`SourceFile`] wraps a lexed file and answers the questions every rule
//! asks: *what is the k-th code token*, *is this offset inside a
//! `#[cfg(test)]` item*, *is this line covered by an escape-hatch
//! annotation*. Item boundaries (attribute → optional further attributes →
//! item head → matching closing brace or terminating `;`) are derived from
//! the token stream itself, not from line heuristics, so a `#[cfg(test)]`
//! attribute inside a string literal or a brace inside a comment can no
//! longer confuse region tracking.

use crate::lexer::{lex, Doc, Token, TokenKind};

/// A lexed source file plus the derived region and annotation indexes.
#[derive(Debug)]
pub(crate) struct SourceFile<'a> {
    /// The raw source text.
    pub src: &'a str,
    /// The full token stream (tiles `src` exactly).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-trivia ("code") tokens.
    pub code: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items (attribute through closer).
    test_regions: Vec<(usize, usize)>,
    /// Escape-hatch annotations found in comments.
    allows: Vec<AllowMark>,
    /// Hot-path declarations found in comments.
    hots: Vec<HotMark>,
}

/// One `// lint: allow(<name>) — <why>` marker resolved to a target line.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct AllowMark {
    /// The `<name>` inside `allow(…)`.
    pub name: String,
    /// 1-based line the marker waives (the marker's own line for trailing
    /// comments, else the next code line below the comment block).
    pub target_line: usize,
    /// 1-based line the marker itself sits on (for diagnostics).
    pub marker_line: usize,
    /// True when the surrounding comment block carries a justification.
    pub justified: bool,
}

/// One `// lint: hot(<why>)` marker: declares the next function a hot
/// path whose loop-position effect closure R18 must prove allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct HotMark {
    /// The `<why>` inside `hot(…)` — why this path is latency-critical.
    pub why: String,
    /// 1-based line the marker targets (the marker's own line for trailing
    /// comments, else the next code line below the comment block).
    pub target_line: usize,
    /// 1-based line the marker itself sits on (for diagnostics).
    pub marker_line: usize,
}

impl<'a> SourceFile<'a> {
    /// Lexes `src` and builds the region/annotation indexes.
    pub fn parse(src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> =
            (0..tokens.len()).filter(|&i| !tokens[i].is_trivia()).collect();
        let mut sf = SourceFile {
            src,
            tokens,
            code,
            test_regions: Vec::new(),
            allows: Vec::new(),
            hots: Vec::new(),
        };
        sf.test_regions = sf.find_test_regions();
        sf.allows = sf.find_allows();
        sf.hots = sf.find_hots();
        sf
    }

    /// The k-th code token, if any.
    pub(crate) fn ct(&self, k: usize) -> Option<&Token> {
        self.code.get(k).map(|&i| &self.tokens[i])
    }

    /// Text of the k-th code token ("" past the end).
    pub(crate) fn ctext(&self, k: usize) -> &str {
        self.ct(k).map_or("", |t| t.text(self.src))
    }

    /// True when the k-th code token is the identifier `name`.
    pub(crate) fn is_ident(&self, k: usize, name: &str) -> bool {
        self.ct(k).is_some_and(|t| t.kind == TokenKind::Ident) && self.ctext(k) == name
    }

    /// True when the k-th code token is the punctuation char `c`.
    pub(crate) fn is_punct(&self, k: usize, c: char) -> bool {
        self.ct(k).is_some_and(|t| t.kind == TokenKind::Punct)
            && self.ctext(k).chars().next() == Some(c)
    }

    /// True when code tokens `k..k+s.len()` spell the multi-char operator
    /// `s` with no gap between the characters (so `: :` is not `::`).
    pub(crate) fn is_punct_seq(&self, k: usize, s: &str) -> bool {
        let mut prev_end: Option<usize> = None;
        for (j, c) in s.chars().enumerate() {
            if !self.is_punct(k + j, c) {
                return false;
            }
            let t = match self.ct(k + j) {
                Some(t) => t,
                None => return false,
            };
            if prev_end.is_some_and(|e| e != t.start) {
                return false;
            }
            prev_end = Some(t.end);
        }
        true
    }

    /// Code index of the delimiter that closes the opener at code index
    /// `open` (`(`/`)`, `[`/`]`, `{`/`}`). `None` when unbalanced.
    pub(crate) fn matching_close(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.ctext(open) {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i64;
        let mut k = open;
        while self.ct(k).is_some() {
            if self.is_punct(k, o) {
                depth += 1;
            } else if self.is_punct(k, c) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            k += 1;
        }
        None
    }

    /// True when byte `offset` lies inside a `#[cfg(test)]` item.
    pub(crate) fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// Finds every `#[cfg(test)]`-attributed item and returns its byte
    /// range, from the attribute's `#` through the item's closing brace
    /// (or terminating `;` for brace-less items).
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut k = 0;
        while self.ct(k).is_some() {
            let Some((attr_close, is_test)) = self.attribute_at(k) else {
                k += 1;
                continue;
            };
            if !is_test {
                k = attr_close + 1;
                continue;
            }
            let start = self.ct(k).map_or(0, |t| t.start);
            // Skip any further attributes on the same item.
            let mut j = attr_close + 1;
            while let Some((close, _)) = self.attribute_at(j) {
                j = close + 1;
            }
            // Consume the item: everything up to the matching `}` of the
            // first `{`, or a `;` before any brace opens.
            let mut end = self.ct(attr_close).map_or(self.src.len(), |t| t.end);
            while let Some(t) = self.ct(j) {
                if self.is_punct(j, '{') {
                    if let Some(close) = self.matching_close(j) {
                        end = self.ct(close).map_or(self.src.len(), |t| t.end);
                        j = close;
                    } else {
                        end = self.src.len();
                    }
                    break;
                }
                if self.is_punct(j, ';') {
                    end = t.end;
                    break;
                }
                end = t.end;
                j += 1;
            }
            regions.push((start, end));
            k = j + 1;
        }
        regions
    }

    /// When code index `k` starts an attribute (`#` `[` … `]`), returns
    /// the code index of the closing `]` and whether the attribute body
    /// mentions both `cfg` and `test` (covers `#[cfg(test)]` and
    /// `#[cfg(all(test, …))]`).
    fn attribute_at(&self, k: usize) -> Option<(usize, bool)> {
        if !self.is_punct(k, '#') {
            return None;
        }
        // Inner attribute `#![…]` or outer `#[…]`.
        let open = if self.is_punct(k + 1, '!') { k + 2 } else { k + 1 };
        if !self.is_punct(open, '[') {
            return None;
        }
        let close = self.matching_close(open)?;
        let mut saw_cfg = false;
        let mut saw_test = false;
        for j in open + 1..close {
            if self.is_ident(j, "cfg") {
                saw_cfg = true;
            }
            if self.is_ident(j, "test") {
                saw_test = true;
            }
        }
        Some((close, saw_cfg && saw_test))
    }

    /// Collects `lint: allow(<name>)` markers from comment tokens and
    /// resolves each to the line it waives plus its justification status.
    fn find_allows(&self) -> Vec<AllowMark> {
        let mut out = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !matches!(tok.kind, TokenKind::Comment { .. }) {
                continue;
            }
            let text = tok.text(self.src);
            let Some(pos) = text.find("lint: allow(") else {
                continue;
            };
            let after = &text[pos + "lint: allow(".len()..];
            let Some(close) = after.find(')') else {
                continue;
            };
            let name = after[..close].trim().to_string();
            // The whole contiguous comment block (comments separated only
            // by whitespace without a blank line) shares the justification.
            let (block_start, block_end) = self.comment_block(i);
            let mut block_text = String::new();
            for t in &self.tokens[block_start..=block_end] {
                if matches!(t.kind, TokenKind::Comment { .. }) {
                    block_text.push_str(t.text(self.src));
                    block_text.push(' ');
                }
            }
            let marker = format!("lint: allow({name})");
            let rest = block_text.replacen(&marker, "", 1);
            let justification_len =
                rest.chars().filter(|c| c.is_alphanumeric()).count();
            // Trailing comment (code earlier on the same line) waives its
            // own line; a standalone block waives the next code line.
            let trailing = self.tokens[..i]
                .iter()
                .rev()
                .take_while(|t| t.line == tok.line)
                .any(|t| !t.is_trivia());
            let target_line = if trailing {
                tok.line
            } else {
                self.tokens[block_end + 1..]
                    .iter()
                    .find(|t| !t.is_trivia())
                    .map_or(tok.line, |t| t.line)
            };
            out.push(AllowMark {
                name,
                target_line,
                marker_line: tok.line,
                justified: justification_len >= 8,
            });
        }
        out
    }

    /// Collects `lint: hot(<why>)` markers from comment tokens, resolving
    /// each to the line it targets with the same trailing-vs-standalone
    /// rule as [`Self::find_allows`]. Only plain (non-doc) comments count:
    /// documentation regularly *mentions* the marker syntax while
    /// describing it, and a doc comment is rendered API prose, not an
    /// annotation channel.
    fn find_hots(&self) -> Vec<HotMark> {
        let mut out = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !matches!(tok.kind, TokenKind::Comment { doc: crate::lexer::Doc::None, .. }) {
                continue;
            }
            let text = tok.text(self.src);
            let Some(pos) = text.find("lint: hot(") else {
                continue;
            };
            let after = &text[pos + "lint: hot(".len()..];
            let Some(close) = after.find(')') else {
                continue;
            };
            let why = after[..close].trim().to_string();
            let trailing = self.tokens[..i]
                .iter()
                .rev()
                .take_while(|t| t.line == tok.line)
                .any(|t| !t.is_trivia());
            let target_line = if trailing {
                tok.line
            } else {
                let (_, block_end) = self.comment_block(i);
                self.tokens[block_end + 1..]
                    .iter()
                    .find(|t| !t.is_trivia())
                    .map_or(tok.line, |t| t.line)
            };
            out.push(HotMark { why, target_line, marker_line: tok.line });
        }
        out
    }

    /// The maximal run of comment tokens around token `i` separated only
    /// by whitespace that contains no blank line. Returns token indices
    /// `(first, last)` of the run.
    fn comment_block(&self, i: usize) -> (usize, usize) {
        let blank = |t: &Token| {
            t.kind == TokenKind::Whitespace
                && t.text(self.src).bytes().filter(|&b| b == b'\n').count() >= 2
        };
        let mut first = i;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Comment { .. } => first = j,
                TokenKind::Whitespace if !blank(t) => {}
                _ => break,
            }
        }
        let mut last = i;
        let mut j = i;
        while j + 1 < self.tokens.len() {
            j += 1;
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Comment { .. } => last = j,
                TokenKind::Whitespace if !blank(t) => {}
                _ => break,
            }
        }
        (first, last)
    }

    /// Looks up an annotation waiving `name` on `line`. Returns
    /// `Some(mark)` when present (check `justified` before honouring it).
    pub(crate) fn allow_on(&self, line: usize, name: &str) -> Option<&AllowMark> {
        self.allows.iter().find(|a| a.target_line == line && a.name == name)
    }

    /// True when an *outer* doc comment or a `#[doc…]` attribute
    /// immediately precedes token index `i` (whitespace and other
    /// attributes may intervene) — the R9 documentation check.
    pub(crate) fn has_doc_before(&self, i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Whitespace => {}
                TokenKind::Comment { doc: Doc::Outer, .. } => return true,
                TokenKind::Comment { .. } => {}
                // An attribute ends with `]`: skip back over it, noting
                // `#[doc = "…"]` / `#[doc(hidden)]` as documentation.
                TokenKind::Punct if t.text(self.src) == "]" => {
                    let mut depth = 0i64;
                    let mut saw_doc = false;
                    loop {
                        let u = &self.tokens[j];
                        match u.text(self.src) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "doc" if u.kind == TokenKind::Ident => saw_doc = true,
                            _ => {}
                        }
                        if j == 0 {
                            break;
                        }
                        j -= 1;
                    }
                    // Step back over the `#` (and optional `!`).
                    while j > 0 && matches!(self.tokens[j - 1].text(self.src), "#" | "!") {
                        j -= 1;
                    }
                    if saw_doc {
                        return true;
                    }
                }
                _ => return false,
            }
        }
        false
    }

    /// Token index (into `tokens`) of the k-th code token.
    pub(crate) fn raw_index(&self, k: usize) -> Option<usize> {
        self.code.get(k).copied()
    }

    /// All escape-hatch annotations found in the file (for consumers that
    /// need owned copies, e.g. the workspace model).
    pub(crate) fn allows(&self) -> &[AllowMark] {
        &self.allows
    }

    /// All hot-path declarations found in the file, in source order.
    pub(crate) fn hots(&self) -> &[HotMark] {
        &self.hots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_tokens_skip_trivia() {
        let sf = SourceFile::parse("let x = 1; // comment\nlet y;");
        assert_eq!(sf.ctext(0), "let");
        assert_eq!(sf.ctext(1), "x");
        assert_eq!(sf.ctext(5), "let");
        assert!(sf.is_ident(0, "let"));
        assert!(sf.is_punct(2, '='));
    }

    #[test]
    fn punct_seq_requires_adjacency() {
        let sf = SourceFile::parse("a::b c: :d");
        assert!(sf.is_punct_seq(1, "::"));
        let sf2 = SourceFile::parse("c: :d");
        assert!(!sf2.is_punct_seq(1, "::"), "`: :` is not `::`");
    }

    #[test]
    fn matching_close_balances_delimiters() {
        let sf = SourceFile::parse("f(a, (b), [c{d}])");
        // code: f ( a , ( b ) , [ c { d } ] )
        assert_eq!(sf.matching_close(1), Some(14));
        assert_eq!(sf.matching_close(4), Some(6));
        assert_eq!(sf.matching_close(8), Some(13));
    }

    #[test]
    fn test_regions_follow_braces_not_lines() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn g() {}\n";
        let sf = SourceFile::parse(src);
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        let g_at = src.rfind("fn g").unwrap_or(0);
        assert!(sf.in_test_region(unwrap_at));
        assert!(!sf.in_test_region(g_at));
        assert!(!sf.in_test_region(0));
    }

    #[test]
    fn cfg_test_inside_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn g() { h(); }\n";
        let sf = SourceFile::parse(src);
        let h_at = src.find("h()").unwrap_or(0);
        assert!(!sf.in_test_region(h_at));
    }

    #[test]
    fn cfg_all_test_counts_as_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn u() {} }\nfn g() {}\n";
        let sf = SourceFile::parse(src);
        let u_at = src.find("fn u").unwrap_or(0);
        let g_at = src.rfind("fn g").unwrap_or(0);
        assert!(sf.in_test_region(u_at));
        assert!(!sf.in_test_region(g_at));
    }

    #[test]
    fn allow_marks_resolve_trailing_and_block_targets() {
        let src = "\
let a = x.unwrap(); // lint: allow(panic) — proven non-empty above
// lint: allow(panic) — the parser guarantees
// this option is always populated here.
let b = y.unwrap();
";
        let sf = SourceFile::parse(src);
        let first = sf.allow_on(1, "panic");
        assert!(first.is_some_and(|a| a.justified));
        let second = sf.allow_on(4, "panic");
        assert!(second.is_some_and(|a| a.justified && a.marker_line == 2));
    }

    #[test]
    fn bare_allow_mark_is_unjustified() {
        let sf = SourceFile::parse("// lint: allow(panic)\nlet b = y.unwrap();\n");
        let mark = sf.allow_on(2, "panic");
        assert!(mark.is_some_and(|a| !a.justified));
    }

    #[test]
    fn blank_line_breaks_comment_blocks() {
        let src = "// lint: allow(panic)\n\n// a separate, unrelated comment far away\nlet b = y.unwrap();\n";
        let sf = SourceFile::parse(src);
        // The marker's block ends at the blank line, so its justification
        // cannot borrow text from the lower comment…
        let mark = sf.allows.iter().find(|a| a.name == "panic");
        assert!(mark.is_some_and(|a| !a.justified));
    }

    #[test]
    fn hot_marks_resolve_past_doc_comments_and_attributes() {
        let src = "\
// lint: hot(steady-state eval window loop)
/// Docs for the hot function.
#[inline]
pub fn warm() {}
fn other() {} // lint: hot(per-window scoring path)
";
        let sf = SourceFile::parse(src);
        let hots = sf.hots();
        assert_eq!(hots.len(), 2);
        assert_eq!(hots[0].target_line, 3, "block marker targets the next code line");
        assert_eq!(hots[0].why, "steady-state eval window loop");
        assert_eq!(hots[1].target_line, 5, "trailing marker targets its own line");
        assert_eq!(hots[1].marker_line, 5);
    }

    #[test]
    fn doc_detection_sees_docs_through_attributes() {
        let src = "/// docs\n#[derive(Debug)]\npub struct S;\n";
        let sf = SourceFile::parse(src);
        let k = (0..sf.code.len()).find(|&k| sf.is_ident(k, "pub"));
        let raw = k.and_then(|k| sf.raw_index(k));
        assert!(raw.is_some_and(|i| sf.has_doc_before(i)));
        let src2 = "#[derive(Debug)]\npub struct S;\n";
        let sf2 = SourceFile::parse(src2);
        let k2 = (0..sf2.code.len()).find(|&k| sf2.is_ident(k, "pub"));
        let raw2 = k2.and_then(|k| sf2.raw_index(k));
        assert!(raw2.is_some_and(|i| !sf2.has_doc_before(i)));
        let src3 = "#[doc = \"generated\"]\npub struct S;\n";
        let sf3 = SourceFile::parse(src3);
        let k3 = (0..sf3.code.len()).find(|&k| sf3.is_ident(k, "pub"));
        let raw3 = k3.and_then(|k| sf3.raw_index(k));
        assert!(raw3.is_some_and(|i| sf3.has_doc_before(i)));
    }
}
