//! Phase 2, step 1: the cross-file **workspace model**.
//!
//! Phase 1 ([`crate::lint_rust_source`]) sees one token stream at a time.
//! This module lifts every workspace source into an owned, order-independent
//! summary — per-crate item tables, per-function call and lock-acquisition
//! summaries, `use` paths, and ident mention sets — that the semantic rules
//! ([`crate::resolve`] R15/R17, [`crate::locks`] R16, [`crate::api`] R14)
//! join across files. Inputs are sorted by path before extraction, so the
//! model (and everything derived from it) is byte-identical regardless of
//! file-discovery order.
//!
//! The extraction is a heuristic single pass over each token stream, not a
//! full parse: function bodies are skipped during the item walk (so locals
//! and closures never pollute the item table) and re-scanned separately for
//! calls and lock acquisitions; macro-invocation bodies are skipped
//! entirely. Known limits are documented in DESIGN.md §Static analysis
//! architecture.

use crate::effects::{CallSite, DiscardSite, Effect, EffectSite};
use crate::engine::{AllowMark, HotMark, SourceFile};
use crate::lexer::TokenKind;
use crate::{classify, FileClass};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One workspace source handed to the analyzer: a path relative to the
/// workspace root plus its full text.
#[derive(Debug, Clone)]
pub struct SourceEntry {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

impl SourceEntry {
    /// Builds an entry, normalizing path separators.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceEntry {
        SourceEntry { path: path.into().replace('\\', "/"), text: text.into() }
    }
}

/// What kind of item a table row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ItemKind {
    /// A free or associated function (incl. trait methods).
    Fn,
    /// A struct definition.
    Struct,
    /// An enum definition.
    Enum,
    /// A trait definition.
    Trait,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A `union` definition.
    Union,
    /// A `mod name;` out-of-line module declaration.
    Mod,
    /// A `use` declaration (re-exports are API when `pub`).
    Use,
}

impl ItemKind {
    /// Lower-case label used in API-baseline entries and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Union => "union",
            ItemKind::Mod => "mod",
            ItemKind::Use => "use",
        }
    }
}

/// Item visibility as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Vis {
    /// `pub` — exported surface.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One row of a crate's item table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name with any `r#` raw-identifier prefix stripped; empty for
    /// `use` groups.
    pub name: String,
    /// Enclosing `mod`/`impl`/`trait` labels within the file, joined with
    /// `::` (empty at file top level).
    pub context: String,
    /// Visibility as written.
    pub vis: Vis,
    /// True when an outer doc comment or `#[doc…]` precedes the item.
    pub has_doc: bool,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// True when the item is a method of a `impl Trait for Type` block
    /// (its visibility comes from the trait, not a `pub` keyword).
    pub in_trait_impl: bool,
    /// 1-based line of the item head.
    pub line: usize,
    /// Normalized signature: code tokens from the visibility keyword
    /// through the end of the header, source-adjacent puncts kept glued.
    pub signature: String,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct Acquisition {
    /// Heuristic lock identity: the last receiver/argument field ident
    /// before the locking call (e.g. `records` for `self.records.lock()`).
    pub target: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// `(call name, line)` for every call made while the guard is held
    /// (from the acquisition to the end of its held region).
    pub held_calls: Vec<(String, usize)>,
    /// `(identity, line)` for every further direct acquisition inside the
    /// held region.
    pub held_acquires: Vec<(String, usize)>,
}

/// Per-function summary: what it calls and which locks it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct FnSummary {
    /// Function name (`r#` stripped).
    pub name: String,
    /// Enclosing context labels (`Type` for methods), `::`-joined.
    pub context: String,
    /// 1-based line of the `fn` head.
    pub line: usize,
    /// True inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Every call name in the body (functions and methods alike).
    pub calls: BTreeSet<String>,
    /// Lock acquisitions in body order.
    pub acquires: Vec<Acquisition>,
    /// Local effect sites in body order (the phase-3 effect pass).
    pub effects: Vec<EffectSite>,
    /// Call sites with loop position, in body order.
    pub call_sites: Vec<CallSite>,
    /// Discarded-result candidate sites in body order (R19).
    pub discards: Vec<DiscardSite>,
}

/// One `use` declaration, token paths flattened to segments.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct UsePath {
    /// Path segments (`r#` stripped); brace groups contribute every leaf.
    pub segments: Vec<String>,
    /// 1-based line.
    pub line: usize,
    /// True inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A reference to another workspace crate via its lib name in a path
/// position (`easytime_linalg::…`) inside library code.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct ExtRef {
    /// The referenced lib name (e.g. `easytime_linalg`).
    pub lib_name: String,
    /// 1-based line.
    pub line: usize,
    /// True inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything the semantic rules need from one Rust source file.
#[derive(Debug, Clone)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct FileModel {
    /// Workspace-relative path (`/` separators).
    pub path: String,
    /// Owning crate's package name (empty when the file is not under a
    /// recognized `crates/<dir>/`).
    pub crate_name: String,
    /// Target classification (library / bin / test-like).
    pub class: FileClass,
    /// Item table rows in source order.
    pub items: Vec<Item>,
    /// Function summaries in source order.
    pub fns: Vec<FnSummary>,
    /// `use` declarations.
    pub uses: Vec<UsePath>,
    /// Workspace-crate path references.
    pub ext_refs: Vec<ExtRef>,
    /// Every identifier mentioned anywhere in the file (`r#` stripped).
    pub mentions: BTreeSet<String>,
    /// Escape-hatch annotations (for the semantic rules' allow checks).
    pub allows: Vec<AllowMark>,
    /// `// lint: hot(<why>)` declarations (resolved to functions by R18).
    pub hots: Vec<HotMark>,
}

/// One crate manifest: package name, directory, and dependency edges.
#[derive(Debug, Clone, Default)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub struct CrateInfo {
    /// Package name (`easytime-linalg`).
    pub name: String,
    /// Crate directory relative to the workspace root (`crates/linalg`).
    pub dir: String,
    /// Rust lib name (`easytime_linalg`).
    pub lib_name: String,
    /// Manifest path relative to the workspace root.
    pub manifest_path: String,
    /// `[dependencies]` entries: `(package name, manifest line)`.
    pub deps: Vec<(String, usize)>,
    /// `[dev-dependencies]` entries: `(package name, manifest line)`.
    pub dev_deps: Vec<(String, usize)>,
}

/// The cross-file workspace model: crate manifests plus per-file
/// summaries, all held in deterministic (path/name-sorted) order.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    /// Crates keyed by package name.
    pub crates: BTreeMap<String, CrateInfo>,
    /// File models sorted by path.
    pub files: Vec<FileModel>,
}

/// Method names treated as lock acquisitions (`x.lock()` and the
/// poison-recovering `x.lock_poisoned()` convention).
const LOCK_METHODS: [&str; 2] = ["lock", "lock_poisoned"];
/// Free helper functions treated as lock acquisitions of their argument
/// (the `lock(&mutex)` poison-recovering helper convention).
const LOCK_HELPERS: [&str; 2] = ["lock", "lock_poisoned"];
/// Keywords never counted as call names even when followed by `(`.
pub(crate) const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "as", "where",
];

impl WorkspaceModel {
    /// Builds the model from workspace sources (`.rs` files and
    /// `Cargo.toml` manifests). The input is sorted by path internally, so
    /// any discovery order produces an identical model.
    pub fn build(sources: &[SourceEntry]) -> WorkspaceModel {
        let mut sorted: Vec<&SourceEntry> = sources.iter().collect();
        sorted.sort_by(|a, b| a.path.cmp(&b.path));
        sorted.dedup_by(|a, b| a.path == b.path);

        let mut model = WorkspaceModel::default();
        // Pass 1: manifests, building the crate-dir → package-name map.
        let mut dir_to_crate: BTreeMap<String, String> = BTreeMap::new();
        for src in &sorted {
            if src.path.ends_with("Cargo.toml") {
                if let Some(info) = parse_manifest(&src.path, &src.text) {
                    dir_to_crate.insert(info.dir.clone(), info.name.clone());
                    model.crates.insert(info.name.clone(), info);
                }
            }
        }
        // Pass 2: Rust sources.
        for src in &sorted {
            if !src.path.ends_with(".rs") {
                continue;
            }
            let crate_name = crate_dir_of(&src.path)
                .and_then(|dir| dir_to_crate.get(dir).cloned())
                .unwrap_or_default();
            model.files.push(extract_file(&src.path, crate_name, &src.text));
        }
        model
    }

    /// Total item-table rows across all files.
    pub fn item_count(&self) -> usize {
        self.files.iter().map(|f| f.items.len()).sum()
    }

    /// Total `pub` (unrestricted) items in library code outside tests.
    pub fn pub_item_count(&self) -> usize {
        self.files
            .iter()
            .filter(|f| f.class.is_library)
            .flat_map(|f| &f.items)
            .filter(|i| i.vis == Vis::Pub && !i.in_test)
            .count()
    }

    /// Total lock-acquisition sites across all function summaries.
    pub fn lock_site_count(&self) -> usize {
        self.files.iter().flat_map(|f| &f.fns).map(|f| f.acquires.len()).sum()
    }
}

/// The `crates/<dir>` prefix of a workspace-relative path.
fn crate_dir_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let dir_len = rest.find('/')?;
    Some(&path[..("crates/".len() + dir_len)])
}

/// Parses the package name and dependency sections out of one
/// `Cargo.toml`. Returns `None` for the virtual workspace root manifest.
fn parse_manifest(path: &str, text: &str) -> Option<CrateInfo> {
    let dir = path.strip_suffix("/Cargo.toml")?.to_string();
    let mut info = CrateInfo { dir, manifest_path: path.to_string(), ..CrateInfo::default() };
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        info.name = value.trim().trim_matches('"').to_string();
                    }
                }
            }
            Section::Deps | Section::DevDeps => {
                let Some(name) = line.split(['=', '.', ' ']).next() else {
                    continue;
                };
                let name = name.trim();
                if name.is_empty() {
                    continue;
                }
                let entry = (name.to_string(), idx + 1);
                if section == Section::Deps {
                    info.deps.push(entry);
                } else {
                    info.dev_deps.push(entry);
                }
            }
            Section::Other => {}
        }
    }
    if info.name.is_empty() {
        return None;
    }
    info.lib_name = info.name.replace('-', "_");
    Some(info)
}

/// Strips the `r#` raw-identifier prefix so cross-file name matching sees
/// `r#type` and `type` as the same identifier.
fn norm_ident(text: &str) -> &str {
    text.strip_prefix("r#").unwrap_or(text)
}

/// A scope the item walk has descended into.
struct Scope {
    /// Code index of the closing `}`.
    close: usize,
    /// Label contributed to item contexts (`None` for unlabeled scopes).
    label: Option<String>,
    /// True for `impl Trait for Type` bodies.
    trait_impl: bool,
}

/// Extracts the full [`FileModel`] from one Rust source.
fn extract_file(path: &str, crate_name: String, text: &str) -> FileModel {
    let class = classify(Path::new(path));
    let sf = SourceFile::parse(text);
    let mut fm = FileModel {
        path: path.to_string(),
        crate_name,
        class,
        items: Vec::new(),
        fns: Vec::new(),
        uses: Vec::new(),
        ext_refs: Vec::new(),
        mentions: BTreeSet::new(),
        allows: sf.allows().to_vec(),
        hots: sf.hots().to_vec(),
    };

    // Mentions and workspace-crate path references come from the flat
    // token stream (any position counts as a mention).
    let n = sf.code.len();
    for k in 0..n {
        let Some(t) = sf.ct(k) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = norm_ident(t.text(sf.src));
        fm.mentions.insert(name.to_string());
        if name.starts_with("easytime") && sf.is_punct_seq(k + 1, "::") {
            fm.ext_refs.push(ExtRef {
                lib_name: name.to_string(),
                line: t.line,
                in_test: sf.in_test_region(t.start),
            });
        }
    }

    // Structured item walk.
    let mut scopes: Vec<Scope> = Vec::new();
    let mut k = 0usize;
    while sf.ct(k).is_some() {
        // Leave any scope that closes here.
        if scopes.last().is_some_and(|s| s.close == k) {
            scopes.pop();
            k += 1;
            continue;
        }
        // Skip attributes wholesale (the doc check walks back over them).
        if let Some(close) = attribute_end(&sf, k) {
            k = close + 1;
            continue;
        }
        let context =
            scopes.iter().filter_map(|s| s.label.as_deref()).collect::<Vec<_>>().join("::");
        let in_trait_impl = scopes.iter().any(|s| s.trait_impl);
        match parse_item(&sf, k) {
            Parsed::Item { item, next } => {
                let mut item = item;
                item.context = context;
                item.in_trait_impl = in_trait_impl;
                fm.items.push(item);
                k = next;
            }
            Parsed::Fn { item, body, next } => {
                let mut item = item;
                item.context = context.clone();
                item.in_trait_impl = in_trait_impl;
                let mut summary = FnSummary {
                    name: item.name.clone(),
                    context,
                    line: item.line,
                    in_test: item.in_test,
                    calls: BTreeSet::new(),
                    acquires: Vec::new(),
                    effects: Vec::new(),
                    call_sites: Vec::new(),
                    discards: Vec::new(),
                };
                if let Some((open, close)) = body {
                    scan_fn_body(&sf, open, close, &mut summary);
                }
                fm.items.push(item);
                fm.fns.push(summary);
                k = next;
            }
            Parsed::Use { item, segments, next } => {
                let mut item = item;
                item.context = context;
                let line = item.line;
                let in_test = item.in_test;
                fm.items.push(item);
                fm.uses.push(UsePath { segments, line, in_test });
                k = next;
            }
            Parsed::Enter { scope, next } => {
                let mut scope = scope;
                scope.trait_impl = scope.trait_impl || in_trait_impl;
                // Record the scope-opening item (mod/trait) row first.
                scopes.push(scope);
                k = next;
            }
            Parsed::EnterWithItem { item, scope, next } => {
                let mut item = item;
                item.context = context;
                item.in_trait_impl = in_trait_impl;
                fm.items.push(item);
                scopes.push(scope);
                k = next;
            }
            Parsed::None => k += 1,
        }
    }
    fm
}

/// Result of attempting to parse an item at one code index.
enum Parsed {
    /// A plain item (struct/enum/const/…): record and jump past it.
    Item { item: Item, next: usize },
    /// A function: record, remember the body range for the lock scan.
    Fn { item: Item, body: Option<(usize, usize)>, next: usize },
    /// A `use` declaration with its flattened segments.
    Use { item: Item, segments: Vec<String>, next: usize },
    /// A scope to descend into without an item row (`impl` blocks).
    Enter { scope: Scope, next: usize },
    /// A scope to descend into that is itself an item (mod/trait).
    EnterWithItem { item: Item, scope: Scope, next: usize },
    /// Not an item head.
    None,
}

/// When code index `k` starts an attribute, returns the code index of its
/// closing `]`.
fn attribute_end(sf: &SourceFile<'_>, k: usize) -> Option<usize> {
    if !sf.is_punct(k, '#') {
        return None;
    }
    let open = if sf.is_punct(k + 1, '!') { k + 2 } else { k + 1 };
    if !sf.is_punct(open, '[') {
        return None;
    }
    sf.matching_close(open)
}

/// Parses the optional visibility at `k`. Returns `(vis, next index)`.
/// `pub(crate)` / `pub(super)` / `pub(in path::to)` are `Restricted`.
fn parse_vis(sf: &SourceFile<'_>, k: usize) -> (Vis, usize) {
    if !sf.is_ident(k, "pub") {
        return (Vis::Private, k);
    }
    if sf.is_punct(k + 1, '(') {
        match sf.matching_close(k + 1) {
            Some(close) => return (Vis::Restricted, close + 1),
            None => return (Vis::Restricted, k + 2),
        }
    }
    (Vis::Pub, k + 1)
}

/// Normalized header text: code tokens `start..end` (exclusive), glued
/// when source-adjacent (so `::`, `->`, `&[f64]` render naturally) and
/// single-spaced otherwise.
fn normalize_sig(sf: &SourceFile<'_>, start: usize, end: usize) -> String {
    let mut out = String::new();
    let mut prev_end: Option<usize> = None;
    for k in start..end {
        let Some(t) = sf.ct(k) else { break };
        if prev_end.is_some_and(|e| e != t.start) && !out.is_empty() {
            out.push(' ');
        }
        out.push_str(t.text(sf.src));
        prev_end = Some(t.end);
    }
    out
}

/// Attempts to parse the item whose head starts at code index `k`.
fn parse_item(sf: &SourceFile<'_>, k: usize) -> Parsed {
    let (vis, mut j) = parse_vis(sf, k);
    let head = k;
    let line = sf.ct(head).map_or(1, |t| t.line);
    let in_test = sf.ct(head).is_some_and(|t| sf.in_test_region(t.start));
    let has_doc = sf.raw_index(head).is_some_and(|i| sf.has_doc_before(i));

    // Qualifiers before an item keyword (`const fn`, `async fn`,
    // `unsafe fn`, `extern "C" fn`, `unsafe trait`, `unsafe impl`).
    let mut quals = 0usize;
    while matches!(sf.ctext(j), "async" | "unsafe" | "extern")
        || sf.ct(j).is_some_and(|t| t.kind == TokenKind::StrLit)
    {
        j += 1;
        quals += 1;
        if quals > 4 {
            break;
        }
    }
    // `const` is both a qualifier (`const fn`) and an item keyword.
    if sf.is_ident(j, "const") && sf.is_ident(j + 1, "fn") {
        j += 1;
    }

    let kw = sf.ctext(j).to_string();
    let mk = |kind: ItemKind, name: String, sig_end: usize| Item {
        kind,
        name,
        context: String::new(),
        vis,
        has_doc,
        in_test,
        in_trait_impl: false,
        line,
        signature: normalize_sig(sf, head, sig_end),
    };

    match kw.as_str() {
        "fn" => {
            let name = norm_ident(sf.ctext(j + 1)).to_string();
            if name.is_empty() {
                return Parsed::None;
            }
            // Header runs to the body `{` or a `;` (trait method decl).
            let mut m = j + 1;
            let (mut body, mut next, mut sig_end) = (None, j + 2, j + 2);
            while sf.ct(m).is_some() && m < j + 600 {
                if sf.is_punct(m, '{') {
                    let close = sf.matching_close(m);
                    sig_end = m;
                    body = close.map(|c| (m, c));
                    next = close.map_or(m + 1, |c| c + 1);
                    break;
                }
                if sf.is_punct(m, ';') {
                    sig_end = m;
                    next = m + 1;
                    break;
                }
                m += 1;
                sig_end = m;
                next = m;
            }
            Parsed::Fn { item: mk(ItemKind::Fn, name, sig_end), body, next }
        }
        "struct" | "enum" | "union" => {
            let kind = match kw.as_str() {
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Union,
            };
            let name = norm_ident(sf.ctext(j + 1)).to_string();
            if name.is_empty() {
                return Parsed::None;
            }
            // Header ends at `{` (fields), `(` (tuple), or `;` (unit).
            let mut m = j + 1;
            let (mut next, mut sig_end) = (j + 2, j + 2);
            while sf.ct(m).is_some() && m < j + 400 {
                if sf.is_punct(m, '{') || sf.is_punct(m, '(') {
                    sig_end = m;
                    let close = sf.matching_close(m);
                    next = close.map_or(m + 1, |c| c + 1);
                    // A tuple struct still ends with `;`.
                    if sf.is_punct(m, '(') {
                        if let Some(c) = close {
                            if sf.is_punct(c + 1, ';') {
                                next = c + 2;
                            }
                        }
                    }
                    break;
                }
                if sf.is_punct(m, ';') {
                    sig_end = m;
                    next = m + 1;
                    break;
                }
                m += 1;
                sig_end = m;
                next = m;
            }
            Parsed::Item { item: mk(kind, name, sig_end), next }
        }
        "trait" => {
            let name = norm_ident(sf.ctext(j + 1)).to_string();
            if name.is_empty() {
                return Parsed::None;
            }
            // Find the body `{`; descend so trait methods are recorded.
            let mut m = j + 1;
            while sf.ct(m).is_some() && m < j + 200 && !sf.is_punct(m, '{') {
                if sf.is_punct(m, ';') {
                    return Parsed::Item { item: mk(ItemKind::Trait, name, m), next: m + 1 };
                }
                m += 1;
            }
            let Some(close) = sf.matching_close(m) else {
                return Parsed::Item { item: mk(ItemKind::Trait, name.clone(), m), next: m + 1 };
            };
            Parsed::EnterWithItem {
                item: mk(ItemKind::Trait, name.clone(), m),
                scope: Scope { close, label: Some(name), trait_impl: false },
                next: m + 1,
            }
        }
        "impl" => {
            // Header: `impl [<…>] Type {` or `impl [<…>] Trait for Type {`.
            let mut m = j + 1;
            let mut for_at: Option<usize> = None;
            while sf.ct(m).is_some() && m < j + 200 && !sf.is_punct(m, '{') {
                if sf.is_ident(m, "for") {
                    for_at = Some(m);
                }
                if sf.is_punct(m, ';') {
                    return Parsed::None;
                }
                m += 1;
            }
            let Some(close) = sf.matching_close(m) else { return Parsed::None };
            // Self-type label: last path ident before any `<` in the
            // segment after `for` (trait impls) or after the generics
            // (inherent impls).
            let seg_start = for_at.map_or(j + 1, |f| f + 1);
            let mut label = None;
            let mut q = seg_start;
            while q < m {
                if sf.ct(q).is_some_and(|t| t.kind == TokenKind::Ident)
                    && !matches!(sf.ctext(q), "dyn" | "mut" | "where")
                {
                    // Stop at a `where` clause.
                    label = Some(norm_ident(sf.ctext(q)).to_string());
                }
                if sf.is_ident(q, "where") {
                    break;
                }
                if sf.is_punct(q, '<') {
                    // Skip a generic-argument group heuristically: idents
                    // inside generics must not become the label, but the
                    // path may continue after (`Foo<T>::Bar` is rare in
                    // impl heads); stop refining at the first `<` past a
                    // label.
                    if label.is_some() {
                        break;
                    }
                }
                q += 1;
            }
            Parsed::Enter {
                scope: Scope { close, label, trait_impl: for_at.is_some() },
                next: m + 1,
            }
        }
        "mod" => {
            let name = norm_ident(sf.ctext(j + 1)).to_string();
            if name.is_empty() {
                return Parsed::None;
            }
            if sf.is_punct(j + 2, ';') {
                return Parsed::Item { item: mk(ItemKind::Mod, name, j + 2), next: j + 3 };
            }
            if sf.is_punct(j + 2, '{') {
                let Some(close) = sf.matching_close(j + 2) else { return Parsed::None };
                return Parsed::EnterWithItem {
                    item: mk(ItemKind::Mod, name.clone(), j + 2),
                    scope: Scope { close, label: Some(name), trait_impl: false },
                    next: j + 3,
                };
            }
            Parsed::None
        }
        "type" => {
            let name = norm_ident(sf.ctext(j + 1)).to_string();
            if name.is_empty() {
                return Parsed::None;
            }
            let (sig_end, next) = skip_to_semi(sf, j + 1, true);
            Parsed::Item { item: mk(ItemKind::TypeAlias, name, sig_end), next }
        }
        "const" | "static" => {
            let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
            let name_at = if sf.is_ident(j + 1, "mut") { j + 2 } else { j + 1 };
            let name = norm_ident(sf.ctext(name_at)).to_string();
            // `const _: () = …` and missing names are skipped.
            if name.is_empty() || name == "_" {
                let (_, next) = skip_to_semi(sf, name_at, false);
                return Parsed::Item {
                    item: mk(kind, "_".into(), name_at),
                    next,
                };
            }
            let (sig_end, next) = skip_to_semi(sf, name_at, true);
            Parsed::Item { item: mk(kind, name, sig_end), next }
        }
        "use" => {
            let mut segments = Vec::new();
            let mut m = j + 1;
            while sf.ct(m).is_some() && m < j + 300 && !sf.is_punct(m, ';') {
                if sf.ct(m).is_some_and(|t| t.kind == TokenKind::Ident) {
                    segments.push(norm_ident(sf.ctext(m)).to_string());
                }
                m += 1;
            }
            let name = segments.last().cloned().unwrap_or_default();
            Parsed::Use { item: mk(ItemKind::Use, name, m), segments, next: m + 1 }
        }
        // A macro invocation at item position (`thread_local! { … }`):
        // skip its delimited body so macro contents never register items.
        _ if sf.ct(j).is_some_and(|t| t.kind == TokenKind::Ident) && sf.is_punct(j + 1, '!') => {
            for d in ['{', '(', '['] {
                if sf.is_punct(j + 2, d) {
                    if let Some(close) = sf.matching_close(j + 2) {
                        return Parsed::Item {
                            item: mk(ItemKind::Mod, String::new(), j),
                            next: close + 1,
                        };
                    }
                }
            }
            Parsed::None
        }
        _ => Parsed::None,
    }
}

/// Scans from `from` to the terminating `;` at delimiter depth 0.
/// Returns `(signature end, next index)`; the signature ends at the first
/// top-level `=` when `stop_at_eq` (initializer values are not API).
fn skip_to_semi(sf: &SourceFile<'_>, from: usize, stop_at_eq: bool) -> (usize, usize) {
    let mut depth = 0i64;
    let mut sig_end: Option<usize> = None;
    let mut m = from;
    while sf.ct(m).is_some() && m < from + 600 {
        if sf.is_punct(m, '(') || sf.is_punct(m, '[') || sf.is_punct(m, '{') {
            depth += 1;
        } else if sf.is_punct(m, ')') || sf.is_punct(m, ']') || sf.is_punct(m, '}') {
            depth -= 1;
        } else if depth == 0 && sf.is_punct(m, ';') {
            return (sig_end.unwrap_or(m), m + 1);
        } else if depth == 0
            && stop_at_eq
            && sig_end.is_none()
            && sf.is_punct(m, '=')
            && !sf.is_punct_seq(m, "==")
            && !sf.is_punct_seq(m, "=>")
        {
            sig_end = Some(m);
        }
        m += 1;
    }
    (sig_end.unwrap_or(m), m)
}

/// Scans a function body for call names, lock acquisitions, local effect
/// sites, and discarded-result candidates. Loop position comes from the
/// body's control-flow sketch ([`crate::cfg`]).
fn scan_fn_body(sf: &SourceFile<'_>, open: usize, close: usize, out: &mut FnSummary) {
    let sketch = crate::cfg::sketch_body(sf, open, close);
    for q in open + 1..close {
        let Some(t) = sf.ct(q) else { break };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = norm_ident(t.text(sf.src));
        let in_loop = sketch.in_loop(q);
        let is_call = sf.is_punct(q + 1, '(') && !NON_CALL_KEYWORDS.contains(&name);
        if is_call {
            out.calls.insert(name.to_string());
            out.call_sites.push(CallSite { name: name.to_string(), line: t.line, in_loop });
        }
        if let Some((effect, what)) = crate::effects::local_effect_at(sf, q) {
            out.effects.push(EffectSite { effect, what, line: t.line, in_loop });
        }
        if let Some(d) = crate::effects::discard_at(sf, q, open) {
            out.discards.push(d);
        }
        // Lock acquisition?
        let Some((target, after)) = acquisition_at(sf, q) else { continue };
        out.effects.push(EffectSite {
            effect: Effect::Lock,
            what: format!("{target}.lock()"),
            line: t.line,
            in_loop,
        });
        let region_end = held_region_end(sf, q, open, close);
        let mut held_calls = Vec::new();
        let mut held_acquires = Vec::new();
        let mut p = after;
        while p < region_end {
            let Some(u) = sf.ct(p) else { break };
            if u.kind == TokenKind::Ident {
                let uname = norm_ident(u.text(sf.src));
                if sf.is_punct(p + 1, '(') && !NON_CALL_KEYWORDS.contains(&uname) {
                    held_calls.push((uname.to_string(), u.line));
                }
                if let Some((nested, _)) = acquisition_at(sf, p) {
                    held_acquires.push((nested, u.line));
                }
            }
            p += 1;
        }
        out.acquires.push(Acquisition { target, line: t.line, held_calls, held_acquires });
    }
}

/// When code index `q` is a lock-acquiring call (`recv.lock()` or
/// `lock(&recv)`), returns `(identity, index after the call's `)`)`.
fn acquisition_at(sf: &SourceFile<'_>, q: usize) -> Option<(String, usize)> {
    let name = norm_ident(sf.ctext(q));
    if !sf.is_punct(q + 1, '(') {
        return None;
    }
    let close = sf.matching_close(q + 1)?;
    if q > 0 && sf.is_punct(q - 1, '.') {
        // Method form: `receiver.lock()`.
        if !LOCK_METHODS.contains(&name) {
            return None;
        }
        let target = receiver_ident(sf, q - 1)?;
        return Some((target, close + 1));
    }
    // Free-helper form: `lock(&self.sinks)` — identity from the argument.
    if LOCK_HELPERS.contains(&name) {
        let mut target = None;
        for a in q + 2..close {
            if sf.ct(a).is_some_and(|t| t.kind == TokenKind::Ident)
                && !matches!(sf.ctext(a), "self" | "mut")
            {
                target = Some(norm_ident(sf.ctext(a)).to_string());
            }
        }
        return target.map(|t| (t, close + 1));
    }
    None
}

/// Walks back from the `.` before a lock method to the receiver's last
/// meaningful field/variable ident: `self.records.lock()` → `records`,
/// `slot_refs[idx].lock()` → `slot_refs`, `m.lock()` → `m`.
fn receiver_ident(sf: &SourceFile<'_>, dot: usize) -> Option<String> {
    let mut p = dot;
    let mut hops = 0usize;
    while p > 0 && hops < 40 {
        hops += 1;
        p -= 1;
        // Skip a trailing index/call group.
        if sf.is_punct(p, ']') || sf.is_punct(p, ')') {
            let (openc, closec) =
                if sf.is_punct(p, ']') { ('[', ']') } else { ('(', ')') };
            let mut depth = 1i64;
            while p > 0 && depth > 0 {
                p -= 1;
                if sf.is_punct(p, closec) {
                    depth += 1;
                } else if sf.is_punct(p, openc) {
                    depth -= 1;
                }
            }
            continue;
        }
        let Some(t) = sf.ct(p) else { return None };
        if t.kind == TokenKind::Ident {
            let name = norm_ident(t.text(sf.src));
            if name == "self" {
                return None;
            }
            return Some(name.to_string());
        }
        if sf.is_punct(p, '.') {
            continue;
        }
        return None;
    }
    None
}

/// End of the held region for the acquisition at code index `q`:
/// a `let`-bound guard lives to the end of its innermost enclosing block;
/// a temporary guard dies at the statement's `;`.
fn held_region_end(sf: &SourceFile<'_>, q: usize, body_open: usize, body_close: usize) -> usize {
    // Is the statement containing `q` a `let` binding? Scan back to the
    // nearest statement boundary.
    let mut let_bound = false;
    let mut p = q;
    let mut hops = 0usize;
    while p > body_open && hops < 80 {
        p -= 1;
        hops += 1;
        if sf.is_punct(p, ';') || sf.is_punct(p, '{') || sf.is_punct(p, '}') {
            break;
        }
        if sf.is_ident(p, "let") {
            let_bound = true;
            break;
        }
    }
    if let_bound {
        // Innermost enclosing block: scan backward tracking reverse depth.
        let mut depth = 0i64;
        let mut p = q;
        while p > body_open {
            p -= 1;
            if sf.is_punct(p, '}') {
                depth += 1;
            } else if sf.is_punct(p, '{') {
                if depth == 0 {
                    return sf.matching_close(p).unwrap_or(body_close).min(body_close);
                }
                depth -= 1;
            }
        }
        body_close
    } else {
        // To the statement's `;` at relative delimiter depth 0 (or the
        // enclosing block close, whichever comes first).
        let mut depth = 0i64;
        let mut p = q;
        while p < body_close {
            if sf.is_punct(p, '(') || sf.is_punct(p, '[') || sf.is_punct(p, '{') {
                depth += 1;
            } else if sf.is_punct(p, ')') || sf.is_punct(p, ']') || sf.is_punct(p, '}') {
                depth -= 1;
                if depth < 0 {
                    return p;
                }
            } else if depth == 0 && sf.is_punct(p, ';') {
                return p;
            }
            p += 1;
        }
        body_close
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> FileModel {
        extract_file("crates/demo/src/lib.rs", "easytime-demo".into(), src)
    }

    #[test]
    fn items_record_kind_name_vis_and_doc() {
        let src = "\
/// Documented.\n\
pub fn f(x: u32) -> u32 { x }\n\
pub(crate) struct S { x: u32 }\n\
enum E { A }\n\
pub const C: u32 = 1;\n\
pub type Alias = u32;\n\
pub static S2: u32 = 2;\n";
        let fm = file(src);
        let rows: Vec<(ItemKind, &str, Vis, bool)> =
            fm.items.iter().map(|i| (i.kind, i.name.as_str(), i.vis, i.has_doc)).collect();
        assert_eq!(
            rows,
            vec![
                (ItemKind::Fn, "f", Vis::Pub, true),
                (ItemKind::Struct, "S", Vis::Restricted, false),
                (ItemKind::Enum, "E", Vis::Private, false),
                (ItemKind::Const, "C", Vis::Pub, false),
                (ItemKind::TypeAlias, "Alias", Vis::Pub, false),
                (ItemKind::Static, "S2", Vis::Pub, false),
            ]
        );
        assert_eq!(fm.items[0].signature, "pub fn f(x: u32) -> u32");
        assert_eq!(fm.items[3].signature, "pub const C: u32");
    }

    #[test]
    fn impl_methods_carry_type_context() {
        let src = "\
pub struct S;\n\
impl S {\n\
    pub fn new() -> S { S }\n\
    fn helper(&self) {}\n\
}\n\
impl std::fmt::Display for S {\n\
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
}\n";
        let fm = file(src);
        let new = fm.items.iter().find(|i| i.name == "new").expect("new recorded");
        assert_eq!(new.context, "S");
        assert_eq!(new.vis, Vis::Pub);
        assert!(!new.in_trait_impl);
        let fmt = fm.items.iter().find(|i| i.name == "fmt").expect("fmt recorded");
        assert_eq!(fmt.context, "S");
        assert!(fmt.in_trait_impl);
        assert_eq!(fmt.vis, Vis::Private);
    }

    #[test]
    fn mods_nest_and_fn_bodies_hide_locals() {
        let src = "\
pub mod outer {\n\
    pub mod inner {\n\
        pub fn g() { let local = 1; fn nested() {} }\n\
    }\n\
}\n";
        let fm = file(src);
        let g = fm.items.iter().find(|i| i.name == "g").expect("g recorded");
        assert_eq!(g.context, "outer::inner");
        // Locals and nested fns inside bodies are not items.
        assert!(!fm.items.iter().any(|i| i.name == "local" || i.name == "nested"));
    }

    #[test]
    fn trait_methods_inherit_recording() {
        let src = "\
pub trait Forecaster {\n\
    fn fit(&mut self, data: &[f64]);\n\
    fn update(&mut self, appended: &[f64]) -> bool { false }\n\
}\n";
        let fm = file(src);
        let fit = fm.items.iter().find(|i| i.name == "fit").expect("fit recorded");
        assert_eq!(fit.context, "Forecaster");
        assert!(fm.items.iter().any(|i| i.name == "update"));
    }

    #[test]
    fn macro_invocation_bodies_are_skipped() {
        let src = "\
thread_local! {\n\
    static LOCAL: u32 = 0;\n\
}\n\
pub fn after() {}\n";
        let fm = file(src);
        assert!(!fm.items.iter().any(|i| i.name == "LOCAL"));
        assert!(fm.items.iter().any(|i| i.name == "after"));
    }

    #[test]
    fn raw_identifiers_normalize_in_items_uses_and_mentions() {
        let src = "\
pub fn r#match() {}\n\
use easytime_db::r#type;\n\
pub fn f() { let _ = r#type(); }\n";
        let fm = file(src);
        assert!(fm.items.iter().any(|i| i.name == "match"));
        assert!(fm.uses.iter().any(|u| u.segments == vec!["easytime_db", "type"]));
        assert!(fm.mentions.contains("type"));
        assert!(!fm.mentions.contains("r#type"));
    }

    #[test]
    fn use_paths_flatten_groups_and_track_crate_and_super() {
        let src = "\
use crate::alpha::Beta;\n\
use super::gamma;\n\
use easytime_linalg::{Matrix, solve::ridge};\n";
        let fm = file(src);
        assert_eq!(fm.uses.len(), 3);
        assert_eq!(fm.uses[0].segments, vec!["crate", "alpha", "Beta"]);
        assert_eq!(fm.uses[1].segments, vec!["super", "gamma"]);
        assert_eq!(fm.uses[2].segments, vec!["easytime_linalg", "Matrix", "solve", "ridge"]);
        assert_eq!(fm.ext_refs.len(), 1);
        assert_eq!(fm.ext_refs[0].lib_name, "easytime_linalg");
    }

    #[test]
    fn lock_summaries_capture_identity_and_held_calls() {
        let src = "\
pub fn temporary(&self) {\n\
    self.records.lock().push(compute());\n\
    after();\n\
}\n\
pub fn bound(&self) {\n\
    let mut g = self.knowledge.lock();\n\
    record(&mut g);\n\
}\n\
pub fn helper_form(r: &R) {\n\
    lock(&r.sinks).push(x);\n\
}\n\
pub fn indexed(refs: &[M], i: usize) {\n\
    refs[i].lock();\n\
}\n";
        let fm = file(src);
        let t = &fm.fns[0].acquires[0];
        assert_eq!(t.target, "records");
        // `after()` is outside the temporary's statement.
        assert!(t.held_calls.iter().any(|(c, _)| c == "push"));
        assert!(t.held_calls.iter().any(|(c, _)| c == "compute"));
        assert!(!t.held_calls.iter().any(|(c, _)| c == "after"));
        let b = &fm.fns[1].acquires[0];
        assert_eq!(b.target, "knowledge");
        assert!(b.held_calls.iter().any(|(c, _)| c == "record"));
        let h = &fm.fns[2].acquires[0];
        assert_eq!(h.target, "sinks");
        assert!(h.held_calls.iter().any(|(c, _)| c == "push"));
        let ix = &fm.fns[3].acquires[0];
        assert_eq!(ix.target, "refs");
    }

    #[test]
    fn let_bound_guard_scopes_to_inner_block() {
        let src = "\
pub fn scoped(&self) {\n\
    {\n\
        let mut db = self.knowledge.lock();\n\
        write(&mut db);\n\
    }\n\
    outside();\n\
}\n";
        let fm = file(src);
        let a = &fm.fns[0].acquires[0];
        assert!(a.held_calls.iter().any(|(c, _)| c == "write"));
        assert!(!a.held_calls.iter().any(|(c, _)| c == "outside"));
    }

    #[test]
    fn nested_direct_acquisitions_are_recorded() {
        let src = "\
pub fn nested(&self) {\n\
    let a = self.first.lock();\n\
    let b = self.second.lock();\n\
    use_both(a, b);\n\
}\n";
        let fm = file(src);
        let a = &fm.fns[0].acquires[0];
        assert_eq!(a.target, "first");
        assert!(a.held_acquires.iter().any(|(t, _)| t == "second"));
    }

    #[test]
    fn manifest_parsing_extracts_name_and_dep_edges() {
        let toml = "\
[package]\n\
name = \"easytime-demo\"\n\
version = \"0.1.0\"\n\
\n\
[dependencies]\n\
easytime-linalg.workspace = true\n\
easytime-rng = { path = \"../rng\" }\n\
\n\
[dev-dependencies]\n\
easytime-data.workspace = true\n";
        let info = parse_manifest("crates/demo/Cargo.toml", toml).expect("parsed");
        assert_eq!(info.name, "easytime-demo");
        assert_eq!(info.lib_name, "easytime_demo");
        assert_eq!(info.dir, "crates/demo");
        let deps: Vec<&str> = info.deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(deps, vec!["easytime-linalg", "easytime-rng"]);
        let dev: Vec<&str> = info.dev_deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(dev, vec!["easytime-data"]);
    }

    #[test]
    fn model_build_is_order_independent() {
        let a = SourceEntry::new("crates/a/Cargo.toml", "[package]\nname = \"easytime-a\"\n");
        let b = SourceEntry::new("crates/a/src/lib.rs", "pub fn f() {}\n");
        let c = SourceEntry::new("crates/a/src/g.rs", "pub fn g() {}\n");
        let fwd = WorkspaceModel::build(&[a.clone(), b.clone(), c.clone()]);
        let rev = WorkspaceModel::build(&[c, b, a]);
        assert_eq!(fwd.files.len(), rev.files.len());
        for (x, y) in fwd.files.iter().zip(rev.files.iter()) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.items, y.items);
        }
        assert_eq!(fwd.crates.keys().collect::<Vec<_>>(), rev.crates.keys().collect::<Vec<_>>());
    }
}
